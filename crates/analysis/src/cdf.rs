//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from (unsorted) samples; NaNs are dropped.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample value with F(x) ≥ q (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest and largest samples.
    pub fn range(&self) -> (f64, f64) {
        if self.sorted.is_empty() {
            (0.0, 0.0)
        } else {
            (self.sorted[0], *self.sorted.last().unwrap())
        }
    }

    /// Evenly spaced plot points `(x, F(x))` for rendering a figure series.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (0..points)
            .map(|i| {
                let idx = (i * (n - 1)) / points.max(1).saturating_sub(1).max(1);
                let x = self.sorted[idx.min(n - 1)];
                (x, self.fraction_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_below_is_monotone_and_exact() {
        let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(1.0), 0.25);
        assert_eq!(cdf.fraction_below(2.0), 0.75);
        assert_eq!(cdf.fraction_below(3.0), 1.0);
        assert_eq!(cdf.fraction_below(99.0), 1.0);
    }

    #[test]
    fn quantiles_hit_samples() {
        let cdf = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.quantile(0.01), 1.0);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.99), 99.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.median(), 50.0);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
        assert_eq!(cdf.range(), (0.0, 0.0));
        assert!(cdf.series(10).is_empty());
    }

    #[test]
    fn series_is_monotone() {
        let cdf = Cdf::new((0..1000).map(|i| (i as f64).sqrt()).collect());
        let series = cdf.series(50);
        assert!(!series.is_empty());
        for pair in series.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }
}
