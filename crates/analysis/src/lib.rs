//! # quicert-analysis — statistics and report rendering
//!
//! Small, dependency-free statistics toolkit used to turn scan results into
//! the paper's tables and figures: empirical CDFs (Figs 2b, 4, 6, 9),
//! quantiles and confidence intervals (Fig 11), grouped share tables
//! (Figs 12/13, Tables 1/2), and plain-text rendering for the `repro`
//! harness.
//!
//! For million-record scans the [`merge`] module provides the streaming
//! counterparts: a [`Merge`] monoid trait plus bounded-memory summaries
//! ([`StreamSummary`], [`HistogramSketch`]) that replace whole-sample
//! [`Cdf`]s on the at-scale paths.

pub mod cdf;
pub mod merge;
pub mod render;
pub mod stats;

pub use cdf::Cdf;
pub use merge::{HistogramSketch, Merge, StreamSummary};
pub use render::{render_bar_table, render_table, Table};
pub use stats::{mean, mean_ci95, median, percentile, std_dev, Summary};
