//! Mergeable (monoid) summaries for streaming, at-scale scans.
//!
//! The materialized scan path keeps every per-record result in memory and
//! derives statistics afterwards; at a million records that design — not
//! the protocol — becomes the bottleneck. This module provides the
//! summaries a streaming path folds instead: each is a commutative monoid
//! under [`Merge`], so a scan can be split into chunks, folded on any
//! number of workers in any order, and merged into **bit-for-bit** the
//! same value a serial pass produces.
//!
//! ## Why exact moments instead of running (Welford/Chan) updates
//!
//! The textbook streaming mean (`mean += (x - mean) / n`) and its pairwise
//! merge are *not* associative in floating point: regrouping the samples
//! regroups the divisions and shifts the low bits, so worker count and
//! chunk size would leak into the result. The metrics the scanners stream
//! (byte counts, round trips, class counts, chain depths) are
//! integer-valued, and sums of integers are **exact** in an IEEE double up
//! to 2^53 — far beyond a million 100-kB chains. [`StreamSummary`]
//! therefore accumulates exact raw moments (count, Σx, Σx²) and derives
//! mean/variance on demand: the same running statistics Welford maintains,
//! but with a merge that is exactly associative *and* commutative on the
//! integer-valued data the scanners produce, which is what lets the engine
//! fold shard summaries in any order.

/// A commutative monoid: an identity element plus an associative,
/// commutative combine step.
///
/// Implementations must satisfy, bit-for-bit on scanner-produced values:
/// `identity().merge(x) == x`, `x.merge(y) == y.merge(x)`, and
/// `(x.merge(y)).merge(z) == x.merge(y.merge(z))`. The streaming engine
/// relies on these laws to fold per-chunk summaries on any worker in any
/// order; the analysis proptests pin them.
pub trait Merge: Sized {
    /// The neutral element (an empty summary).
    fn identity() -> Self;

    /// Fold `other` into `self`.
    fn merge(&mut self, other: &Self);

    /// Merge an iterator of summaries into one.
    fn merge_all(parts: impl IntoIterator<Item = Self>) -> Self {
        let mut acc = Self::identity();
        for part in parts {
            acc.merge(&part);
        }
        acc
    }
}

// -------------------------------------------------------- StreamSummary --

/// Streaming count/mean/min/max (plus variance) over `f64` samples in
/// constant memory.
///
/// Accumulates exact raw moments; see the module docs for why this merges
/// bit-for-bit where a running Welford/Chan update would not. NaN samples
/// are dropped, mirroring [`crate::Cdf::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl StreamSummary {
    /// An empty summary.
    pub fn new() -> StreamSummary {
        StreamSummary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarise a whole sample at once.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> StreamSummary {
        let mut s = StreamSummary::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Fold in one sample (NaNs are dropped).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty, like [`crate::mean`]).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Smallest sample (0.0 when empty, like [`crate::Cdf::range`]).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (n−1 denominator; 0.0 for fewer than two samples,
    /// like [`crate::std_dev`]). Derived from the exact raw moments and
    /// clamped at zero against cancellation.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0)
    }

    /// Sample standard deviation (0.0 for fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Default for StreamSummary {
    fn default() -> Self {
        StreamSummary::new()
    }
}

impl Merge for StreamSummary {
    fn identity() -> Self {
        StreamSummary::new()
    }

    fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ------------------------------------------------------ HistogramSketch --

/// A deterministic fixed-bin histogram sketch with exact quantile error
/// bounds.
///
/// Samples land in `bins` equal-width buckets over `[lo, hi)`; everything
/// below `lo` or at/above `hi` is counted in dedicated underflow/overflow
/// buckets whose quantile estimates fall back to the tracked exact
/// min/max. Two sketches over the same layout merge by bucket-wise `u64`
/// addition — exactly associative and commutative, so shard summaries can
/// be folded in any order.
///
/// **Error bound:** for any rank that lands in a regular bucket,
/// [`HistogramSketch::quantile`] returns that bucket's lower edge clamped
/// into the observed `[min, max]`, while the exact sample at the same rank
/// lies inside the bucket — so the estimate is within one
/// [`HistogramSketch::bin_width`] of the exact [`crate::Cdf`] quantile
/// (pinned by a proptest).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSketch {
    lo: f64,
    bin_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    stats: StreamSummary,
}

impl HistogramSketch {
    /// A sketch over `[lo, hi)` with `bins` equal-width buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> HistogramSketch {
        assert!(hi > lo, "empty sketch range [{lo}, {hi})");
        assert!(bins > 0, "sketch needs at least one bin");
        HistogramSketch {
            lo,
            bin_width: (hi - lo) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            stats: StreamSummary::new(),
        }
    }

    /// Bucket width (the quantile error bound).
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Fold in one sample (NaNs are dropped). Panics on a layout-free
    /// sketch ([`Merge::identity`]): give it a bucket layout with
    /// [`HistogramSketch::new`] first — allowing the push would let the
    /// sample vanish in a later merge and break the identity law.
    pub fn push(&mut self, x: f64) {
        assert!(
            !self.bins.is_empty(),
            "pushing into a layout-free HistogramSketch (construct with HistogramSketch::new)"
        );
        if x.is_nan() {
            return;
        }
        self.stats.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else {
            match self.bins.get_mut(((x - self.lo) / self.bin_width) as usize) {
                Some(bucket) => *bucket += 1,
                None => self.overflow += 1,
            }
        }
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Whether no sample has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The exact count/mean/min/max of everything folded in.
    pub fn stats(&self) -> &StreamSummary {
        &self.stats
    }

    /// Inverse CDF estimate: a value within one bucket width of the exact
    /// [`crate::Cdf::quantile`] at `q` (0.0 when empty, like the `Cdf`).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // The same rank convention as Cdf::quantile: the smallest sample
        // with F(x) >= q.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64)
            .saturating_sub(1)
            .min(total - 1);
        if rank == total - 1 {
            // The top rank is the largest sample, which is tracked exactly.
            return self.stats.max();
        }
        let mut seen = self.underflow;
        if rank < seen {
            return self.stats.min();
        }
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if rank < seen {
                let edge = self.lo + i as f64 * self.bin_width;
                // The exact sample lies inside this bucket and inside the
                // observed range; clamping tightens the estimate without
                // ever moving it further than one bucket width away.
                return edge.clamp(self.stats.min(), self.stats.max());
            }
        }
        self.stats.max()
    }

    /// Median estimate.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x`, up to one bucket of rounding (exact for
    /// `x` on a bucket edge inside `[lo, hi)`).
    ///
    /// Outside the bucketed range only the extremes are exact: below the
    /// observed minimum the answer is 0, at or above the observed maximum
    /// it is 1. In between, under/overflowed samples are resolved
    /// conservatively (underflow counts as below once `x ≥ lo`; overflow
    /// counts as above until `x ≥ max`), so for `x` between `hi` and the
    /// maximum the estimate is a lower bound.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        if x >= self.stats.max() {
            return 1.0;
        }
        if x < self.lo {
            return 0.0;
        }
        let full_buckets = (((x - self.lo) / self.bin_width) as usize).min(self.bins.len());
        let below: u64 = self.underflow + self.bins[..full_buckets].iter().sum::<u64>();
        below as f64 / total as f64
    }

    fn same_layout(&self, other: &Self) -> bool {
        self.lo == other.lo
            && self.bin_width == other.bin_width
            && self.bins.len() == other.bins.len()
    }
}

impl Merge for HistogramSketch {
    /// The identity adopts the other operand's bucket layout on merge, so
    /// one neutral element serves every layout.
    fn identity() -> Self {
        HistogramSketch {
            lo: 0.0,
            bin_width: 0.0,
            bins: Vec::new(),
            underflow: 0,
            overflow: 0,
            stats: StreamSummary::new(),
        }
    }

    fn merge(&mut self, other: &Self) {
        if other.bins.is_empty() {
            return;
        }
        if self.bins.is_empty() {
            *self = other.clone();
            return;
        }
        assert!(
            self.same_layout(other),
            "merging histogram sketches with different bucket layouts"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cdf;

    #[test]
    fn stream_summary_matches_whole_sample_statistics() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = StreamSummary::of(samples.iter().copied());
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.mean(), crate::mean(&samples));
        assert!((s.std_dev() - crate::std_dev(&samples)).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_summary_is_defined() {
        let s = StreamSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let mut merged = StreamSummary::identity();
        merged.merge(&s);
        assert_eq!(merged, s);
    }

    #[test]
    fn stream_summary_drops_nans() {
        let s = StreamSummary::of([1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 4.0);
    }

    #[test]
    fn merge_is_exact_on_integer_valued_samples() {
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 37) % 257) as f64).collect();
        let whole = StreamSummary::of(samples.iter().copied());
        for chunk in [1usize, 3, 64, 1000] {
            let merged = StreamSummary::merge_all(
                samples
                    .chunks(chunk)
                    .map(|c| StreamSummary::of(c.iter().copied())),
            );
            assert_eq!(whole, merged, "chunk {chunk}");
        }
    }

    #[test]
    fn sketch_counts_every_sample_once() {
        let mut h = HistogramSketch::new(0.0, 100.0, 10);
        for x in [-5.0, 0.0, 9.99, 10.0, 55.0, 99.9, 100.0, 1e9, f64::NAN] {
            h.push(x);
        }
        assert_eq!(h.count(), 8); // NaN dropped.
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2); // 100.0 and 1e9.
        assert_eq!(h.bins.iter().sum::<u64>(), 5);
    }

    #[test]
    fn sketch_quantiles_stay_within_one_bin_of_exact() {
        let samples: Vec<f64> = (0..5000).map(|i| ((i * i) % 977) as f64).collect();
        let cdf = Cdf::new(samples.clone());
        let mut h = HistogramSketch::new(0.0, 1000.0, 100);
        for &x in &samples {
            h.push(x);
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = cdf.quantile(q);
            let est = h.quantile(q);
            assert!(
                (est - exact).abs() <= h.bin_width(),
                "q={q}: sketch {est} vs exact {exact} (bin width {})",
                h.bin_width()
            );
        }
    }

    #[test]
    fn empty_sketch_is_defined() {
        let h = HistogramSketch::new(0.0, 10.0, 5);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.fraction_below(3.0), 0.0);
    }

    #[test]
    fn sketch_merge_is_bucketwise_and_layout_checked() {
        let samples: Vec<f64> = (0..300).map(|i| (i % 97) as f64).collect();
        let mut whole = HistogramSketch::new(0.0, 100.0, 20);
        for &x in &samples {
            whole.push(x);
        }
        let merged = HistogramSketch::merge_all(samples.chunks(7).map(|c| {
            let mut h = HistogramSketch::new(0.0, 100.0, 20);
            for &x in c {
                h.push(x);
            }
            h
        }));
        assert_eq!(whole, merged);
        // The identity is neutral on both sides.
        let mut left = HistogramSketch::identity();
        left.merge(&whole);
        assert_eq!(left, whole);
        let mut right = whole.clone();
        right.merge(&HistogramSketch::identity());
        assert_eq!(right, whole);
    }

    #[test]
    #[should_panic(expected = "layout-free")]
    fn sketch_push_rejects_the_layout_free_identity() {
        // A sample pushed into the layout-free identity would be silently
        // dropped by a later merge's emptiness check; refuse it instead so
        // the identity law can never be violated.
        HistogramSketch::identity().push(5.0);
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn sketch_merge_rejects_mismatched_layouts() {
        let mut a = HistogramSketch::new(0.0, 100.0, 10);
        a.push(1.0);
        let mut b = HistogramSketch::new(0.0, 200.0, 10);
        b.push(1.0);
        a.merge(&b);
    }

    #[test]
    fn fraction_below_is_exact_on_bucket_edges() {
        let mut h = HistogramSketch::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.push(i as f64);
        }
        assert_eq!(h.fraction_below(50.0), 0.5);
        assert_eq!(h.fraction_below(100.0), 1.0);
        assert_eq!(h.fraction_below(-1.0), 0.0);
    }

    #[test]
    fn fraction_below_counts_overflowed_samples_at_the_extremes() {
        let mut h = HistogramSketch::new(0.0, 100.0, 10);
        h.push(50.0);
        h.push(40_000.0); // overflow bucket
        assert_eq!(h.fraction_below(60.0), 0.5);
        // At/above the tracked maximum the answer is exact, overflow
        // included.
        assert_eq!(h.fraction_below(40_000.0), 1.0);
        assert_eq!(h.fraction_below(1e9), 1.0);
        // Between hi and max the overflowed sample resolves as above.
        assert_eq!(h.fraction_below(500.0), 0.5);
    }
}
