//! Plain-text table / bar-chart rendering for the `repro` harness.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }
}

/// Render a [`Table`] with aligned columns.
pub fn render_table(table: &Table) -> String {
    let cols = table.headers.len();
    let mut widths: Vec<usize> = table.headers.iter().map(|h| h.len()).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&table.headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render labelled values as a horizontal ASCII bar chart (used for the
/// stacked-share figures).
pub fn render_bar_table(title: &str, entries: &[(String, f64)], max_width: usize) -> String {
    let max = entries.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_width = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in entries {
        let bar_len = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{:<label_width$}  {:>10.2}  {}\n",
            label,
            value,
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let s = render_table(&t);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Columns align: "value" column starts at the same offset.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), offset);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = render_bar_table(
            "demo",
            &[("a".into(), 10.0), ("b".into(), 5.0), ("c".into(), 0.0)],
            20,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].matches('#').count(), 20);
        assert_eq!(lines[2].matches('#').count(), 10);
        assert_eq!(lines[3].matches('#').count(), 0);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let t = Table::new(&[]);
        assert!(!render_table(&t).is_empty());
        let s = render_bar_table("t", &[], 10);
        assert_eq!(s, "t\n");
    }
}
