//! Basic summary statistics.

/// Arithmetic mean (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (0.0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Mean with a 95% confidence interval half-width (normal approximation,
/// as used for the error bars of Fig 11).
pub fn mean_ci95(values: &[f64]) -> (f64, f64) {
    let m = mean(values);
    if values.len() < 2 {
        return (m, 0.0);
    }
    let half = 1.96 * std_dev(values) / (values.len() as f64).sqrt();
    (m, half)
}

/// The `p`-th percentile (0..=100) using linear interpolation. NaN samples
/// are dropped (like [`crate::Cdf::new`]); an all-NaN or empty input
/// reports 0.0 rather than panicking in the sort.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let clamped = p.clamp(0.0, 100.0) / 100.0;
    let idx = clamped * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// A five-number summary plus mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl Summary {
    /// Summarise a sample.
    pub fn of(values: &[f64]) -> Summary {
        Summary {
            min: percentile(values, 0.0),
            p25: percentile(values, 25.0),
            median: percentile(values, 50.0),
            p75: percentile(values, 75.0),
            max: percentile(values, 100.0),
            mean: mean(values),
            count: values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.138).abs() < 0.01);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(median(&v), 2.5);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(median(&[]), 0.0);
        let (m, ci) = mean_ci95(&[]);
        assert_eq!((m, ci), (0.0, 0.0));
        let s = Summary::of(&[]);
        assert_eq!(
            (s.min, s.median, s.max, s.mean, s.count),
            (0.0, 0.0, 0.0, 0.0, 0)
        );
    }

    #[test]
    fn single_sample_inputs_are_defined() {
        // n < 2: the CI half-width must be exactly 0, never NaN.
        let (m, ci) = mean_ci95(&[7.5]);
        assert_eq!((m, ci), (7.5, 0.0));
        assert_eq!(std_dev(&[7.5]), 0.0);
        assert_eq!(percentile(&[7.5], 0.0), 7.5);
        assert_eq!(percentile(&[7.5], 100.0), 7.5);
        let s = Summary::of(&[7.5]);
        assert_eq!((s.min, s.median, s.max, s.count), (7.5, 7.5, 7.5, 1));
    }

    #[test]
    fn percentile_drops_nans_instead_of_panicking() {
        assert_eq!(percentile(&[f64::NAN, 1.0, 3.0], 100.0), 3.0);
        assert_eq!(median(&[f64::NAN, 2.0]), 2.0);
        // All-NaN input degrades to the empty-input contract.
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, ci_small) = mean_ci95(&small);
        let (_, ci_large) = mean_ci95(&large);
        assert!(ci_large < ci_small);
    }

    #[test]
    fn summary_is_consistent() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.5);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }
}
