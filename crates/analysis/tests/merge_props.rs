//! Property tests for the streaming sketch algebra: the [`Merge`] monoid
//! laws (identity, commutativity, associativity — bit-for-bit on the
//! integer-valued metrics the scanners stream), and the histogram sketch's
//! one-bin-width quantile error bound against the exact [`Cdf`].

use proptest::prelude::*;

use quicert_analysis::{Cdf, HistogramSketch, Merge, StreamSummary};

/// Build a summary from integer-valued samples (what the scanners stream:
/// byte counts, round trips, chain depths).
fn summary_of(samples: &[u64]) -> StreamSummary {
    StreamSummary::of(samples.iter().map(|&x| x as f64))
}

fn sketch_of(samples: &[u64]) -> HistogramSketch {
    let mut h = HistogramSketch::new(0.0, 4_096.0, 64);
    for &x in samples {
        h.push(x as f64);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_summary_merge_laws(
        xs in proptest::collection::vec(0u64..5_000, 0..40),
        ys in proptest::collection::vec(0u64..5_000, 0..40),
        zs in proptest::collection::vec(0u64..5_000, 0..40),
    ) {
        let (a, b, c) = (summary_of(&xs), summary_of(&ys), summary_of(&zs));

        // Identity on both sides.
        let mut left = StreamSummary::identity();
        left.merge(&a);
        prop_assert_eq!(left, a);
        let mut right = a;
        right.merge(&StreamSummary::identity());
        prop_assert_eq!(right, a);

        // Commutativity.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        // Associativity.
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);

        // And the merged summary equals the whole-sample summary.
        let whole: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(ab_c, summary_of(&whole));
    }

    #[test]
    fn histogram_sketch_merge_laws(
        xs in proptest::collection::vec(0u64..6_000, 0..40),
        ys in proptest::collection::vec(0u64..6_000, 0..40),
        zs in proptest::collection::vec(0u64..6_000, 0..40),
    ) {
        let (a, b, c) = (sketch_of(&xs), sketch_of(&ys), sketch_of(&zs));

        let mut left = HistogramSketch::identity();
        left.merge(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&HistogramSketch::identity());
        prop_assert_eq!(&right, &a);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let whole: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&ab_c, &sketch_of(&whole));
    }

    #[test]
    fn sketch_quantiles_track_the_exact_cdf_within_one_bin(
        samples in proptest::collection::vec(0u64..4_000, 1..400),
        q in 0.0f64..1.0,
    ) {
        let sketch = sketch_of(&samples);
        let cdf = Cdf::new(samples.iter().map(|&x| x as f64).collect());
        let exact = cdf.quantile(q);
        let est = sketch.quantile(q);
        prop_assert!(
            (est - exact).abs() <= sketch.bin_width(),
            "q={}: sketch {} vs exact {} (bin width {})",
            q, est, exact, sketch.bin_width()
        );
        // The endpoints are exact, not just bounded.
        prop_assert_eq!(sketch.quantile(0.0), cdf.quantile(0.0));
        prop_assert_eq!(sketch.quantile(1.0), cdf.quantile(1.0));
    }

    #[test]
    fn summary_chunking_is_invariant(
        samples in proptest::collection::vec(0u64..100_000, 0..300),
        chunk in 1usize..64,
    ) {
        let whole = summary_of(&samples);
        let chunked = StreamSummary::merge_all(samples.chunks(chunk).map(summary_of));
        prop_assert_eq!(whole, chunked, "chunk size {}", chunk);
    }
}
