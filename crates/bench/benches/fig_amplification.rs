//! Benches regenerating Fig 9 (telescope), the §4.3 ZMap PoP scan, Fig 11
//! (before/after disclosure) and Table 3 (historical policies).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use quicert_bench::{bench_campaign, print_once};
use quicert_core::experiments::amplification;

fn fig9_backscatter(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig9", || amplification::fig9(campaign, 6).render());
    c.bench_function("fig9_backscatter", |b| {
        b.iter(|| amplification::fig9(black_box(campaign), 4))
    });
}

fn zmap_meta_pop(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("zmap", || {
        amplification::meta_pop_scan(campaign, false).render()
    });
    c.bench_function("zmap_meta_pop", |b| {
        b.iter(|| amplification::meta_pop_scan(black_box(campaign), false))
    });
}

fn fig11_meta_disclosure(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig11", || amplification::fig11(campaign, 2).render());
    c.bench_function("fig11_meta_disclosure", |b| {
        b.iter(|| amplification::fig11(black_box(campaign), 2))
    });
}

fn table3_draft_policies(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("table3", || amplification::table3(campaign).render());
    c.bench_function("table3_draft_policies", |b| {
        b.iter(|| amplification::table3(black_box(campaign)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig9_backscatter, zmap_meta_pop, fig11_meta_disclosure, table3_draft_policies
}
criterion_main!(benches);
