//! Benches regenerating the certificate-corpus figures: Fig 2b, Fig 6,
//! Fig 7, Fig 8, Table 2 and Fig 14.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use quicert_bench::{bench_campaign, print_once};
use quicert_core::experiments::certs;

fn fig2_cert_fields(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig2b", || certs::fig2b(campaign).render());
    c.bench_function("fig2_cert_fields", |b| {
        b.iter(|| certs::fig2b(black_box(campaign)))
    });
}

fn fig6_chain_sizes(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig6", || certs::fig6(campaign).render());
    c.bench_function("fig6_chain_sizes", |b| {
        b.iter(|| certs::fig6(black_box(campaign)))
    });
}

fn fig7_parent_chains(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig7", || {
        format!(
            "{}\n{}",
            certs::fig7(campaign, true).render("QUIC services"),
            certs::fig7(campaign, false).render("HTTPS-only services")
        )
    });
    c.bench_function("fig7_parent_chains", |b| {
        b.iter(|| {
            (
                certs::fig7(black_box(campaign), true),
                certs::fig7(black_box(campaign), false),
            )
        })
    });
}

fn fig8_field_by_type(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig8", || certs::render_fig8(&certs::fig8(campaign)));
    c.bench_function("fig8_field_by_type", |b| {
        b.iter(|| certs::fig8(black_box(campaign)))
    });
}

fn table2_crypto_algos(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("table2", || certs::table2(campaign).render());
    c.bench_function("table2_crypto_algos", |b| {
        b.iter(|| certs::table2(black_box(campaign)))
    });
}

fn fig14_cruise_liner(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig14", || certs::fig14(campaign).render());
    c.bench_function("fig14_cruise_liner", |b| {
        b.iter(|| certs::fig14(black_box(campaign)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig2_cert_fields, fig6_chain_sizes, fig7_parent_chains,
              fig8_field_by_type, table2_crypto_algos, fig14_cruise_liner
}
criterion_main!(benches);
