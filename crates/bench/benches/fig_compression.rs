//! Benches regenerating Table 1 (browser profiles + algorithm support) and
//! the §4.2 compression study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use quicert_bench::{bench_campaign, print_once};
use quicert_compress::Algorithm;
use quicert_core::experiments::compression;

fn table1_browsers(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("table1", || compression::table1(campaign).render());
    c.bench_function("table1_browsers", |b| {
        b.iter(|| compression::table1(black_box(campaign)))
    });
}

fn compression_study(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("compression_study", || {
        Algorithm::ALL
            .iter()
            .map(|&alg| {
                format!(
                    "[{alg}] {}",
                    compression::compression_study(campaign, alg, 10).render()
                )
            })
            .collect::<Vec<_>>()
            .join("")
    });
    c.bench_function("compression_study_brotli", |b| {
        b.iter(|| compression::compression_study(black_box(campaign), Algorithm::Brotli, 20))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table1_browsers, compression_study
}
criterion_main!(benches);
