//! Benches regenerating Fig 3 (Initial sweep), Fig 4 (amplification CDF),
//! Fig 5 (multi-RTT payloads), Figs 12/13 (rank groups) and the §4.1
//! reachability experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use quicert_bench::{bench_campaign, print_once};
use quicert_core::experiments::handshakes;
use quicert_scanner::quicreach;

fn fig3_initial_sweep(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig3", || handshakes::fig3(campaign).render());
    // The full 29-size sweep is printed above; the benchmark measures one
    // representative bar to keep iteration times sane.
    c.bench_function("fig3_bar_at_1362", |b| {
        b.iter(|| {
            let results = quicreach::scan(campaign.world(), black_box(1362));
            quicreach::summarize(1362, &results)
        })
    });
}

fn fig4_amplification_cdf(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig4", || {
        handshakes::render_fig4(&handshakes::fig4(campaign))
    });
    c.bench_function("fig4_amplification_cdf", |b| {
        b.iter(|| handshakes::fig4(black_box(campaign)))
    });
}

fn fig5_multirtt_payload(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig5", || handshakes::fig5(campaign).render());
    c.bench_function("fig5_multirtt_payload", |b| {
        b.iter(|| handshakes::fig5(black_box(campaign)))
    });
}

fn fig12_13_rank_groups(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("fig12_13", || {
        handshakes::render_rank_groups(&handshakes::rank_groups(campaign))
    });
    c.bench_function("fig12_13_rank_groups", |b| {
        b.iter(|| handshakes::rank_groups(black_box(campaign)))
    });
}

fn reachability_drop(c: &mut Criterion) {
    let campaign = bench_campaign();
    print_once("reachability", || {
        handshakes::reachability(campaign).render()
    });
    c.bench_function("reachability_drop", |b| {
        b.iter(|| handshakes::reachability(black_box(campaign)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3_initial_sweep, fig4_amplification_cdf, fig5_multirtt_payload,
              fig12_13_rank_groups, reachability_drop
}
criterion_main!(benches);
