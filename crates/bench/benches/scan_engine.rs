//! Scan-engine throughput: the end-to-end quicreach scan at 1 / 2 / auto
//! workers, the batched (`SimNet`) vs per-probe exchange paths, and the
//! warm (resumption) scan path.
//!
//! Unlike the figure benches this harness also *persists* its measurements:
//! it writes a `BENCH_scan.json` to the workspace root so future changes
//! have a perf trajectory to compare against.
//!
//! Set `QUICERT_BENCH_SMOKE=1` (the CI default) to run a down-scaled smoke
//! configuration that finishes in seconds while still exercising every
//! timed path and emitting the same JSON shape.
//!
//! ```sh
//! cargo bench -p quicert-bench --bench scan_engine
//! QUICERT_BENCH_SMOKE=1 cargo bench -p quicert-bench --bench scan_engine
//! ```

use std::hint::black_box;
use std::time::Instant;

use quicert_core::ScanEngine;
use quicert_netsim::NetworkProfile;
use quicert_pki::{CertificateEra, DomainRecord, World, WorldConfig};
use quicert_scanner::quicreach;
use quicert_session::ResumptionPolicy;

const SEED: u64 = 0x5CA1;
const INITIAL: usize = 1362;

/// Bench scale: (domains, samples); the smoke configuration trades
/// statistical niceness for CI wall-clock.
fn scale() -> (usize, usize) {
    if smoke() {
        (600, 1)
    } else {
        (3_000, 3)
    }
}

fn smoke() -> bool {
    std::env::var_os("QUICERT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Population for the streaming at-scale row: the paper's full million in
/// a real run, downscaled in smoke mode so CI still exercises the
/// streaming path end to end.
fn stream_population() -> usize {
    if smoke() {
        20_000
    } else {
        1_000_000
    }
}

fn world(domains: usize) -> World {
    World::generate(WorldConfig {
        domains,
        seed: SEED,
        ..WorldConfig::default()
    })
}

/// Mean seconds of `samples` runs of `f` (one warm-up run first).
fn time_mean(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed().as_secs_f64() / samples as f64
}

struct EngineRow {
    workers: usize,
    resolved_workers: usize,
    seconds: f64,
}

/// End-to-end: a fresh engine computes the default-size quicreach artifact
/// (world generation excluded from the timed region).
fn bench_engine(domains: usize, samples: usize, workers: usize) -> EngineRow {
    let mut resolved_workers = 0;
    let seconds = {
        // One warm-up plus `samples` timed runs, each on a fresh engine so
        // the artifact cache never short-circuits the scan.
        let mut run = || {
            let engine = ScanEngine::new(world(domains), INITIAL, workers);
            resolved_workers = engine.workers();
            black_box(engine.quicreach(INITIAL).len());
        };
        run();
        // World generation dominates engine construction; regenerate
        // outside the timed region by pre-building the engines.
        let mut engines: Vec<ScanEngine> = (0..samples)
            .map(|_| ScanEngine::new(world(domains), INITIAL, workers))
            .collect();
        let start = Instant::now();
        for engine in &mut engines {
            black_box(engine.quicreach(INITIAL).len());
        }
        start.elapsed().as_secs_f64() / samples as f64
    };
    EngineRow {
        workers,
        resolved_workers,
        seconds,
    }
}

fn main() {
    let (domains, samples) = scale();
    let world = world(domains);
    let records: Vec<&DomainRecord> = world.quic_services().collect();
    eprintln!(
        "scan_engine bench: {domains} domains, {} QUIC services, Initial {INITIAL}, \
         {samples} samples",
        records.len()
    );

    // Batched (one SimNet per shard) vs per-probe (one exchange at a time),
    // both serial so the comparison isolates the scheduling path.
    let batched = time_mean(samples, || {
        black_box(quicreach::scan_records(&world, &records, INITIAL).len());
    });
    let per_probe = time_mean(samples, || {
        black_box(
            quicreach::scan_records_per_probe(&world, &records, INITIAL, NetworkProfile::Ideal)
                .len(),
        );
    });
    // The warm (resumption) path probes every service twice — cold visit
    // with ticket issuance, then the resumed revisit.
    let mut warm_resumed = 0usize;
    let warm = time_mean(samples, || {
        let results = quicreach::warm_scan_records(
            &world,
            &records,
            INITIAL,
            NetworkProfile::Ideal,
            ResumptionPolicy::WarmAfterFirstVisit,
        );
        warm_resumed = results.iter().filter(|r| r.resumed).count();
        black_box(results.len());
    });
    // The post-quantum era path: same scan, ML-DSA chains — an order of
    // magnitude more flight bytes to build, fragment and simulate.
    let pq = time_mean(samples, || {
        black_box(
            quicreach::scan_records_era(
                &world,
                &records,
                INITIAL,
                NetworkProfile::Ideal,
                CertificateEra::PostQuantum,
            )
            .len(),
        );
    });
    eprintln!("scan path  batched    {batched:>10.4} s");
    eprintln!(
        "scan path  per-probe  {per_probe:>10.4} s  ({:.2}x)",
        per_probe / batched
    );
    eprintln!(
        "scan path  warm       {warm:>10.4} s  ({warm_resumed} resumed, \
         {:.2}x batched cold)",
        warm / batched
    );
    eprintln!(
        "scan path  pq-era     {pq:>10.4} s  ({:.2}x batched classical)",
        pq / batched
    );

    // The engine end to end at 1 / 2 / auto workers.
    let engine_rows: Vec<EngineRow> = [1usize, 2, 0]
        .into_iter()
        .map(|workers| bench_engine(domains, samples, workers))
        .collect();
    for row in &engine_rows {
        eprintln!(
            "engine     workers={} (resolved {})  {:>10.4} s",
            row.workers, row.resolved_workers, row.seconds
        );
    }

    // The streaming at-scale path: a never-materialized population pumped
    // through ScanEngine::stream_quicreach in bounded memory (one chunk
    // per worker plus the mergeable summaries). World generation is part
    // of the timed region by design — at scale the population exists only
    // as chunks derived inside the scan.
    let stream_domains = stream_population();
    let stream_config = WorldConfig {
        domains: stream_domains,
        seed: SEED,
        ..WorldConfig::default()
    };
    let mut stream_probed = 0usize;
    let mut stream_reachable = 0usize;
    let mut stream_chunk = 0usize;
    let mut stream_workers = 0usize;
    let stream_seconds = {
        let mut run = || {
            let engine = ScanEngine::streaming(stream_config.clone(), INITIAL, 0);
            stream_chunk = engine.stream_chunk();
            stream_workers = engine.workers();
            let shard = engine.stream_quicreach(INITIAL);
            stream_probed = shard.total();
            stream_reachable = shard.classes.reachable();
            black_box(shard.total());
        };
        // One timed pass only: at a million records the run *is* the
        // statistics (smoke mode keeps the same shape).
        let start = Instant::now();
        run();
        start.elapsed().as_secs_f64()
    };
    eprintln!(
        "scan_1m    streamed   {stream_seconds:>10.4} s  ({stream_domains} domains, \
         {stream_probed} probed, {stream_reachable} reachable, chunk {stream_chunk}, \
         {stream_workers} workers)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"domains\": {domains},\n"));
    json.push_str(&format!("  \"quic_services\": {},\n", records.len()));
    json.push_str(&format!("  \"initial_size\": {INITIAL},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"scan_paths\": {\n");
    json.push_str(&format!("    \"batched_seconds\": {batched:.6},\n"));
    json.push_str(&format!("    \"per_probe_seconds\": {per_probe:.6}\n"));
    json.push_str("  },\n");
    json.push_str("  \"scan_warm\": {\n");
    json.push_str(&format!("    \"seconds\": {warm:.6},\n"));
    json.push_str(&format!("    \"resumed\": {warm_resumed},\n"));
    json.push_str(&format!(
        "    \"policy\": \"{}\"\n",
        ResumptionPolicy::WarmAfterFirstVisit.name()
    ));
    json.push_str("  },\n");
    json.push_str("  \"scan_pq_era\": {\n");
    json.push_str(&format!("    \"seconds\": {pq:.6},\n"));
    json.push_str(&format!(
        "    \"era\": \"{}\"\n",
        CertificateEra::PostQuantum.name()
    ));
    json.push_str("  },\n");
    json.push_str("  \"scan_1m\": {\n");
    json.push_str(&format!("    \"population\": {stream_domains},\n"));
    json.push_str(&format!("    \"probed\": {stream_probed},\n"));
    json.push_str(&format!("    \"reachable\": {stream_reachable},\n"));
    json.push_str(&format!("    \"chunk_size\": {stream_chunk},\n"));
    json.push_str(&format!("    \"workers\": {stream_workers},\n"));
    json.push_str(&format!("    \"smoke\": {},\n", smoke()));
    json.push_str(&format!("    \"seconds\": {stream_seconds:.6}\n"));
    json.push_str("  },\n");
    json.push_str("  \"engine_end_to_end\": [\n");
    for (i, row) in engine_rows.iter().enumerate() {
        let comma = if i + 1 < engine_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"workers\": {}, \"resolved_workers\": {}, \"seconds\": {:.6}}}{comma}\n",
            row.workers, row.resolved_workers, row.seconds
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    println!("{json}");
}
