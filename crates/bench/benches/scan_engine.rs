//! Scan-engine throughput: the end-to-end quicreach scan at 1 / 2 / 4 / 8
//! workers, the batched (`SimNet`) vs per-probe exchange paths, the warm
//! (resumption) scan path, and the streaming pump at the paper's million
//! (and a ten-million stress row).
//!
//! Unlike the figure benches this harness also *persists* its measurements:
//! it writes a `BENCH_scan.json` to the workspace root so future changes
//! have a perf trajectory to compare against.
//!
//! Set `QUICERT_BENCH_SMOKE=1` (the CI default) to run a down-scaled smoke
//! configuration that finishes in seconds while still exercising every
//! timed path and emitting the same JSON shape.
//!
//! ```sh
//! cargo bench -p quicert-bench --bench scan_engine
//! QUICERT_BENCH_SMOKE=1 cargo bench -p quicert-bench --bench scan_engine
//! ```

use std::hint::black_box;
use std::time::Instant;

use quicert_churn::ChurnConfig;
use quicert_core::engine::host_parallelism;
use quicert_core::{CampaignConfig, CampaignService, PumpStats, ScanEngine, ServiceConfig};
use quicert_netsim::{FaultPlan, NetworkProfile};
use quicert_pki::{CertificateEra, DomainRecord, World, WorldConfig};
use quicert_scanner::quicreach;
use quicert_session::ResumptionPolicy;

const SEED: u64 = 0x5CA1;
const INITIAL: usize = 1362;

/// Bench scale: (domains, samples); the smoke configuration trades
/// statistical niceness for CI wall-clock.
fn scale() -> (usize, usize) {
    if smoke() {
        (600, 1)
    } else {
        (3_000, 3)
    }
}

fn smoke() -> bool {
    std::env::var_os("QUICERT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Population for the streaming at-scale row: the paper's full million in
/// a real run, downscaled in smoke mode so CI still exercises the
/// streaming path end to end.
fn stream_population() -> usize {
    if smoke() {
        20_000
    } else {
        1_000_000
    }
}

/// Population for the ten-million stress row (smoke-scaled in CI).
fn stream_population_10m() -> usize {
    if smoke() {
        50_000
    } else {
        10_000_000
    }
}

/// Population for the chaos fault-grid rows: fault injection adds PTO
/// retransmission rounds per probe, so the rows run a smaller population
/// than the fault-free streaming rows.
fn chaos_population() -> usize {
    if smoke() {
        4_000
    } else {
        100_000
    }
}

fn world(domains: usize) -> World {
    World::generate(WorldConfig {
        domains,
        seed: SEED,
        ..WorldConfig::default()
    })
}

/// Mean seconds of `samples` runs of `f` (one warm-up run first).
fn time_mean(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed().as_secs_f64() / samples as f64
}

struct EngineRow {
    workers: usize,
    resolved_workers: usize,
    seconds: f64,
}

/// End-to-end: a fresh engine computes the default-size quicreach artifact
/// (world generation excluded from the timed region).
fn bench_engine(domains: usize, samples: usize, workers: usize) -> EngineRow {
    let mut resolved_workers = 0;
    let seconds = {
        // One warm-up plus `samples` timed runs, each on a fresh engine so
        // the artifact cache never short-circuits the scan.
        let mut run = || {
            let engine = ScanEngine::new(world(domains), INITIAL, workers);
            resolved_workers = engine.workers();
            black_box(engine.quicreach(INITIAL).len());
        };
        run();
        // World generation dominates engine construction; regenerate
        // outside the timed region by pre-building the engines.
        let mut engines: Vec<ScanEngine> = (0..samples)
            .map(|_| ScanEngine::new(world(domains), INITIAL, workers))
            .collect();
        let start = Instant::now();
        for engine in &mut engines {
            black_box(engine.quicreach(INITIAL).len());
        }
        start.elapsed().as_secs_f64() / samples as f64
    };
    EngineRow {
        workers,
        resolved_workers,
        seconds,
    }
}

struct StreamRow {
    population: usize,
    workers: usize,
    memoized: bool,
    seconds: f64,
    probed: usize,
    reachable: usize,
    pump: PumpStats,
    /// The engine's full metrics registry after the scan, rendered as one
    /// compact JSON object — each bench row carries its own snapshot.
    metrics_json: String,
}

/// One streamed scan of a never-materialized population at one requested
/// worker count, with the pump's own counters captured. `memoized` toggles
/// the scenario-class flyweight — the bypassed row is the A/B reference
/// the memoized rows are guarded against (results are bit-identical
/// either way; only the clock moves).
fn bench_stream(label: &str, population: usize, workers: usize, memoized: bool) -> StreamRow {
    let config = WorldConfig {
        domains: population,
        seed: SEED,
        ..WorldConfig::default()
    };
    let engine = ScanEngine::streaming(config, INITIAL, workers).with_memoization(memoized);
    // One timed pass only: at a million-plus records the run *is* the
    // statistics (smoke mode keeps the same shape).
    let start = Instant::now();
    let shard = engine.stream_quicreach(INITIAL);
    let seconds = start.elapsed().as_secs_f64();
    black_box(shard.total());
    let pump = engine.pump_stats().unwrap_or_default();
    let metrics_json = engine.metrics_registry().render_json();
    let totals = pump.totals();
    let memo_note = if memoized { "memo" } else { "no-memo" };
    eprintln!(
        "{label:<10} {memo_note:<8} {seconds:>10.4} s  ({population} domains, {} probed, \
         {} reachable, {} workers of {} requested, {} chunks, \
         memo {} hits / {} misses / {} classes)",
        shard.total(),
        shard.classes.reachable(),
        pump.effective_workers,
        pump.requested_workers,
        totals.chunks_claimed,
        totals.memo_hits,
        totals.memo_misses,
        totals.distinct_classes
    );
    StreamRow {
        population,
        workers,
        memoized,
        seconds,
        probed: shard.total(),
        reachable: shard.classes.reachable(),
        pump,
        metrics_json,
    }
}

struct ChaosRow {
    plan: FaultPlan,
    seconds: f64,
    probed: usize,
    reachable: usize,
    client_retransmissions: u64,
    server_retransmissions: u64,
    fault_drops: u64,
    fault_duplications: u64,
    fault_corruptions: u64,
    stall_ms: f64,
}

/// One streamed chaos scan per ladder rung: the fault-free rung is the
/// baseline, the lossy rungs carry the recovery-cost counters the CI
/// guard reads (retransmissions must be nonzero under loss, zero without).
fn bench_chaos(population: usize, plan: FaultPlan) -> ChaosRow {
    let config = WorldConfig {
        domains: population,
        seed: SEED,
        ..WorldConfig::default()
    };
    let engine = ScanEngine::streaming(config, INITIAL, 8);
    let start = Instant::now();
    let shard = engine.stream_quicreach_chaos(
        CertificateEra::Classical,
        NetworkProfile::Ideal,
        plan,
        INITIAL,
    );
    let seconds = start.elapsed().as_secs_f64();
    black_box(shard.total());
    eprintln!(
        "scan_chaos {:<10} {seconds:>10.4} s  ({population} domains, {} reachable, \
         {} cli rtx, {} srv rtx, {} drops, {} dups, {} corrupt)",
        plan.to_string(),
        shard.classes.reachable(),
        shard.client_retransmissions,
        shard.server_retransmissions,
        shard.fault_drops,
        shard.fault_duplications,
        shard.fault_corruptions,
    );
    ChaosRow {
        plan,
        seconds,
        probed: shard.total(),
        reachable: shard.classes.reachable(),
        client_retransmissions: shard.client_retransmissions,
        server_retransmissions: shard.server_retransmissions,
        fault_drops: shard.fault_drops,
        fault_duplications: shard.fault_duplications,
        fault_corruptions: shard.fault_corruptions,
        stall_ms: shard.stall_ns_total as f64 / 1e6,
    }
}

struct ChurnRow {
    population: usize,
    delta_seconds: f64,
    delta_probed: usize,
    full_seconds: f64,
    full_probed: usize,
    changed_ranks: usize,
    dirty_segments: usize,
    total_segments: usize,
}

/// The resident campaign's delta-scan path against a from-scratch full
/// rescan of the same churned tick. Tick 0 populates the segment cache
/// outside the timed region; tick 1 carries one tick of sparse churn, so
/// the delta re-folds a handful of segments while the full rescan pays
/// for the whole population. CI asserts the delta probes strictly fewer
/// records AND finishes faster (the two snapshots are bit-identical —
/// asserted inline).
fn bench_churn(population: usize) -> ChurnRow {
    let campaign = CampaignConfig::standard()
        .with_domains(population)
        .with_seed(SEED)
        .with_workers(8);
    let churn = ChurnConfig::new(SEED ^ 0x00C4_2A17, population);
    let mut service = CampaignService::new(
        ServiceConfig::new(campaign, churn).with_segment_size((population / 50).clamp(32, 1024)),
    );
    service.snapshot_at(0);
    let start = Instant::now();
    let delta = service.snapshot_at(1);
    let delta_seconds = start.elapsed().as_secs_f64();
    black_box(delta.reach.classes.reachable());
    let stats = *service
        .tick_log()
        .last()
        .expect("snapshot_at always logs a scan");
    let start = Instant::now();
    let full = service.full_rescan_at(1);
    let full_seconds = start.elapsed().as_secs_f64();
    black_box(full.reach.classes.reachable());
    assert_eq!(
        *delta, full,
        "delta scan diverged from the full rescan at tick 1"
    );
    eprintln!(
        "scan_churn delta      {delta_seconds:>10.4} s  ({population} domains, {} probed, \
         {} of {} segments, {} ranks churned)",
        stats.probed, stats.dirty_segments, stats.total_segments, stats.changed_ranks,
    );
    eprintln!(
        "scan_churn full       {full_seconds:>10.4} s  ({} probed, {:.2}x delta)",
        stats.full_probe_count,
        full_seconds / delta_seconds,
    );
    ChurnRow {
        population,
        delta_seconds,
        delta_probed: stats.probed,
        full_seconds,
        full_probed: stats.full_probe_count,
        changed_ranks: stats.changed_ranks,
        dirty_segments: stats.dirty_segments,
        total_segments: stats.total_segments,
    }
}

/// Serialize one streamed row as a JSON object. The per-row counters are
/// the engine's own metrics registry, embedded verbatim — the bench no
/// longer hand-serializes pump counters (the registry carries
/// `quicert_engine_*` totals, the `quicert_scan_*` probe split, and the
/// handshake-phase histograms).
fn stream_row_json(row: &StreamRow, speedup_vs_1w: f64, indent: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!("{indent}{{\n"));
    s.push_str(&format!("{indent}  \"workers\": {},\n", row.workers));
    s.push_str(&format!(
        "{indent}  \"effective_workers\": {},\n",
        row.pump.effective_workers
    ));
    s.push_str(&format!("{indent}  \"memoized\": {},\n", row.memoized));
    s.push_str(&format!("{indent}  \"population\": {},\n", row.population));
    s.push_str(&format!("{indent}  \"probed\": {},\n", row.probed));
    s.push_str(&format!("{indent}  \"reachable\": {},\n", row.reachable));
    s.push_str(&format!("{indent}  \"seconds\": {:.6},\n", row.seconds));
    s.push_str(&format!(
        "{indent}  \"speedup_vs_1w\": {speedup_vs_1w:.3},\n"
    ));
    s.push_str(&format!(
        "{indent}  \"fold_seconds_max\": {:.6},\n",
        row.pump.max_fold_seconds()
    ));
    s.push_str(&format!("{indent}  \"metrics\": {}\n", row.metrics_json));
    s.push_str(&format!("{indent}}}"));
    s
}

fn main() {
    let (domains, samples) = scale();
    let world = world(domains);
    let records: Vec<&DomainRecord> = world.quic_services().collect();
    eprintln!(
        "scan_engine bench: {domains} domains, {} QUIC services, Initial {INITIAL}, \
         {samples} samples",
        records.len()
    );

    // Batched (one SimNet per shard) vs per-probe (one exchange at a time),
    // both serial so the comparison isolates the scheduling path.
    let batched = time_mean(samples, || {
        black_box(quicreach::scan_records(&world, &records, INITIAL).len());
    });
    let per_probe = time_mean(samples, || {
        black_box(
            quicreach::scan_records_per_probe(&world, &records, INITIAL, NetworkProfile::Ideal)
                .len(),
        );
    });
    // The warm (resumption) path probes every service twice — cold visit
    // with ticket issuance, then the resumed revisit.
    let mut warm_resumed = 0usize;
    let warm = time_mean(samples, || {
        let results = quicreach::warm_scan_records(
            &world,
            &records,
            INITIAL,
            NetworkProfile::Ideal,
            ResumptionPolicy::WarmAfterFirstVisit,
        );
        warm_resumed = results.iter().filter(|r| r.resumed).count();
        black_box(results.len());
    });
    // The post-quantum era path: same scan, ML-DSA chains — an order of
    // magnitude more flight bytes to build, fragment and simulate.
    let pq = time_mean(samples, || {
        black_box(
            quicreach::scan_records_era(
                &world,
                &records,
                INITIAL,
                NetworkProfile::Ideal,
                CertificateEra::PostQuantum,
            )
            .len(),
        );
    });
    eprintln!("scan path  batched    {batched:>10.4} s");
    eprintln!(
        "scan path  per-probe  {per_probe:>10.4} s  ({:.2}x)",
        per_probe / batched
    );
    eprintln!(
        "scan path  warm       {warm:>10.4} s  ({warm_resumed} resumed, \
         {:.2}x batched cold)",
        warm / batched
    );
    eprintln!(
        "scan path  pq-era     {pq:>10.4} s  ({:.2}x batched classical)",
        pq / batched
    );

    // The engine end to end at 1 / 2 / 4 / 8 workers, each row with its
    // speedup over the 1-worker row. The engine caps spawned threads at
    // the host's cores, so oversubscribed rows report the serial (or
    // core-bound) time instead of regressing below it.
    let engine_rows: Vec<EngineRow> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|workers| bench_engine(domains, samples, workers))
        .collect();
    let engine_w1 = engine_rows[0].seconds;
    for row in &engine_rows {
        eprintln!(
            "engine     workers={} (resolved {})  {:>10.4} s  ({:.2}x vs 1w)",
            row.workers,
            row.resolved_workers,
            row.seconds,
            engine_w1 / row.seconds
        );
    }

    // The streaming at-scale path: a never-materialized population pumped
    // through ScanEngine::stream_quicreach in bounded memory (one chunk
    // per worker plus the mergeable summaries). World generation is part
    // of the timed region by design — at scale the population exists only
    // as chunks derived inside the scan. Measured at 1 and 8 requested
    // workers so the artifact carries the parallel speedup on multi-core
    // hosts (single-core hosts cap both rows to one pump thread).
    // Row order: memoized serial (the headline), memo-bypassed serial (the
    // A/B reference the CI ratio guard reads), memoized at 8 workers.
    let stream_domains = stream_population();
    let scan_1m_rows: Vec<StreamRow> = [(1usize, true), (1, false), (8, true)]
        .into_iter()
        .map(|(workers, memoized)| bench_stream("scan_1m", stream_domains, workers, memoized))
        .collect();
    let memo_speedup_1w = scan_1m_rows[1].seconds / scan_1m_rows[0].seconds;
    eprintln!("scan_1m    memo speedup at 1 worker: {memo_speedup_1w:.2}x");
    let scan_10m_rows: Vec<StreamRow> =
        vec![bench_stream("scan_10m", stream_population_10m(), 8, true)];

    // The chaos axis: the fault-free rung as baseline, one lossy rung and
    // the duplication-only rung. CI asserts the MODERATE row recovers
    // (nonzero retransmissions) and the NONE row never pays for recovery.
    let chaos_rows: Vec<ChaosRow> = [FaultPlan::NONE, FaultPlan::MODERATE, FaultPlan::DUP_STORM]
        .into_iter()
        .map(|plan| bench_chaos(chaos_population(), plan))
        .collect();

    // The resident-service axis: delta scan vs full rescan of one sparse
    // churn tick. CI asserts the delta probes strictly fewer records and
    // is strictly faster.
    let churn_row = bench_churn(chaos_population());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"domains\": {domains},\n"));
    json.push_str(&format!("  \"quic_services\": {},\n", records.len()));
    json.push_str(&format!("  \"initial_size\": {INITIAL},\n"));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"host_cpus\": {},\n", host_parallelism()));
    json.push_str(&format!("  \"smoke\": {},\n", smoke()));
    json.push_str("  \"scan_paths\": {\n");
    json.push_str(&format!("    \"batched_seconds\": {batched:.6},\n"));
    json.push_str(&format!("    \"per_probe_seconds\": {per_probe:.6}\n"));
    json.push_str("  },\n");
    json.push_str("  \"scan_warm\": {\n");
    json.push_str(&format!("    \"seconds\": {warm:.6},\n"));
    json.push_str(&format!("    \"resumed\": {warm_resumed},\n"));
    json.push_str(&format!(
        "    \"policy\": \"{}\"\n",
        ResumptionPolicy::WarmAfterFirstVisit.name()
    ));
    json.push_str("  },\n");
    json.push_str("  \"scan_pq_era\": {\n");
    json.push_str(&format!("    \"seconds\": {pq:.6},\n"));
    json.push_str(&format!(
        "    \"era\": \"{}\"\n",
        CertificateEra::PostQuantum.name()
    ));
    json.push_str("  },\n");
    let scan_1m_w1 = scan_1m_rows[0].seconds;
    json.push_str("  \"scan_1m\": {\n");
    json.push_str(&format!("    \"population\": {stream_domains},\n"));
    json.push_str(&format!("    \"memo_speedup_1w\": {memo_speedup_1w:.3},\n"));
    json.push_str("    \"rows\": [\n");
    for (i, row) in scan_1m_rows.iter().enumerate() {
        let comma = if i + 1 < scan_1m_rows.len() { "," } else { "" };
        json.push_str(&stream_row_json(row, scan_1m_w1 / row.seconds, "      "));
        json.push_str(comma);
        json.push('\n');
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"scan_10m\": {\n");
    json.push_str(&format!(
        "    \"population\": {},\n",
        scan_10m_rows[0].population
    ));
    json.push_str("    \"rows\": [\n");
    for (i, row) in scan_10m_rows.iter().enumerate() {
        let comma = if i + 1 < scan_10m_rows.len() { "," } else { "" };
        // The 10m section has no 1-worker row of its own; speedup is
        // relative to itself (1.0) unless more rows are added later.
        json.push_str(&stream_row_json(
            row,
            scan_10m_rows[0].seconds / row.seconds,
            "      ",
        ));
        json.push_str(comma);
        json.push('\n');
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"scan_chaos\": {\n");
    json.push_str(&format!("    \"population\": {},\n", chaos_population()));
    json.push_str("    \"rows\": [\n");
    for (i, row) in chaos_rows.iter().enumerate() {
        let comma = if i + 1 < chaos_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "      {{\"plan\": \"{}\", \"seconds\": {:.6}, \"probed\": {}, \
             \"reachable\": {}, \"client_retransmissions\": {}, \
             \"server_retransmissions\": {}, \"fault_drops\": {}, \
             \"fault_duplications\": {}, \"fault_corruptions\": {}, \
             \"stall_ms\": {:.3}}}{comma}\n",
            row.plan,
            row.seconds,
            row.probed,
            row.reachable,
            row.client_retransmissions,
            row.server_retransmissions,
            row.fault_drops,
            row.fault_duplications,
            row.fault_corruptions,
            row.stall_ms,
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"scan_churn\": {\n");
    json.push_str(&format!("    \"population\": {},\n", churn_row.population));
    json.push_str(&format!(
        "    \"delta_seconds\": {:.6},\n",
        churn_row.delta_seconds
    ));
    json.push_str(&format!(
        "    \"delta_probed\": {},\n",
        churn_row.delta_probed
    ));
    json.push_str(&format!(
        "    \"full_seconds\": {:.6},\n",
        churn_row.full_seconds
    ));
    json.push_str(&format!(
        "    \"full_probed\": {},\n",
        churn_row.full_probed
    ));
    json.push_str(&format!(
        "    \"changed_ranks\": {},\n",
        churn_row.changed_ranks
    ));
    json.push_str(&format!(
        "    \"dirty_segments\": {},\n",
        churn_row.dirty_segments
    ));
    json.push_str(&format!(
        "    \"total_segments\": {}\n",
        churn_row.total_segments
    ));
    json.push_str("  },\n");
    json.push_str("  \"engine_end_to_end\": [\n");
    for (i, row) in engine_rows.iter().enumerate() {
        let comma = if i + 1 < engine_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"workers\": {}, \"resolved_workers\": {}, \"seconds\": {:.6}, \
             \"speedup_vs_1w\": {:.3}}}{comma}\n",
            row.workers,
            row.resolved_workers,
            row.seconds,
            engine_w1 / row.seconds
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    println!("{json}");
}
