//! Micro-benchmarks of the substrates everything else is built on:
//! DER/X.509 encoding, chain issuance, compression throughput, the QUIC
//! handshake engine and varint codecs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use quicert_bench::bench_campaign;
use quicert_compress::Algorithm;
use quicert_netsim::{SimDuration, Wire};
use quicert_pki::ecosystem::{ChainId, LeafParams};
use quicert_quic::{run_handshake, ClientConfig, ServerBehavior, ServerConfig};
use quicert_x509::KeyAlgorithm;

fn leaf_params() -> LeafParams {
    LeafParams {
        common_name: "bench.example.org".into(),
        extra_sans: vec!["alt.bench.example.org".into()],
        key: KeyAlgorithm::EcdsaP256,
        scts: 2,
        seed: 0xBE,
    }
}

fn certificate_issuance(c: &mut Criterion) {
    let eco = &bench_campaign().world().ecosystem;
    c.bench_function("x509_issue_le_chain", |b| {
        b.iter(|| eco.issue(black_box(ChainId::LeR3Short), &leaf_params()))
    });
    c.bench_function("x509_issue_enterprise_chain", |b| {
        b.iter(|| eco.issue(black_box(ChainId::EnterpriseHuge), &leaf_params()))
    });
}

fn compression_throughput(c: &mut Criterion) {
    let eco = &bench_campaign().world().ecosystem;
    let chain = eco.issue(ChainId::LeR3X1Cross, &leaf_params());
    let der = chain.concatenated_der();
    let mut group = c.benchmark_group("compress_chain");
    group.throughput(Throughput::Bytes(der.len() as u64));
    for alg in Algorithm::ALL {
        group.bench_function(alg.name(), |b| {
            b.iter(|| quicert_compress::compress(black_box(alg), black_box(&der)))
        });
    }
    group.finish();
}

fn handshake_engine(c: &mut Criterion) {
    let eco = &bench_campaign().world().ecosystem;
    let chain = eco.issue(ChainId::LeR3Short, &leaf_params());
    let server = ServerConfig {
        behavior: ServerBehavior::rfc_compliant(),
        chain,
        leaf_key: KeyAlgorithm::EcdsaP256,
        compression_support: vec![Algorithm::Brotli],
        resumption: None,
        seed: 0xBE,
    };
    c.bench_function("quic_full_handshake", |b| {
        b.iter(|| {
            let mut wire = Wire::ideal(SimDuration::from_millis(20));
            run_handshake(
                ClientConfig::scanner(1362, std::net::Ipv4Addr::new(198, 51, 100, 1), 1),
                server.clone(),
                &mut wire,
                black_box(1),
            )
        })
    });
}

fn varint_codec(c: &mut Criterion) {
    let values: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) >> (i % 40))
        .collect();
    c.bench_function("quic_varint_roundtrip_1k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(8 * values.len());
            for &v in &values {
                quicert_quic::varint::write(&mut buf, v & ((1 << 62) - 1));
            }
            let mut pos = 0;
            let mut sum = 0u64;
            while pos < buf.len() {
                sum = sum.wrapping_add(quicert_quic::varint::read(&buf, &mut pos).unwrap());
            }
            black_box(sum)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = certificate_issuance, compression_throughput, handshake_engine, varint_codec
}
criterion_main!(benches);
