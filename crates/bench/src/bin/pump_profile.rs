//! `pump_profile` — time one streamed quicreach scan and dump the pump's
//! per-worker counters. The quick way to re-tune the adaptive chunk clamp
//! (`MIN_ADAPTIVE_CHUNK`/`MAX_ADAPTIVE_CHUNK` in `quicert_core::engine`)
//! on a new host: sweep fixed chunk sizes and compare against `0`.
//!
//! ```sh
//! cargo run --release -p quicert-bench --bin pump_profile -- 100000 1 0
//! #                                          domains ──┘      │  └─ chunk (0 = adaptive)
//! #                                          workers ─────────┘
//! ```

use std::time::Instant;

use quicert_core::ScanEngine;
use quicert_pki::WorldConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let chunk: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let config = WorldConfig {
        domains: n,
        seed: 0x5CA1,
        ..WorldConfig::default()
    };
    let engine = ScanEngine::streaming(config, 1362, workers).with_stream_chunk(chunk);
    let start = Instant::now();
    let shard = engine.stream_quicreach(1362);
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "stream_quicreach {n} @ {workers}w: {elapsed:.3}s ({} probed)",
        shard.total()
    );
    if let Some(stats) = engine.pump_stats() {
        let totals = stats.totals();
        eprintln!(
            "  pump: {}/{} workers, {} chunks, {} records, busy {:.3}s max {:.3}s",
            stats.effective_workers,
            stats.requested_workers,
            totals.chunks_claimed,
            totals.records_folded,
            totals.fold_seconds,
            stats.max_fold_seconds()
        );
        for (i, w) in stats.workers.iter().enumerate() {
            eprintln!(
                "  worker {i}: {} chunks, {} records, {:.3}s",
                w.chunks_claimed, w.records_folded, w.fold_seconds
            );
        }
    }
}
