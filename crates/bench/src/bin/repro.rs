//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p quicert-bench --bin repro            # 20k domains
//! cargo run --release -p quicert-bench --bin repro -- 100000  # bigger world
//! cargo run --release -p quicert-bench --bin repro -- 20000 42  # custom seed
//! cargo run --release -p quicert-bench --bin repro -- 20000 42 8  # 8 workers
//! ```
//!
//! The third argument is the scan worker count (0 = one per core, 1 =
//! serial); when absent, a `QUICERT_WORKERS` environment override is
//! honored (same semantics), so at-scale runs are tunable without code or
//! command-line edits. The report is bit-for-bit identical at any setting.
//!
//! `--ticks N` (or `QUICERT_TICKS=N`) additionally drives the resident
//! campaign service through `N` churn ticks after the report, printing
//! per-tick delta-scan stats to stderr — stdout stays the golden report.

use quicert_core::{full_report, Campaign, CampaignConfig, ReportOptions};

/// The `QUICERT_WORKERS` override (`0` = one worker per core), when set
/// and parseable.
fn env_workers() -> Option<usize> {
    std::env::var("QUICERT_WORKERS").ok()?.trim().parse().ok()
}

/// The `QUICERT_TICKS` override, when set and parseable.
fn env_ticks() -> Option<u64> {
    std::env::var("QUICERT_TICKS").ok()?.trim().parse().ok()
}

fn main() {
    // Positional args (domains, seed, workers) with one flag: `--ticks N`
    // may appear anywhere and is consumed before positional parsing.
    let mut ticks: Option<u64> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--ticks" {
            ticks = raw.next().and_then(|a| a.parse().ok());
        } else if let Some(n) = arg.strip_prefix("--ticks=") {
            ticks = n.parse().ok();
        } else {
            positional.push(arg);
        }
    }
    let ticks = ticks.or_else(env_ticks);
    let mut args = positional.into_iter();
    let domains: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0xC04E_2022);
    let workers: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .or_else(env_workers)
        .unwrap_or(0);

    eprintln!(
        "generating world: {domains} domains, seed {seed:#x}, workers {workers} (0 = auto) ..."
    );
    let campaign = Campaign::new(
        CampaignConfig::standard()
            .with_domains(domains)
            .with_seed(seed)
            .with_workers(workers),
    );
    let chunk = match campaign.engine().stream_chunk() {
        Some(size) => size.to_string(),
        None => "adaptive".to_string(),
    };
    eprintln!(
        "scanning with {} worker thread(s), streaming chunk {chunk} ...",
        campaign.engine().workers(),
    );

    let options = ReportOptions {
        telescope_per_provider: 20,
        fig11_reps: 5,
        compression_stride: (domains / 2_000).max(1),
        full_sweep: true,
        guidance_mitigation: true,
        network_profiles: true,
        resumption: true,
        pq_eras: true,
        population_scale: true,
        chaos: true,
        churn: true,
        // The paper-scale ladder: 10k / 100k / 1M domains streamed in
        // bounded memory.
        scale_sizes: quicert_core::experiments::scale::PAPER_SCALE_SIZES,
    };
    let report = full_report(&campaign, options);
    println!("{report}");

    // Pump observability: stream the campaign's own population once (the
    // ladder rows above used throwaway engines) and report what the pump
    // workers did. Stats go to stderr so stdout stays the golden report.
    campaign
        .engine()
        .stream_quicreach(campaign.config().default_initial);
    if let Some(stats) = campaign.engine().pump_stats() {
        let totals = stats.totals();
        eprintln!(
            "stream pump: {} worker(s) of {} requested, {} chunks, {} records, {:.3}s busy (max worker {:.3}s)",
            stats.effective_workers,
            stats.requested_workers,
            totals.chunks_claimed,
            totals.records_folded,
            totals.fold_seconds,
            stats.max_fold_seconds(),
        );
        eprintln!(
            "stream memo: {} hits, {} misses, {} distinct classes across workers",
            totals.memo_hits, totals.memo_misses, totals.distinct_classes,
        );
        for (i, w) in stats.workers.iter().enumerate() {
            eprintln!(
                "  worker {i}: {} chunks, {} records, {:.3}s, memo {}/{} ({} classes)",
                w.chunks_claimed,
                w.records_folded,
                w.fold_seconds,
                w.memo_hits,
                w.memo_misses,
                w.distinct_classes
            );
        }
    }

    // The full campaign registry — every counter and histogram the scans
    // touched — renders to stderr on request; stdout stays the golden
    // report byte-for-byte either way.
    if std::env::var("QUICERT_METRICS").map(|v| v == "1") == Ok(true) {
        eprint!(
            "{}",
            campaign.engine().metrics_registry().render_prometheus()
        );
    }

    // Resident-service mode: drive the era-migration churn timeline for
    // `--ticks N` ticks through the delta-scan path, reporting what each
    // tick cost. All of it goes to stderr.
    if let Some(ticks) = ticks.filter(|&t| t > 0) {
        eprintln!("churn service: advancing {ticks} tick(s) through delta scans ...");
        let mut service = quicert_core::CampaignService::new(
            quicert_core::experiments::churn::era_migration_config(&campaign),
        );
        for tick in 0..=ticks {
            let snapshot = service.snapshot_at(tick);
            let reachable = snapshot.reach.classes.reachable();
            let stats = *service
                .tick_log()
                .last()
                .expect("snapshot_at always logs a scan");
            eprintln!(
                "  tick {}: {} event(s), {} rank(s) churned{}, probed {}/{} ({} of {} segments dirty), {} reachable",
                stats.tick,
                stats.events,
                stats.changed_ranks,
                if stats.all_changed {
                    " [era migration: all segments dirty]"
                } else {
                    ""
                },
                stats.probed,
                stats.full_probe_count,
                stats.dirty_segments,
                stats.total_segments,
                reachable,
            );
        }
    }
}
