//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p quicert-bench --bin repro            # 20k domains
//! cargo run --release -p quicert-bench --bin repro -- 100000  # bigger world
//! cargo run --release -p quicert-bench --bin repro -- 20000 42  # custom seed
//! ```

use quicert_core::{full_report, Campaign, CampaignConfig, ReportOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let domains: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0xC04E_2022);

    eprintln!("generating world: {domains} domains, seed {seed:#x} ...");
    let campaign = Campaign::new(CampaignConfig::standard().with_domains(domains).with_seed(seed));

    let options = ReportOptions {
        telescope_per_provider: 20,
        fig11_reps: 5,
        compression_stride: (domains / 2_000).max(1),
        full_sweep: true,
        guidance_mitigation: true,
    };
    let report = full_report(&campaign, options);
    println!("{report}");
}
