//! # quicert-bench — shared fixtures for the benchmark harness
//!
//! Each Criterion bench regenerates one of the paper's tables or figures
//! (printing its rows/series once) and then measures the runtime of the
//! regeneration. The `repro` binary runs everything at a larger scale and
//! prints the full report.

use std::sync::OnceLock;

use quicert_core::{Campaign, CampaignConfig};

/// The world size used by benches (kept small so `cargo bench` finishes in
/// minutes; `repro` scales up).
pub const BENCH_DOMAINS: usize = 1_500;

/// A process-wide campaign shared by all benches in a binary.
pub fn bench_campaign() -> &'static Campaign {
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        Campaign::new(
            CampaignConfig::small()
                .with_domains(BENCH_DOMAINS)
                .with_seed(0xBE4C),
        )
    })
}

/// Print a figure/table reproduction exactly once per process.
pub fn print_once(key: &'static str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let printed = PRINTED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = printed.lock().unwrap();
    if guard.insert(key) {
        eprintln!("\n{}", render());
    }
}
