//! # quicert-churn — deterministic ecosystem churn timeline
//!
//! The paper measures a *living* ecosystem: certificates rotate and get
//! revoked, CA dictionaries drift, session-ticket keys roll over and whole
//! providers migrate their PKI. This crate models that churn as a
//! **tick-indexed timeline of pure state transitions** over the generated
//! `quicert_pki::World`:
//!
//! * [`Timeline::events_at`] derives the events of any tick directly from
//!   `(seed, tick)` — no history needed, so any point in the campaign's
//!   life is reproducible from the configuration alone.
//! * [`ChurnState`] folds events into per-rank certificate generations,
//!   CA-dictionary drift counts, per-provider era overrides and a global
//!   STEK epoch. All per-event updates are commutative (additive counts
//!   and single-assignment-per-tick overrides), so applying one tick's
//!   events in any order yields the same state — pinned by a proptest.
//! * [`ChurnState::apply_to_records`] overlays the state onto derived
//!   [`DomainRecord`]s. The overlay only touches the churn fields of
//!   `QuicDeployment` (`cert_generation`, `chain_id`, `era_override`), so
//!   an empty state reproduces the pre-churn world byte-for-byte.
//!
//! The campaign service in `quicert_core` drives this timeline and runs
//! *delta scans*: only the ranks named by [`TickDelta::changed_ranks`]
//! (plus every record of a migrated provider) can fold differently, so
//! re-probing just those segments and merging with cached summaries is
//! bit-identical to a full rescan.

use std::collections::HashMap;

use quicert_netsim::SimRng;
use quicert_pki::world::Provider;
use quicert_pki::{CertificateEra, ChainId, DomainRecord};

/// One scheduled provider era migration: from `tick` onward, every QUIC
/// deployment of `provider` serves chains from `era` regardless of the
/// campaign's scan era.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraMigration {
    /// Tick at which the migration fires.
    pub tick: u64,
    /// Provider whose deployments migrate.
    pub provider: Provider,
    /// Era the provider migrates to.
    pub era: CertificateEra,
}

/// Configuration of a churn timeline. Everything is exact (integers and
/// enums), so a timeline is a pure function of this value.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Seed the per-tick event draws fork from.
    pub seed: u64,
    /// Population size — churned ranks are drawn uniformly from
    /// `1..=domains`. Ranks without a QUIC deployment absorb their events
    /// as no-ops (the real ecosystem's churn does not consult our scan
    /// list either).
    pub domains: usize,
    /// Certificate rotations (routine reissues) per tick.
    pub rotations_per_tick: usize,
    /// CA-dictionary drifts (a deployment moving to the next chain in its
    /// CA family's ring) per tick.
    pub drifts_per_tick: usize,
    /// Revocations (emergency reissues) per tick.
    pub revocations_per_tick: usize,
    /// Roll the global STEK epoch every this many ticks (0 = never).
    pub stek_rollover_every: u64,
    /// Scheduled provider era migrations. At most one per
    /// `(tick, provider)` pair — later duplicates are ignored so tick
    /// application stays order-independent.
    pub migrations: Vec<EraMigration>,
}

impl ChurnConfig {
    /// A quiet default: sparse rotation/drift/revocation, STEK rollover
    /// every 8 ticks, no migrations scheduled.
    pub fn new(seed: u64, domains: usize) -> ChurnConfig {
        ChurnConfig {
            seed,
            domains,
            rotations_per_tick: 8,
            drifts_per_tick: 4,
            revocations_per_tick: 2,
            stek_rollover_every: 8,
            migrations: Vec::new(),
        }
    }

    /// Schedule an era migration (builder style).
    pub fn with_migration(
        mut self,
        tick: u64,
        provider: Provider,
        era: CertificateEra,
    ) -> ChurnConfig {
        self.migrations.push(EraMigration {
            tick,
            provider,
            era,
        });
        self
    }

    /// Override the per-tick churn volume (builder style).
    pub fn with_rates(
        mut self,
        rotations: usize,
        drifts: usize,
        revocations: usize,
    ) -> ChurnConfig {
        self.rotations_per_tick = rotations;
        self.drifts_per_tick = drifts;
        self.revocations_per_tick = revocations;
        self
    }
}

/// One churn event. Per-rank events carry the rank they hit; global
/// events carry their payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Routine certificate reissue: the deployment's generation bumps, so
    /// its leaf bytes change while its chain topology stays put.
    RotateCert {
        /// Churned rank.
        rank: usize,
    },
    /// Emergency reissue after revocation — same byte-level effect as a
    /// rotation, tracked separately in the stats.
    Revoke {
        /// Churned rank.
        rank: usize,
    },
    /// CA-dictionary drift: the deployment moves one step along its CA
    /// family's chain ring (see [`drifted`]).
    DriftChain {
        /// Churned rank.
        rank: usize,
    },
    /// Global session-ticket-key epoch rollover. Cold scans are
    /// unaffected; resident warm campaigns key their ticket issuers on
    /// the epoch.
    StekRollover,
    /// A provider migrates its PKI to a new era.
    EraMigration {
        /// Provider whose deployments migrate.
        provider: Provider,
        /// Era the provider migrates to.
        era: CertificateEra,
    },
}

impl ChurnEvent {
    /// The rank a per-rank event churns (None for global events).
    pub fn rank(&self) -> Option<usize> {
        match self {
            ChurnEvent::RotateCert { rank }
            | ChurnEvent::Revoke { rank }
            | ChurnEvent::DriftChain { rank } => Some(*rank),
            ChurnEvent::StekRollover | ChurnEvent::EraMigration { .. } => None,
        }
    }
}

/// The deterministic event source: tick `t`'s events are a pure function
/// of `(config.seed, t)`, derived by forking the config seed with the
/// tick index. No state is threaded between ticks, so the timeline can be
/// sampled at any point without replaying history.
#[derive(Debug, Clone)]
pub struct Timeline {
    config: ChurnConfig,
}

impl Timeline {
    /// Wrap a configuration.
    pub fn new(config: ChurnConfig) -> Timeline {
        Timeline { config }
    }

    /// The configuration this timeline derives from.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// The events of one tick. Tick 0 is the as-generated world: it has
    /// no events by definition.
    pub fn events_at(&self, tick: u64) -> Vec<ChurnEvent> {
        let config = &self.config;
        if tick == 0 || config.domains == 0 {
            return Vec::new();
        }
        let mut rng = SimRng::new(config.seed).fork(tick);
        let draw_rank = |rng: &mut SimRng| 1 + rng.below(config.domains as u64) as usize;
        let mut events = Vec::with_capacity(
            config.rotations_per_tick + config.drifts_per_tick + config.revocations_per_tick + 2,
        );
        for _ in 0..config.rotations_per_tick {
            events.push(ChurnEvent::RotateCert {
                rank: draw_rank(&mut rng),
            });
        }
        for _ in 0..config.drifts_per_tick {
            events.push(ChurnEvent::DriftChain {
                rank: draw_rank(&mut rng),
            });
        }
        for _ in 0..config.revocations_per_tick {
            events.push(ChurnEvent::Revoke {
                rank: draw_rank(&mut rng),
            });
        }
        if config.stek_rollover_every > 0 && tick.is_multiple_of(config.stek_rollover_every) {
            events.push(ChurnEvent::StekRollover);
        }
        // First migration per provider wins, so one tick never carries two
        // conflicting assignments and application order cannot matter.
        let mut migrated: Vec<Provider> = Vec::new();
        for m in config.migrations.iter().filter(|m| m.tick == tick) {
            if !migrated.contains(&m.provider) {
                migrated.push(m.provider);
                events.push(ChurnEvent::EraMigration {
                    provider: m.provider,
                    era: m.era,
                });
            }
        }
        events
    }
}

/// Move `chain` `steps` steps along its CA family's drift ring.
///
/// Rings never cross the RSA/ECDSA boundary — the ECDSA-only issuers
/// (`LeE1Short`, `LeE1X2Cross`, `CloudflareEcc`) drift among themselves —
/// so a drifted deployment's leaf key stays valid for its new chain.
/// Chains outside any ring are fixed points.
pub fn drifted(chain: ChainId, steps: u32) -> ChainId {
    const LE_RSA: [ChainId; 3] = [
        ChainId::LeR3Short,
        ChainId::LeR3X1Cross,
        ChainId::LeR3X1Self,
    ];
    const LE_ECDSA: [ChainId; 2] = [ChainId::LeE1Short, ChainId::LeE1X2Cross];
    const GTS: [ChainId; 3] = [ChainId::Gts1C3, ChainId::Gts1D4, ChainId::Gts1P5];
    const DIGICERT: [ChainId; 2] = [ChainId::DigiCertTls, ChainId::DigiCertSha2WithRoot];
    const SECTIGO: [ChainId; 2] = [ChainId::SectigoUserTrust, ChainId::CPanelComodoRoot];
    const GODADDY: [ChainId; 2] = [ChainId::GoDaddyG2, ChainId::StarfieldG2];
    fn walk(ring: &[ChainId], chain: ChainId, steps: u32) -> ChainId {
        let at = ring
            .iter()
            .position(|&c| c == chain)
            .expect("chain in ring");
        ring[(at + steps as usize % ring.len()) % ring.len()]
    }
    match chain {
        c if LE_RSA.contains(&c) => walk(&LE_RSA, c, steps),
        c if LE_ECDSA.contains(&c) => walk(&LE_ECDSA, c, steps),
        c if GTS.contains(&c) => walk(&GTS, c, steps),
        c if DIGICERT.contains(&c) => walk(&DIGICERT, c, steps),
        c if SECTIGO.contains(&c) => walk(&SECTIGO, c, steps),
        c if GODADDY.contains(&c) => walk(&GODADDY, c, steps),
        fixed => fixed,
    }
}

/// What one applied tick changed — the delta a resident campaign's scan
/// layer needs to invalidate exactly the right summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickDelta {
    /// The tick this delta describes.
    pub tick: u64,
    /// Ranks hit by per-rank events this tick, sorted and deduplicated.
    pub changed_ranks: Vec<usize>,
    /// An era migration fired: the affected records are only identifiable
    /// after derivation (the provider lives on the derived record), so
    /// every cached summary must be considered changed.
    pub all_changed: bool,
    /// The STEK epoch rolled over (does not invalidate cold-scan
    /// summaries).
    pub stek_rollover: bool,
    /// Total events applied this tick.
    pub events: usize,
}

/// The accumulated churn state at one tick: everything needed to overlay
/// the timeline onto freshly derived records.
///
/// All per-event updates commute: generations and drift steps are
/// additive counters, the STEK epoch is a counter, and era overrides are
/// single-assignment per tick (enforced by [`Timeline::events_at`]).
/// [`ChurnState::at`] therefore equals any interleaving of
/// [`ChurnState::advance`] calls — pinned by tests here and a proptest in
/// `quicert_core`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnState {
    /// Last applied tick (0 = as-generated world).
    pub tick: u64,
    /// Per-rank certificate generation bumps (rotations + revocations).
    generations: HashMap<usize, u32>,
    /// Per-rank CA-dictionary drift steps.
    drifts: HashMap<usize, u32>,
    /// Per-provider era overrides from migrations.
    era_overrides: HashMap<Provider, CertificateEra>,
    /// Global session-ticket-key epoch.
    pub stek_epoch: u32,
    /// Total events applied.
    pub events_applied: u64,
    /// Rotations applied.
    pub rotations: u64,
    /// Drifts applied.
    pub chain_drifts: u64,
    /// Revocations applied.
    pub revocations: u64,
}

impl ChurnState {
    /// The pristine (tick-0) state.
    pub fn initial() -> ChurnState {
        ChurnState::default()
    }

    /// Apply one event. Commutative with every other event of the same
    /// tick (see the type-level invariant note).
    pub fn apply(&mut self, event: &ChurnEvent) {
        self.events_applied += 1;
        match *event {
            ChurnEvent::RotateCert { rank } => {
                *self.generations.entry(rank).or_insert(0) += 1;
                self.rotations += 1;
            }
            ChurnEvent::Revoke { rank } => {
                *self.generations.entry(rank).or_insert(0) += 1;
                self.revocations += 1;
            }
            ChurnEvent::DriftChain { rank } => {
                *self.drifts.entry(rank).or_insert(0) += 1;
                self.chain_drifts += 1;
            }
            ChurnEvent::StekRollover => self.stek_epoch += 1,
            ChurnEvent::EraMigration { provider, era } => {
                self.era_overrides.insert(provider, era);
            }
        }
    }

    /// Advance one tick, applying its events, and describe what changed.
    pub fn advance(&mut self, timeline: &Timeline) -> TickDelta {
        self.tick += 1;
        let events = timeline.events_at(self.tick);
        let mut changed_ranks: Vec<usize> = Vec::new();
        let mut all_changed = false;
        let mut stek_rollover = false;
        for event in &events {
            self.apply(event);
            match event {
                ChurnEvent::EraMigration { .. } => all_changed = true,
                ChurnEvent::StekRollover => stek_rollover = true,
                _ => changed_ranks.push(event.rank().expect("per-rank event")),
            }
        }
        changed_ranks.sort_unstable();
        changed_ranks.dedup();
        TickDelta {
            tick: self.tick,
            changed_ranks,
            all_changed,
            stek_rollover,
            events: events.len(),
        }
    }

    /// The state at `tick`, replayed from scratch — the reference
    /// [`ChurnState::advance`] must agree with at every tick.
    pub fn at(timeline: &Timeline, tick: u64) -> ChurnState {
        let mut state = ChurnState::initial();
        for _ in 0..tick {
            state.advance(timeline);
        }
        state
    }

    /// The certificate generation of one rank (0 = never churned).
    pub fn generation_of(&self, rank: usize) -> u32 {
        self.generations.get(&rank).copied().unwrap_or(0)
    }

    /// The drift steps of one rank.
    pub fn drift_of(&self, rank: usize) -> u32 {
        self.drifts.get(&rank).copied().unwrap_or(0)
    }

    /// The era override of one provider, if it has migrated.
    pub fn era_of(&self, provider: Provider) -> Option<CertificateEra> {
        self.era_overrides.get(&provider).copied()
    }

    /// Whether any provider has migrated eras.
    pub fn any_migration(&self) -> bool {
        !self.era_overrides.is_empty()
    }

    /// Ranks with at least one per-rank churn event so far, sorted.
    pub fn churned_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .generations
            .keys()
            .chain(self.drifts.keys())
            .copied()
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Overlay the state onto freshly derived records (any rank subset,
    /// in any order — the overlay is per-record). Records without a QUIC
    /// deployment absorb their churn as a no-op; an empty state leaves
    /// every record byte-identical.
    pub fn apply_to_records(&self, records: &mut [DomainRecord]) {
        for record in records {
            let rank = record.rank;
            if let Some(quic) = record.quic.as_mut() {
                quic.cert_generation = self.generation_of(rank);
                let steps = self.drift_of(rank);
                if steps > 0 {
                    quic.chain_id = drifted(quic.chain_id, steps);
                }
                quic.era_override = self.era_of(quic.provider);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Timeline {
        Timeline::new(ChurnConfig::new(0x000C_4A11, 500).with_migration(
            3,
            Provider::Google,
            CertificateEra::Hybrid,
        ))
    }

    #[test]
    fn tick_zero_is_quiet() {
        assert!(timeline().events_at(0).is_empty());
        assert_eq!(ChurnState::at(&timeline(), 0), ChurnState::initial());
    }

    #[test]
    fn events_are_a_pure_function_of_seed_and_tick() {
        let t = timeline();
        for tick in 0..12 {
            assert_eq!(t.events_at(tick), t.events_at(tick), "tick {tick}");
        }
        let other = Timeline::new(ChurnConfig::new(0xD1FF, 500));
        assert_ne!(t.events_at(1), other.events_at(1));
    }

    #[test]
    fn advance_matches_replay_at_every_tick() {
        let t = timeline();
        let mut rolling = ChurnState::initial();
        for tick in 1..=10 {
            rolling.advance(&t);
            assert_eq!(rolling, ChurnState::at(&t, tick), "tick {tick}");
        }
    }

    #[test]
    fn tick_application_is_order_independent() {
        let t = timeline();
        for tick in 1..=8 {
            let events = t.events_at(tick);
            let mut forward = ChurnState::at(&t, tick - 1);
            let mut backward = forward.clone();
            for e in &events {
                forward.apply(e);
            }
            for e in events.iter().rev() {
                backward.apply(e);
            }
            assert_eq!(forward, backward, "tick {tick}");
        }
    }

    #[test]
    fn migration_fires_once_and_sticks() {
        let t = timeline();
        assert!(!ChurnState::at(&t, 2).any_migration());
        let at3 = ChurnState::at(&t, 3);
        assert_eq!(at3.era_of(Provider::Google), Some(CertificateEra::Hybrid));
        assert_eq!(
            ChurnState::at(&t, 9).era_of(Provider::Google),
            Some(CertificateEra::Hybrid)
        );
        assert_eq!(at3.era_of(Provider::Cloudflare), None);
    }

    #[test]
    fn duplicate_migrations_on_one_tick_keep_the_first() {
        let t = Timeline::new(
            ChurnConfig::new(7, 100)
                .with_migration(1, Provider::Meta, CertificateEra::PostQuantum)
                .with_migration(1, Provider::Meta, CertificateEra::Hybrid),
        );
        let migrations: Vec<_> = t
            .events_at(1)
            .into_iter()
            .filter(|e| matches!(e, ChurnEvent::EraMigration { .. }))
            .collect();
        assert_eq!(
            migrations,
            vec![ChurnEvent::EraMigration {
                provider: Provider::Meta,
                era: CertificateEra::PostQuantum
            }]
        );
    }

    #[test]
    fn stek_epoch_rolls_on_schedule() {
        let t = timeline();
        assert_eq!(ChurnState::at(&t, 7).stek_epoch, 0);
        assert_eq!(ChurnState::at(&t, 8).stek_epoch, 1);
        assert_eq!(ChurnState::at(&t, 16).stek_epoch, 2);
    }

    #[test]
    fn drift_rings_stay_within_their_ca_family() {
        // ECDSA-only chains drift among ECDSA-only chains.
        for steps in 0..8 {
            assert!(matches!(
                drifted(ChainId::LeE1Short, steps),
                ChainId::LeE1Short | ChainId::LeE1X2Cross
            ));
        }
        assert_eq!(drifted(ChainId::CloudflareEcc, 5), ChainId::CloudflareEcc);
        assert_eq!(drifted(ChainId::EnterpriseHuge, 3), ChainId::EnterpriseHuge);
        // A full lap returns home.
        assert_eq!(drifted(ChainId::Gts1C3, 3), ChainId::Gts1C3);
        assert_ne!(drifted(ChainId::Gts1C3, 1), ChainId::Gts1C3);
    }

    #[test]
    fn delta_names_every_changed_rank() {
        let t = timeline();
        let mut state = ChurnState::initial();
        let delta = state.advance(&t);
        let mut expected: Vec<usize> = t.events_at(1).iter().filter_map(ChurnEvent::rank).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(delta.changed_ranks, expected);
        assert!(!delta.all_changed);
        let delta3 = ChurnState::at(&t, 2).advance(&t);
        assert!(delta3.all_changed, "migration tick invalidates everything");
    }

    #[test]
    fn empty_overlay_is_the_identity() {
        let world = quicert_pki::World::generate(quicert_pki::WorldConfig {
            domains: 64,
            seed: 9,
            ..Default::default()
        });
        let mut records = world.domains().to_vec();
        ChurnState::initial().apply_to_records(&mut records);
        for (before, after) in world.domains().iter().zip(&records) {
            assert_eq!(format!("{before:?}"), format!("{after:?}"));
        }
    }

    #[test]
    fn overlay_sets_generation_drift_and_era() {
        let world = quicert_pki::World::generate(quicert_pki::WorldConfig {
            domains: 64,
            seed: 9,
            ..Default::default()
        });
        let quic_rank = world
            .domains()
            .iter()
            .find(|r| r.has_quic())
            .expect("some QUIC service")
            .rank;
        let mut state = ChurnState::initial();
        state.apply(&ChurnEvent::RotateCert { rank: quic_rank });
        state.apply(&ChurnEvent::RotateCert { rank: quic_rank });
        state.apply(&ChurnEvent::DriftChain { rank: quic_rank });
        let mut records = world.domains().to_vec();
        state.apply_to_records(&mut records);
        let quic = records[quic_rank - 1].quic.as_ref().unwrap();
        let original = world.domains()[quic_rank - 1].quic.as_ref().unwrap();
        assert_eq!(quic.cert_generation, 2);
        assert_eq!(quic.chain_id, drifted(original.chain_id, 1));
    }
}
