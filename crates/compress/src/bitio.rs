//! MSB-first bit-level I/O used by the Huffman stage.

/// Writes bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    current: u8,
    filled: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append the lowest `len` bits of `code`, MSB first. `len` ≤ 32.
    pub fn write_bits(&mut self, code: u32, len: u8) {
        debug_assert!(len <= 32);
        for i in (0..len).rev() {
            let bit = ((code >> i) & 1) as u8;
            self.current = (self.current << 1) | bit;
            self.filled += 1;
            if self.filled == 8 {
                self.out.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.filled as usize
    }

    /// Pad the final partial byte with zeros and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.out.push(self.current);
        }
        self.out
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    /// New reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        BitReader {
            input,
            pos: 0,
            bit: 0,
        }
    }

    /// Read one bit; `None` at end of input.
    pub fn read_bit(&mut self) -> Option<u8> {
        let byte = *self.input.get(self.pos)?;
        let bit = (byte >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Some(bit)
    }

    /// Read `len` bits MSB-first as an integer.
    pub fn read_bits(&mut self, len: u8) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..len {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Some(v)
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.pos * 8 + self.bit as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b1010, 4);
        w.write_bits(0x3FF, 10);
        w.write_bits(0, 3);
        w.write_bits(0xDEADBEEF, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(4), Some(0b1010));
        assert_eq!(r.read_bits(10), Some(0x3FF));
        assert_eq!(r.read_bits(3), Some(0));
        assert_eq!(r.read_bits(32), Some(0xDEADBEEF));
    }

    #[test]
    fn bit_len_counts_exactly() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 1);
        assert_eq!(w.bit_len(), 9);
        assert_eq!(w.finish().len(), 2);
    }

    #[test]
    fn reader_signals_exhaustion() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn padding_is_zero_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }
}
