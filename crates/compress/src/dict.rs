//! Static dictionary for the brotli profile.
//!
//! Real brotli owes part of its edge on certificate chains to its built-in
//! static dictionary and context modelling. Our brotli profile approximates
//! that with a certificate-specific dictionary assembled from the byte
//! patterns that dominate web-PKI DER: common OBJECT IDENTIFIER encodings,
//! ASN.1 structure skeletons, CA organisation strings, and the URL shapes
//! found in AIA/CRL extensions.
//!
//! The dictionary is assembled once at first use; its exact contents are
//! deterministic (a pure function of this source file).

use std::sync::OnceLock;

/// Common DER fragments: OIDs with tag/length prefixes, structure openers.
const DER_FRAGMENTS: &[&[u8]] = &[
    // SEQUENCE openers with typical certificate lengths.
    b"\x30\x82\x03",
    b"\x30\x82\x04",
    b"\x30\x82\x05",
    b"\x30\x82\x01\x0a\x02\x82\x01\x01\x00",
    b"\x30\x82\x02\x0a\x02\x82\x02\x01\x00",
    // version [0] EXPLICIT INTEGER v3 + INTEGER serial opener.
    b"\xa0\x03\x02\x01\x02\x02\x10",
    b"\xa0\x03\x02\x01\x02\x02\x12",
    // AlgorithmIdentifiers: sha256WithRSAEncryption, sha384WithRSAEncryption.
    b"\x30\x0d\x06\x09\x2a\x86\x48\x86\xf7\x0d\x01\x01\x0b\x05\x00",
    b"\x30\x0d\x06\x09\x2a\x86\x48\x86\xf7\x0d\x01\x01\x0c\x05\x00",
    // rsaEncryption SPKI prefix.
    b"\x30\x0d\x06\x09\x2a\x86\x48\x86\xf7\x0d\x01\x01\x01\x05\x00\x03\x82\x01\x0f\x00",
    // ecdsa-with-SHA256 / SHA384.
    b"\x30\x0a\x06\x08\x2a\x86\x48\xce\x3d\x04\x03\x02",
    b"\x30\x0a\x06\x08\x2a\x86\x48\xce\x3d\x04\x03\x03",
    // id-ecPublicKey + prime256v1 SPKI prefix.
    b"\x30\x13\x06\x07\x2a\x86\x48\xce\x3d\x02\x01\x06\x08\x2a\x86\x48\xce\x3d\x03\x01\x07\x03\x42\x00\x04",
    // id-ecPublicKey + secp384r1.
    b"\x30\x10\x06\x07\x2a\x86\x48\xce\x3d\x02\x01\x06\x05\x2b\x81\x04\x00\x22\x03\x62\x00\x04",
    // Name attribute openers: C=, O=, CN= with SET/SEQUENCE framing.
    b"\x31\x0b\x30\x09\x06\x03\x55\x04\x06\x13\x02",
    b"\x31\x0b\x30\x09\x06\x03\x55\x04\x06\x13\x02US",
    b"\x31\x0b\x30\x09\x06\x03\x55\x04\x06\x13\x02BE",
    b"\x31\x0b\x30\x09\x06\x03\x55\x04\x06\x13\x02GB",
    b"\x30\x09\x06\x03\x55\x04\x0a\x0c",
    b"\x30\x09\x06\x03\x55\x04\x03\x0c",
    b"\x31\x0b\x30\x09\x06\x03\x55\x04\x0b\x0c",
    // Extension OIDs with framing: SKI, KU, SAN, BC, CRLDP, CP, AKI, EKU.
    b"\x30\x1d\x06\x03\x55\x1d\x0e\x04\x16\x04\x14",
    b"\x30\x0e\x06\x03\x55\x1d\x0f\x01\x01\xff\x04\x04\x03\x02",
    b"\x30\x0b\x06\x03\x55\x1d\x11\x04",
    b"\x30\x0c\x06\x03\x55\x1d\x13\x01\x01\xff\x04\x02\x30\x00",
    b"\x30\x12\x06\x03\x55\x1d\x13\x01\x01\xff\x04\x08\x30\x06\x01\x01\xff\x02\x01\x00",
    b"\x06\x03\x55\x1d\x1f",
    b"\x06\x03\x55\x1d\x20",
    b"\x30\x1f\x06\x03\x55\x1d\x23\x04\x18\x30\x16\x80\x14",
    b"\x30\x1d\x06\x03\x55\x1d\x25\x04\x16\x30\x14\x06\x08\x2b\x06\x01\x05\x05\x07\x03\x01\x06\x08\x2b\x06\x01\x05\x05\x07\x03\x02",
    // AIA with OCSP + caIssuers access methods.
    b"\x06\x08\x2b\x06\x01\x05\x05\x07\x01\x01",
    b"\x30\x08\x06\x06\x2b\x06\x01\x05\x05\x07",
    b"\x06\x08\x2b\x06\x01\x05\x05\x07\x30\x01\x86",
    b"\x06\x08\x2b\x06\x01\x05\x05\x07\x30\x02\x86",
    // SCT list extension OID.
    b"\x06\x0a\x2b\x06\x01\x04\x01\xd6\x79\x02\x04\x02\x04\x82\x01",
    // CA/B forum policy OIDs.
    b"\x30\x08\x06\x06\x67\x81\x0c\x01\x02\x01",
    b"\x30\x08\x06\x06\x67\x81\x0c\x01\x02\x02",
    // UTCTime pairs with plausible year prefixes.
    b"\x30\x1e\x17\x0d22",
    b"\x30\x1e\x17\x0d21",
    b"\x17\x0d2203",
    b"\x17\x0d2206",
    b"0000Z",
    b"5959Z",
    // dNSName context tag runs.
    b"\x82\x0b",
    b"\x82\x0f",
    b"\x82\x10www.",
];

/// Organisation / CA strings that recur across the web PKI.
const CA_STRINGS: &[&str] = &[
    "Let's Encrypt",
    "R3",
    "E1",
    "ISRG Root X1",
    "ISRG Root X2",
    "Internet Security Research Group",
    "Digital Signature Trust Co.",
    "DST Root CA X3",
    "Google Trust Services LLC",
    "GTS Root R1",
    "GTS CA 1C3",
    "GTS CA 1D4",
    "GTS CA 1P5",
    "Cloudflare, Inc.",
    "Cloudflare Inc ECC CA-3",
    "Baltimore CyberTrust Root",
    "DigiCert Inc",
    "DigiCert Global Root CA",
    "DigiCert TLS RSA SHA256 2020 CA1",
    "DigiCert SHA2 Secure Server CA",
    "www.digicert.com",
    "Sectigo Limited",
    "Sectigo RSA Domain Validation Secure Server CA",
    "USERTrust RSA Certification Authority",
    "The USERTRUST Network",
    "Comodo CA Limited",
    "AAA Certificate Services",
    "GlobalSign nv-sa",
    "GlobalSign Root CA",
    "GlobalSign Atlas R3 DV TLS CA",
    "GoDaddy.com, Inc.",
    "Go Daddy Root Certificate Authority - G2",
    "Starfield Technologies, Inc.",
    "Amazon",
    "Amazon Root CA 1",
    "Amazon RSA 2048 M01",
    "cPanel, Inc.",
    "cPanel, Inc. Certification Authority",
    "Salt Lake City",
    "Jersey City",
    "New Jersey",
    "Greater Manchester",
    "Salford",
    "Mountain View",
    "California",
    "Arizona",
    "Scottsdale",
    "Delaware",
    "Wilmington",
];

/// URL shapes seen in AIA / CRL distribution points.
const URL_STRINGS: &[&str] = &[
    "http://ocsp.",
    "http://crl.",
    "http://cacerts.",
    "http://crt.",
    "http://x1.c.lencr.org/",
    "http://r3.o.lencr.org",
    "http://r3.i.lencr.org/",
    "http://e1.o.lencr.org",
    "http://ocsp.pki.goog/gts1c3",
    "http://pki.goog/repo/certs/gts1c3.der",
    "http://crls.pki.goog/gts1c3/",
    "http://ocsp.digicert.com",
    "http://crl3.digicert.com/",
    "http://crl4.digicert.com/",
    "http://ocsp.sectigo.com",
    "http://crt.sectigo.com/",
    "http://ocsp.usertrust.com",
    "http://ocsp.comodoca.com",
    "http://ocsp.globalsign.com/",
    "http://secure.globalsign.com/cacert/",
    "http://ocsp.godaddy.com/",
    "http://certificates.godaddy.com/repository/",
    "http://ocsp.starfieldtech.com/",
    "http://ocsp.rootca1.amazontrust.com",
    "http://crt.rootca1.amazontrust.com/rootca1.cer",
    "http://crl.rootca1.amazontrust.com/rootca1.crl",
    ".crl",
    ".cer",
    ".der",
    ".com/",
    ".org/",
    ".net/",
    "www.",
];

static DICTIONARY: OnceLock<Vec<u8>> = OnceLock::new();

/// The assembled certificate dictionary.
pub fn cert_dictionary() -> &'static [u8] {
    DICTIONARY.get_or_init(|| {
        let mut d = Vec::with_capacity(4096);
        for frag in DER_FRAGMENTS {
            d.extend_from_slice(frag);
        }
        for s in CA_STRINGS {
            d.extend_from_slice(s.as_bytes());
            d.push(0x30); // separator that doubles as a SEQUENCE tag
        }
        for s in URL_STRINGS {
            d.extend_from_slice(s.as_bytes());
        }
        d
    })
}

/// Convenience alias used by [`crate::Algorithm::dictionary`].
pub static CERT_DICTIONARY_LEN_HINT: usize = 4096;

/// Dictionary n-gram width used by [`coverage`].
pub const COVERAGE_GRAM: usize = 4;

/// Share of positions in `data` that start a [`COVERAGE_GRAM`]-byte
/// substring also present in the certificate dictionary, in `[0, 1]`.
///
/// This is a cheap proxy for how much of an input the dictionary can help
/// with at all: classical DER chains are dense in catalogued OIDs, CA
/// strings and URL shapes, while ML-DSA keys and signatures are
/// incompressible pseudo-random bytes the dictionary has never seen — their
/// coverage collapses toward the chance level, which is what degrades the
/// brotli profile's ratio on post-quantum chains.
pub fn coverage(data: &[u8]) -> f64 {
    if data.len() < COVERAGE_GRAM {
        return 0.0;
    }
    static GRAMS: OnceLock<std::collections::HashSet<&'static [u8]>> = OnceLock::new();
    let grams = GRAMS.get_or_init(|| cert_dictionary().windows(COVERAGE_GRAM).collect());
    let positions = data.len() - COVERAGE_GRAM + 1;
    let hits = data
        .windows(COVERAGE_GRAM)
        .filter(|w| grams.contains(w))
        .count();
    hits as f64 / positions as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_stable_and_nontrivial() {
        let d1 = cert_dictionary();
        let d2 = cert_dictionary();
        assert_eq!(d1.as_ptr(), d2.as_ptr(), "built once");
        assert!(d1.len() > 1500, "dictionary has substance: {}", d1.len());
        assert!(d1.len() < 16 * 1024, "dictionary stays small");
    }

    #[test]
    fn coverage_separates_classical_der_from_random_bytes() {
        // A classical-looking fragment: catalogued AlgorithmIdentifier plus
        // a CA string the dictionary carries verbatim.
        let mut classical = Vec::new();
        classical
            .extend_from_slice(b"\x30\x0d\x06\x09\x2a\x86\x48\x86\xf7\x0d\x01\x01\x0b\x05\x00");
        classical.extend_from_slice(b"Let's Encrypt");
        classical.extend_from_slice(b"http://ocsp.digicert.com");
        let classical_cov = coverage(&classical);
        assert!(classical_cov > 0.5, "classical coverage {classical_cov}");

        // ML-DSA-style material: deterministic pseudo-random filler.
        let mut pq = vec![0u8; 2420];
        let mut z = 0x5EEDu64;
        for b in pq.iter_mut() {
            z = z.wrapping_mul(0x94D0_49BB_1331_11EB).wrapping_add(1);
            *b = (z >> 32) as u8;
        }
        let pq_cov = coverage(&pq);
        assert!(pq_cov < 0.05, "pq coverage {pq_cov}");
        assert!(classical_cov > 10.0 * pq_cov.max(1e-6));

        // Degenerate inputs are defined.
        assert_eq!(coverage(&[]), 0.0);
        assert_eq!(coverage(&[1, 2]), 0.0);
    }

    #[test]
    fn dictionary_contains_key_pki_markers() {
        let d = cert_dictionary();
        let contains = |needle: &[u8]| d.windows(needle.len()).any(|w| w == needle);
        assert!(contains(b"Let's Encrypt"));
        assert!(contains(b"DigiCert"));
        assert!(contains(b"http://ocsp."));
        // sha256WithRSAEncryption OID bytes.
        assert!(contains(b"\x2a\x86\x48\x86\xf7\x0d\x01\x01\x0b"));
    }
}
