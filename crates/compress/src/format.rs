//! Container format: LZ token serialisation + optional Huffman pass.
//!
//! Layout:
//!
//! ```text
//! magic  'Q' 'C'            (2 bytes)
//! algo   RFC 8879 code point (1 byte)
//! mode   0=stored 1=lz 2=lz+huffman (1 byte)
//! orig   uncompressed length (LEB128 varint)
//! mode 0: raw input bytes
//! mode 1: LZ token stream
//! mode 2: 128-byte nibble table of Huffman code lengths,
//!         LZ stream length (varint), Huffman bitstream
//! ```
//!
//! The LZ token stream is a repetition of
//! `varint(lit_len) literals [varint(match_len) varint(dist)]`, terminated
//! implicitly when the decoder has produced `orig` bytes. A `match_len`
//! varint of 0 encodes "no match" (only meaningful before end of stream).

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::Code;
use crate::lz77::{self, Token};
use crate::Algorithm;

/// Errors while decoding a compressed container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Container too short or magic mismatch.
    BadHeader,
    /// Unknown mode byte.
    BadMode(u8),
    /// Varint overruns or exceeds 2^32.
    BadVarint,
    /// LZ stream refers outside the window, or is truncated.
    BadStream,
    /// Huffman bitstream is malformed.
    BadBits,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadHeader => write!(f, "bad container header"),
            CompressError::BadMode(m) => write!(f, "unknown container mode {m}"),
            CompressError::BadVarint => write!(f, "malformed varint"),
            CompressError::BadStream => write!(f, "malformed LZ stream"),
            CompressError::BadBits => write!(f, "malformed Huffman bitstream"),
        }
    }
}

impl std::error::Error for CompressError {}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(CompressError::BadVarint)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 42 {
            return Err(CompressError::BadVarint);
        }
    }
}

/// Serialise LZ tokens into the byte stream described in the module docs.
fn serialize_tokens(tokens: &[Token], min_match: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut literals: Vec<u8> = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => literals.push(b),
            Token::Match { len, dist } => {
                push_varint(&mut out, literals.len() as u64);
                out.extend_from_slice(&literals);
                literals.clear();
                // +1 so that 0 remains the "no match" sentinel.
                push_varint(&mut out, (len - min_match + 1) as u64);
                push_varint(&mut out, dist as u64);
            }
        }
    }
    if !literals.is_empty() {
        push_varint(&mut out, literals.len() as u64);
        out.extend_from_slice(&literals);
        push_varint(&mut out, 0); // trailing no-match marker
    }
    out
}

/// Decode an LZ token stream into `out` until `target_len` bytes have been
/// produced. The decode window is `dict || out`.
fn decode_tokens(stream: &[u8], dict: &[u8], target_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out: Vec<u8> = Vec::with_capacity(target_len);
    let mut pos = 0usize;
    while out.len() < target_len {
        let lit_len = read_varint(stream, &mut pos)? as usize;
        if lit_len > target_len - out.len() {
            return Err(CompressError::BadStream);
        }
        let lits = stream
            .get(pos..pos + lit_len)
            .ok_or(CompressError::BadStream)?;
        out.extend_from_slice(lits);
        pos += lit_len;
        if out.len() >= target_len {
            break;
        }
        let len_code = read_varint(stream, &mut pos)? as usize;
        if len_code == 0 {
            // Explicit no-match marker; continue with next literal run.
            continue;
        }
        let dist = read_varint(stream, &mut pos)? as usize;
        if dist == 0 || dist > dict.len() + out.len() {
            return Err(CompressError::BadStream);
        }
        // min_match is not known to the decoder; the encoder embeds it by
        // biasing len_code relative to MIN_MATCH_BASE.
        let len = len_code + MIN_MATCH_BASE - 1;
        if len > target_len - out.len() {
            return Err(CompressError::BadStream);
        }
        for _ in 0..len {
            let from_end = dict.len() + out.len() - dist;
            let b = if from_end < dict.len() {
                dict[from_end]
            } else {
                out[from_end - dict.len()]
            };
            out.push(b);
        }
    }
    Ok(out)
}

/// All profiles serialise match lengths relative to this base so the decoder
/// does not need to know the profile's `min_match` (profiles with larger
/// minimums simply never emit small codes).
const MIN_MATCH_BASE: usize = 4;

/// Compress `input` under the given algorithm profile.
pub fn compress(algorithm: Algorithm, input: &[u8]) -> Vec<u8> {
    let params = algorithm.params();
    let dict = algorithm.dictionary();
    let tokens = lz77::tokenize(dict, input, params);
    let lz_stream = serialize_tokens(&tokens, MIN_MATCH_BASE);

    let mut header = Vec::with_capacity(8);
    header.extend_from_slice(b"QC");
    header.push(algorithm.code_point() as u8);

    // Candidate 2: Huffman over the LZ stream.
    let mut freqs = [0u64; 256];
    for &b in &lz_stream {
        freqs[b as usize] += 1;
    }
    let code = Code::from_frequencies(&freqs);
    let huff_bits = code.cost_bits(&freqs);
    let huff_len = 128 + varint_len(lz_stream.len() as u64) + huff_bits.div_ceil(8) as usize;

    let (mode, payload): (u8, Vec<u8>) = if huff_len < lz_stream.len() && huff_len < input.len() {
        let mut payload = Vec::with_capacity(huff_len);
        // 4-bit code lengths, two symbols per byte.
        for pair in 0..128 {
            let hi = code.lengths[pair * 2];
            let lo = code.lengths[pair * 2 + 1];
            payload.push((hi << 4) | lo);
        }
        push_varint(&mut payload, lz_stream.len() as u64);
        let mut w = BitWriter::new();
        for &b in &lz_stream {
            code.write_symbol(&mut w, b);
        }
        payload.extend_from_slice(&w.finish());
        (2, payload)
    } else if lz_stream.len() < input.len() {
        (1, lz_stream)
    } else {
        (0, input.to_vec())
    };

    let mut out = header;
    out.push(mode);
    push_varint(&mut out, input.len() as u64);
    out.extend_from_slice(&payload);
    out
}

fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7).max(1)
}

/// Decompress a container produced by [`compress`]. The caller must supply
/// the same dictionary the algorithm profile used (obtainable via
/// [`Algorithm::dictionary`]; the algorithm is also recorded in the header).
pub fn decompress(data: &[u8], dict: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 5 || &data[0..2] != b"QC" {
        return Err(CompressError::BadHeader);
    }
    let mode = data[3];
    let mut pos = 4usize;
    let orig_len = read_varint(data, &mut pos)? as usize;
    match mode {
        0 => {
            let raw = data.get(pos..).ok_or(CompressError::BadStream)?;
            if raw.len() != orig_len {
                return Err(CompressError::BadStream);
            }
            Ok(raw.to_vec())
        }
        1 => decode_tokens(&data[pos..], dict, orig_len),
        2 => {
            let table = data.get(pos..pos + 128).ok_or(CompressError::BadHeader)?;
            let mut lengths = [0u8; 256];
            for (i, &b) in table.iter().enumerate() {
                lengths[i * 2] = b >> 4;
                lengths[i * 2 + 1] = b & 0x0F;
            }
            pos += 128;
            let lz_len = read_varint(data, &mut pos)? as usize;
            let code = Code::from_lengths(lengths);
            let decoder = code.decoder();
            let mut reader = BitReader::new(&data[pos..]);
            let mut lz_stream = Vec::with_capacity(lz_len);
            for _ in 0..lz_len {
                lz_stream.push(
                    decoder
                        .read_symbol(&mut reader)
                        .ok_or(CompressError::BadBits)?,
                );
            }
            decode_tokens(&lz_stream, dict, orig_len)
        }
        m => Err(CompressError::BadMode(m)),
    }
}

/// The algorithm recorded in a container header, if valid.
pub fn algorithm_of(data: &[u8]) -> Option<Algorithm> {
    if data.len() < 4 || &data[0..2] != b"QC" {
        return None;
    }
    Algorithm::from_code_point(data[2] as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(alg: Algorithm, input: &[u8]) -> usize {
        let compressed = compress(alg, input);
        let back = decompress(&compressed, alg.dictionary()).expect("decompress");
        assert_eq!(back, input, "{alg} roundtrip");
        compressed.len()
    }

    #[test]
    fn roundtrip_empty() {
        for alg in Algorithm::ALL {
            roundtrip(alg, &[]);
        }
    }

    #[test]
    fn roundtrip_short_inputs() {
        for alg in Algorithm::ALL {
            roundtrip(alg, b"x");
            roundtrip(alg, b"abcd");
            roundtrip(alg, b"hello world");
        }
    }

    #[test]
    fn roundtrip_repetitive_compresses_hard() {
        let input: Vec<u8> = b"SEQUENCE OF CERTIFICATE ".repeat(200);
        for alg in Algorithm::ALL {
            let n = roundtrip(alg, &input);
            assert!(n < input.len() / 5, "{alg}: {n} of {}", input.len());
        }
    }

    #[test]
    fn incompressible_input_falls_back_to_stored() {
        // Pseudo-random bytes: mode 0 keeps overhead to the 4+varint header.
        let input: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let compressed = compress(Algorithm::Zlib, &input);
        assert!(compressed.len() <= input.len() + 8);
        let back = decompress(&compressed, &[]).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn header_records_algorithm() {
        let c = compress(Algorithm::Brotli, b"test input for header");
        assert_eq!(algorithm_of(&c), Some(Algorithm::Brotli));
        assert_eq!(algorithm_of(b"xx"), None);
    }

    #[test]
    fn truncated_container_errors() {
        let c = compress(
            Algorithm::Zlib,
            &b"some reasonably long input data ".repeat(20),
        );
        for cut in [0, 1, 3, 4, c.len() / 2] {
            let r = decompress(&c[..cut], &[]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_magic_errors() {
        let mut c = compress(Algorithm::Zlib, b"data data data data data data");
        c[0] = b'X';
        assert_eq!(decompress(&c, &[]).unwrap_err(), CompressError::BadHeader);
    }

    #[test]
    fn bad_mode_errors() {
        let mut c = compress(Algorithm::Zlib, b"data");
        c[3] = 9;
        assert!(matches!(
            decompress(&c, &[]),
            Err(CompressError::BadMode(9))
        ));
    }

    #[test]
    fn wrong_dictionary_fails_or_differs() {
        let input = Algorithm::Brotli.dictionary()[..500].to_vec();
        let c = compress(Algorithm::Brotli, &input);
        // Decoding with an empty dictionary must not silently return the
        // original bytes (match distances reach into the dictionary).
        if let Ok(out) = decompress(&c, &[]) {
            assert_ne!(out, input)
        }
        // And with the right dictionary it must round-trip.
        assert_eq!(
            decompress(&c, Algorithm::Brotli.dictionary()).unwrap(),
            input
        );
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn der_like_input_reaches_realistic_ratio() {
        // Synthetic "certificate chain": structured prefix patterns with
        // embedded random key material, like real DER.
        let mut input = Vec::new();
        for i in 0..3 {
            input.extend_from_slice(b"\x30\x82\x05\x39\x30\x82\x04\x21\xa0\x03\x02\x01\x02");
            input.extend_from_slice(b"\x06\x09\x2a\x86\x48\x86\xf7\x0d\x01\x01\x0b\x05\x00");
            input.extend_from_slice(b"0\x81\x8fC=US, O=Example Trust Services, CN=Example CA 1");
            input.extend_from_slice(b"http://ocsp.example-trust.test/");
            input.extend_from_slice(b"http://crl.example-trust.test/ca1.crl");
            // 300 bytes of incompressible key/signature material.
            input.extend(
                (0u32..75).map(|j| (j.wrapping_mul(40503).wrapping_add(i * 7919) >> 3) as u8),
            );
        }
        let c = compress(Algorithm::Brotli, &input);
        let ratio = c.len() as f64 / input.len() as f64;
        assert!(
            ratio < 0.85,
            "structured DER-like data must compress, got {ratio}"
        );
        assert_eq!(
            decompress(&c, Algorithm::Brotli.dictionary()).unwrap(),
            input
        );
    }
}
