//! Canonical Huffman coding over byte alphabets.
//!
//! Code lengths are limited to [`MAX_CODE_LEN`] bits so they can be stored
//! as 4-bit nibbles in the container header. Length limiting uses the
//! standard clamp-then-repair approach on the Kraft sum; the loss versus an
//! optimal length-limited code is negligible on certificate data.

use crate::bitio::{BitReader, BitWriter};

/// Maximum Huffman code length in bits (fits a 4-bit nibble).
pub const MAX_CODE_LEN: u8 = 15;

/// A canonical Huffman code over the 256-symbol byte alphabet.
#[derive(Debug, Clone)]
pub struct Code {
    /// Code length per symbol; 0 = symbol unused.
    pub lengths: [u8; 256],
    codes: [u32; 256],
}

impl Code {
    /// Build a length-limited canonical code from symbol frequencies.
    pub fn from_frequencies(freqs: &[u64; 256]) -> Code {
        let lengths = build_lengths(freqs);
        Code::from_lengths(lengths)
    }

    /// Reconstruct the canonical code from stored lengths.
    pub fn from_lengths(lengths: [u8; 256]) -> Code {
        let mut codes = [0u32; 256];
        // Canonical assignment: count codes per length, then assign
        // consecutive values in (length, symbol) order.
        let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
        for &len in lengths.iter() {
            if len > 0 {
                count[len as usize] += 1;
            }
        }
        let mut next = [0u32; (MAX_CODE_LEN + 2) as usize];
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            next[len] = code;
        }
        for sym in 0..256 {
            let len = lengths[sym] as usize;
            if len > 0 {
                codes[sym] = next[len];
                next[len] += 1;
            }
        }
        Code { lengths, codes }
    }

    /// Encode one symbol.
    pub fn write_symbol(&self, w: &mut BitWriter, sym: u8) {
        let len = self.lengths[sym as usize];
        debug_assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(self.codes[sym as usize], len);
    }

    /// Total encoded size in bits for the given frequencies.
    pub fn cost_bits(&self, freqs: &[u64; 256]) -> u64 {
        freqs
            .iter()
            .zip(self.lengths.iter())
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }

    /// Build a decoder for this code.
    pub fn decoder(&self) -> Decoder {
        Decoder::new(&self.lengths)
    }
}

/// Compute length-limited Huffman code lengths for `freqs`.
fn build_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let used: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Standard Huffman tree construction over a (weight, tiebreak) min-heap.
    #[derive(Debug)]
    enum Node {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    #[derive(Debug)]
    struct HeapItem {
        weight: u64,
        tiebreak: usize,
        node: Node,
    }
    impl PartialEq for HeapItem {
        fn eq(&self, other: &Self) -> bool {
            (self.weight, self.tiebreak) == (other.weight, other.tiebreak)
        }
    }
    impl Eq for HeapItem {}
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap, we want the minimum.
            (other.weight, other.tiebreak).cmp(&(self.weight, self.tiebreak))
        }
    }
    let mut heap: std::collections::BinaryHeap<HeapItem> = used
        .iter()
        .enumerate()
        .map(|(i, &s)| HeapItem {
            weight: freqs[s],
            tiebreak: i,
            node: Node::Leaf(s),
        })
        .collect();
    let mut tiebreak = used.len();
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        heap.push(HeapItem {
            // Saturating: astronomically skewed inputs still produce a
            // valid (if marginally suboptimal) tree instead of overflowing.
            weight: a.weight.saturating_add(b.weight),
            tiebreak,
            node: Node::Internal(Box::new(a.node), Box::new(b.node)),
        });
        tiebreak += 1;
    }
    let root = heap.pop().unwrap().node;

    fn assign(node: &Node, depth: u8, lengths: &mut [u8; 256]) {
        match node {
            Node::Leaf(sym) => lengths[*sym] = depth.max(1),
            Node::Internal(a, b) => {
                assign(a, depth + 1, lengths);
                assign(b, depth + 1, lengths);
            }
        }
    }
    assign(&root, 0, &mut lengths);

    // Length-limit: clamp, then repair the Kraft inequality by lengthening
    // the cheapest (least frequent) still-short codes.
    let mut over = false;
    for len in lengths.iter_mut() {
        if *len > MAX_CODE_LEN {
            *len = MAX_CODE_LEN;
            over = true;
        }
    }
    if over {
        let kraft = |lengths: &[u8; 256]| -> u64 {
            lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 1u64 << (MAX_CODE_LEN - l))
                .sum()
        };
        let budget = 1u64 << MAX_CODE_LEN;
        let mut k = kraft(&lengths);
        // Lengthen least-frequent symbols until the code is feasible again.
        let mut by_freq: Vec<usize> = used.clone();
        by_freq.sort_by_key(|&s| freqs[s]);
        'outer: while k > budget {
            for &s in &by_freq {
                if lengths[s] > 0 && lengths[s] < MAX_CODE_LEN {
                    k -= 1 << (MAX_CODE_LEN - lengths[s]);
                    lengths[s] += 1;
                    k += 1 << (MAX_CODE_LEN - lengths[s]);
                    if k <= budget {
                        break 'outer;
                    }
                }
            }
        }
    }
    lengths
}

/// A canonical Huffman decoder (per-length first-code tables).
#[derive(Debug, Clone)]
pub struct Decoder {
    // For each length: the first canonical code of that length, and the
    // index into `symbols` where codes of that length start.
    first_code: [u32; (MAX_CODE_LEN + 1) as usize],
    first_index: [u32; (MAX_CODE_LEN + 1) as usize],
    count: [u32; (MAX_CODE_LEN + 1) as usize],
    symbols: Vec<u8>,
}

impl Decoder {
    /// Build a decoder from code lengths.
    pub fn new(lengths: &[u8; 256]) -> Decoder {
        let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
        for &len in lengths.iter() {
            if len > 0 {
                count[len as usize] += 1;
            }
        }
        let mut first_code = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut first_index = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        // Symbols sorted by (length, symbol) — canonical order.
        let mut symbols = Vec::with_capacity(index as usize);
        for len in 1..=MAX_CODE_LEN {
            for (sym, &l) in lengths.iter().enumerate() {
                if l == len {
                    symbols.push(sym as u8);
                }
            }
        }
        Decoder {
            first_code,
            first_index,
            count,
            symbols,
        }
    }

    /// Decode one symbol from the bit stream.
    pub fn read_symbol(&self, r: &mut BitReader<'_>) -> Option<u8> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.read_bit()? as u32;
            let n = self.count[len];
            if n > 0 {
                let first = self.first_code[len];
                if code < first + n {
                    if code < first {
                        return None; // malformed stream
                    }
                    let idx = self.first_index[len] + (code - first);
                    return self.symbols.get(idx as usize).copied();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq_of(data: &[u8]) -> [u64; 256] {
        let mut f = [0u64; 256];
        for &b in data {
            f[b as usize] += 1;
        }
        f
    }

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let code = Code::from_frequencies(&freq_of(data));
        let mut w = BitWriter::new();
        for &b in data {
            code.write_symbol(&mut w, b);
        }
        let bits = w.finish();
        let dec = code.decoder();
        let mut r = BitReader::new(&bits);
        (0..data.len())
            .map(|_| dec.read_symbol(&mut r).expect("decode"))
            .collect()
    }

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog, repeatedly! \
                     the quick brown fox jumps over the lazy dog";
        assert_eq!(roundtrip(data), data);
    }

    #[test]
    fn roundtrip_single_symbol() {
        let data = vec![0x42u8; 100];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_two_symbols() {
        let data: Vec<u8> = (0..100).map(|i| if i % 3 == 0 { 1 } else { 2 }).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% 'a', rest uniform: entropy well under 8 bits/symbol.
        let mut data = vec![b'a'; 9000];
        data.extend((0..1000).map(|i| (i % 256) as u8));
        let code = Code::from_frequencies(&freq_of(&data));
        let bits = code.cost_bits(&freq_of(&data));
        assert!(bits < data.len() as u64 * 8 / 2, "cost {bits} bits");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn kraft_inequality_holds() {
        // Exponentially skewed frequencies force deep trees that must be
        // length-limited.
        let mut freqs = [0u64; 256];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = 1u64 << (63 - (i / 5).min(62) as u64);
        }
        let code = Code::from_frequencies(&freqs);
        let kraft: f64 = code
            .lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
        assert!(code.lengths.iter().all(|&l| l <= MAX_CODE_LEN));
    }

    #[test]
    fn decoder_rejects_garbage_gracefully() {
        let mut freqs = [0u64; 256];
        freqs[b'x' as usize] = 10;
        freqs[b'y' as usize] = 1;
        let code = Code::from_frequencies(&freqs);
        let dec = code.decoder();
        // All-ones padding cannot decode forever; eventually returns None
        // instead of panicking.
        let bits = vec![0xFFu8; 4];
        let mut r = BitReader::new(&bits);
        let mut decoded = 0;
        while dec.read_symbol(&mut r).is_some() {
            decoded += 1;
            assert!(decoded < 64, "runaway decode");
        }
    }
}
