//! # quicert-compress — TLS certificate compression (RFC 8879 style)
//!
//! §4.2 of the paper shows that compressing certificate chains keeps 99% of
//! them under the QUIC anti-amplification limit, with a mean compression
//! ratio of ~73% (compressed/original) in the wild. This crate implements a
//! real, self-contained compressor so that those ratios are *measured on
//! real DER bytes* rather than assumed:
//!
//! * an LZ77 stage with a hash-chain match finder and optional
//!   dictionary priming, serialised to a byte-aligned token stream, and
//! * an order-0 canonical Huffman stage over the token stream, with an
//!   automatic fallback to stored mode when entropy coding does not pay.
//!
//! Three [`Algorithm`] profiles mirror the RFC 8879 code points measured in
//! Table 1 — `zlib`, `brotli` and `zstd` — differing in window size, match
//! effort and (for the brotli profile) a built-in static dictionary of
//! common X.509 fragments, mimicking how the real algorithms differ on
//! certificate data. The exact byte formats are this crate's own (the paper
//! only depends on achieved sizes, not interoperability).
//!
//! Compression is fully invertible; decompression and round-trip behaviour
//! are covered by unit and property tests.

pub mod bitio;
pub mod dict;
pub mod format;
pub mod huffman;
pub mod lz77;

pub use format::{compress, decompress, CompressError};

/// RFC 8879 certificate compression algorithm code points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// zlib (code point 1): 32 KiB window, greedy matching, no dictionary.
    Zlib,
    /// brotli (code point 2): large window, lazy matching, static
    /// certificate dictionary.
    Brotli,
    /// zstd (code point 3): large window, greedy matching with a longer
    /// minimum match (fast profile), no dictionary.
    Zstd,
}

impl Algorithm {
    /// All algorithms in code-point order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Zlib, Algorithm::Brotli, Algorithm::Zstd];

    /// The IANA code point from RFC 8879.
    pub fn code_point(self) -> u16 {
        match self {
            Algorithm::Zlib => 1,
            Algorithm::Brotli => 2,
            Algorithm::Zstd => 3,
        }
    }

    /// Lookup by code point.
    pub fn from_code_point(cp: u16) -> Option<Algorithm> {
        match cp {
            1 => Some(Algorithm::Zlib),
            2 => Some(Algorithm::Brotli),
            3 => Some(Algorithm::Zstd),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Zlib => "zlib",
            Algorithm::Brotli => "brotli",
            Algorithm::Zstd => "zstd",
        }
    }

    /// The LZ parameters of this profile.
    pub(crate) fn params(self) -> lz77::Params {
        match self {
            Algorithm::Zlib => lz77::Params {
                window: 32 * 1024,
                min_match: 4,
                lazy: false,
            },
            Algorithm::Brotli => lz77::Params {
                window: 4 * 1024 * 1024,
                min_match: 4,
                lazy: true,
            },
            Algorithm::Zstd => lz77::Params {
                window: 4 * 1024 * 1024,
                min_match: 5,
                lazy: false,
            },
        }
    }

    /// The static dictionary this profile primes the window with.
    pub fn dictionary(self) -> &'static [u8] {
        match self {
            Algorithm::Brotli => dict::cert_dictionary(),
            _ => &[],
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Result of compressing one input: sizes plus the output itself.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Original input size.
    pub original_len: usize,
    /// Compressed output (container format of this crate).
    pub data: Vec<u8>,
}

impl Compressed {
    /// compressed/original size ratio (the paper's "compression rate").
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.data.len() as f64 / self.original_len as f64
        }
    }

    /// Bytes saved.
    pub fn saved(&self) -> isize {
        self.original_len as isize - self.data.len() as isize
    }
}

/// Compress `input` with `algorithm`, returning sizes and data.
pub fn compress_with(algorithm: Algorithm, input: &[u8]) -> Compressed {
    let data = format::compress(algorithm, input);
    Compressed {
        algorithm,
        original_len: input.len(),
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_points_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::from_code_point(alg.code_point()), Some(alg));
        }
        assert_eq!(Algorithm::from_code_point(0), None);
        assert_eq!(Algorithm::from_code_point(4), None);
    }

    #[test]
    fn names_match_rfc() {
        assert_eq!(Algorithm::Zlib.name(), "zlib");
        assert_eq!(Algorithm::Brotli.to_string(), "brotli");
        assert_eq!(Algorithm::Zstd.name(), "zstd");
    }

    #[test]
    fn only_brotli_ships_a_dictionary() {
        assert!(Algorithm::Brotli.dictionary().len() > 500);
        assert!(Algorithm::Zlib.dictionary().is_empty());
        assert!(Algorithm::Zstd.dictionary().is_empty());
    }

    #[test]
    fn compress_with_reports_ratio() {
        let input = vec![b'A'; 4096];
        let out = compress_with(Algorithm::Zlib, &input);
        assert!(out.ratio() < 0.1, "highly repetitive input must crush");
        assert!(out.saved() > 3500);
        let back = decompress(&out.data, Algorithm::Zlib.dictionary()).unwrap();
        assert_eq!(back, input);
    }
}
