//! LZ77 match finding with a hash-chain index.
//!
//! The tokenizer works over the concatenation `dictionary || input`, so
//! matches may reach back into a shared static dictionary — this is how the
//! brotli profile gets its head start on certificate data.

/// Tuning parameters of an LZ profile.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Maximum match distance in bytes.
    pub window: usize,
    /// Minimum match length worth emitting.
    pub min_match: usize,
    /// Whether to do one-step-lazy matching (try position+1 for a longer
    /// match before committing).
    pub lazy: bool,
}

/// Longest match the tokenizer will emit.
pub const MAX_MATCH: usize = 1 << 16;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind the
    /// current output position (may reach into the dictionary).
    Match {
        /// Match length (≥ the profile's `min_match`).
        len: usize,
        /// Backward distance (≥ 1).
        dist: usize,
    },
}

const HASH_BITS: u32 = 16;
const CHAIN_LIMIT: usize = 64;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<i64>,
    prev: Vec<i64>,
    params: Params,
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8], params: Params) -> Self {
        Matcher {
            data,
            head: vec![-1; 1 << HASH_BITS],
            prev: vec![-1; data.len()],
            params,
        }
    }

    fn insert(&mut self, pos: usize) {
        if pos + 4 > self.data.len() {
            return;
        }
        let h = hash4(self.data, pos);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as i64;
    }

    /// Find the best match for `pos`, returning `(len, dist)`.
    fn best_match(&self, pos: usize) -> Option<(usize, usize)> {
        if pos + self.params.min_match > self.data.len() || pos + 4 > self.data.len() {
            return None;
        }
        let h = hash4(self.data, pos);
        let mut candidate = self.head[h];
        let mut best_len = self.params.min_match - 1;
        let mut best_dist = 0usize;
        let max_len = (self.data.len() - pos).min(MAX_MATCH);
        let mut chain = 0;
        while candidate >= 0 && chain < CHAIN_LIMIT {
            let cand = candidate as usize;
            if cand >= pos {
                // Defensive: never self-match (dist 0 would corrupt output).
                candidate = self.prev[cand];
                chain += 1;
                continue;
            }
            let dist = pos - cand;
            if dist > self.params.window {
                break;
            }
            // Quick check on the byte that would extend the best match.
            if best_len < max_len && self.data[cand + best_len] == self.data[pos + best_len] {
                let mut len = 0;
                while len < max_len && self.data[cand + len] == self.data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len >= max_len {
                        break;
                    }
                }
            }
            candidate = self.prev[cand];
            chain += 1;
        }
        if best_len >= self.params.min_match {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenize `input`, allowing matches into `dict` (which is *not* emitted).
pub fn tokenize(dict: &[u8], input: &[u8], params: Params) -> Vec<Token> {
    let mut data = Vec::with_capacity(dict.len() + input.len());
    data.extend_from_slice(dict);
    data.extend_from_slice(input);
    let mut matcher = Matcher::new(&data, params);
    for pos in 0..dict.len() {
        matcher.insert(pos);
    }

    let mut tokens = Vec::new();
    let mut pos = dict.len();
    while pos < data.len() {
        let found = matcher.best_match(pos);
        match found {
            Some((mut len, mut dist)) => {
                // One-step lazy evaluation: a longer match at pos+1 may be
                // worth deferring for.
                if params.lazy && pos + 1 < data.len() {
                    matcher.insert(pos);
                    if let Some((len2, dist2)) = matcher.best_match(pos + 1) {
                        if len2 > len + 1 {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            len = len2;
                            dist = dist2;
                        }
                    }
                    // `pos` was already inserted above; insert the rest of
                    // the match region below starting at pos+1.
                    tokens.push(Token::Match { len, dist });
                    for p in pos + 1..pos + len {
                        matcher.insert(p);
                    }
                    pos += len;
                    continue;
                }
                tokens.push(Token::Match { len, dist });
                for p in pos..pos + len {
                    matcher.insert(p);
                }
                pos += len;
            }
            None => {
                tokens.push(Token::Literal(data[pos]));
                matcher.insert(pos);
                pos += 1;
            }
        }
    }
    tokens
}

/// Reconstruct the input from tokens (used by tests; the container decoder
/// has its own incremental version).
pub fn detokenize(dict: &[u8], tokens: &[Token]) -> Vec<u8> {
    let mut out = dict.to_vec();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out.split_off(dict.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Params = Params {
        window: 32 * 1024,
        min_match: 4,
        lazy: false,
    };

    #[test]
    fn roundtrip_simple() {
        let input = b"abcabcabcabcabcabc";
        let tokens = tokenize(&[], input, P);
        assert_eq!(detokenize(&[], &tokens), input);
        // Must find the period-3 repetition (overlapping match).
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 3, .. })));
    }

    #[test]
    fn roundtrip_incompressible() {
        // A de Bruijn-ish byte sequence with no 4-grams repeated.
        let input: Vec<u8> = (0u32..2000)
            .flat_map(|i| (i.wrapping_mul(2654435761)).to_be_bytes())
            .collect();
        let tokens = tokenize(&[], &input, P);
        assert_eq!(detokenize(&[], &tokens), input);
    }

    #[test]
    fn dictionary_matches_reach_back() {
        let dict = b"certificate transparency log entry";
        let input = b"certificate transparency!";
        let tokens = tokenize(dict, input, P);
        assert_eq!(detokenize(dict, &tokens), input);
        // The first token should be a long match into the dictionary.
        match tokens[0] {
            Token::Match { len, dist } => {
                assert!(len >= 24, "len {len}");
                assert_eq!(dist, dict.len());
            }
            ref t => panic!("expected dictionary match, got {t:?}"),
        }
    }

    #[test]
    fn window_limits_distance() {
        let tight = Params {
            window: 8,
            min_match: 4,
            lazy: false,
        };
        // Repetition with period 16 cannot be matched in an 8-byte window.
        let unit = b"0123456789ABCDEF";
        let mut input = Vec::new();
        for _ in 0..4 {
            input.extend_from_slice(unit);
        }
        let tokens = tokenize(&[], &input, tight);
        assert!(
            tokens.iter().all(|t| matches!(t, Token::Literal(_))),
            "no match may exceed the window"
        );
        assert_eq!(detokenize(&[], &tokens), input);
    }

    #[test]
    fn lazy_matching_still_roundtrips() {
        let lazy = Params {
            window: 64 * 1024,
            min_match: 4,
            lazy: true,
        };
        let mut input = Vec::new();
        for i in 0..50 {
            input.extend_from_slice(b"prefix-");
            input.extend_from_slice(format!("{i:04}").as_bytes());
            input.extend_from_slice(b"-suffix of considerable length;");
        }
        let tokens = tokenize(&[], &input, lazy);
        assert_eq!(detokenize(&[], &tokens), input);
        let matched: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Match { len, .. } => *len,
                _ => 0,
            })
            .sum();
        assert!(matched * 10 > input.len() * 8, "most bytes should match");
    }

    #[test]
    fn min_match_is_respected() {
        let strict = Params {
            window: 1024,
            min_match: 6,
            lazy: false,
        };
        let input = b"abcd-abcd-abcdef-abcdef";
        let tokens = tokenize(&[], input, strict);
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!(*len >= 6);
            }
        }
        assert_eq!(detokenize(&[], &tokens), input);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize(&[], &[], P).is_empty());
        assert!(tokenize(b"dict", &[], P).is_empty());
    }
}
