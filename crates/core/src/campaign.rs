//! A measurement campaign: one world plus the [`ScanEngine`] computing and
//! caching every scan artifact the report and experiments consume.

use std::sync::Arc;

use quicert_compress::Algorithm;
use quicert_netsim::{FaultPlan, NetworkProfile};
use quicert_pki::{CertificateEra, World, WorldConfig};
use quicert_scanner::compression::{AlgorithmSupport, SyntheticCompression};
use quicert_scanner::https_scan::HttpsScanReport;
use quicert_scanner::qscanner::{ConsistencyReport, QuicCertObservation};
use quicert_scanner::quicreach::{QuicReachResult, ScanSummary, WarmScanResult};
use quicert_scanner::telescope_scan::BackscatterSession;
use quicert_scanner::zmap::ZmapResult;
use quicert_session::ResumptionPolicy;

use crate::engine::ScanEngine;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// The default client Initial size used for single-size scans
    /// (the paper reports at 1362 bytes, close to Firefox's 1357).
    pub default_initial: usize,
    /// Scan worker threads: `0` resolves to one per available core, `1`
    /// forces the serial path. Results are bit-for-bit identical at any
    /// setting.
    pub workers: usize,
    /// The link-condition overlay every profile-unaware scan runs under.
    /// [`NetworkProfile::Ideal`] (the default) reproduces pre-profile
    /// campaigns byte-for-byte; the report's profile matrix additionally
    /// scans explicit profiles regardless of this setting.
    pub profile: NetworkProfile,
    /// The resumption policy policy-unaware warm scans run under. Only
    /// warm-scan artifacts depend on it — every cold scan is computed with
    /// resumption disabled, exactly as before the subsystem existed.
    pub resumption: ResumptionPolicy,
    /// The certificate era era-unaware scans run against.
    /// [`CertificateEra::Classical`] (the default) reproduces era-unaware
    /// campaigns byte-for-byte; the report's era section additionally scans
    /// explicit eras regardless of this setting.
    pub era: CertificateEra,
    /// The fault overlay plan-unaware scans run under.
    /// [`FaultPlan::NONE`] (the default) reproduces plan-unaware campaigns
    /// byte-for-byte; the report's chaos grid additionally scans explicit
    /// plans regardless of this setting.
    pub fault_plan: FaultPlan,
    /// Population chunk size for the streaming (`stream_*`) scan path;
    /// `0` (the default) lets the pump claim adaptively — large chunks
    /// that taper near the population's tail. Streaming results are
    /// bit-for-bit identical at any setting — the knob only trades peak
    /// memory (one chunk of records per worker) against claiming
    /// overhead.
    pub stream_chunk: usize,
}

impl CampaignConfig {
    /// A small configuration for tests and examples (2k domains).
    pub fn small() -> Self {
        CampaignConfig {
            world: WorldConfig {
                domains: 2_000,
                ..WorldConfig::default()
            },
            default_initial: 1362,
            workers: 0,
            profile: NetworkProfile::Ideal,
            resumption: ResumptionPolicy::WarmAfterFirstVisit,
            era: CertificateEra::Classical,
            fault_plan: FaultPlan::NONE,
            stream_chunk: 0,
        }
    }

    /// The default 1:50-scale configuration (20k domains).
    pub fn standard() -> Self {
        CampaignConfig {
            world: WorldConfig::default(),
            default_initial: 1362,
            workers: 0,
            profile: NetworkProfile::Ideal,
            resumption: ResumptionPolicy::WarmAfterFirstVisit,
            era: CertificateEra::Classical,
            fault_plan: FaultPlan::NONE,
            stream_chunk: 0,
        }
    }

    /// Override the seed (useful for replication runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.world.seed = seed;
        self
    }

    /// Override the number of domains.
    pub fn with_domains(mut self, domains: usize) -> Self {
        self.world.domains = domains;
        self
    }

    /// Override the scan worker count (`0` = one per available core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Override the default network profile.
    pub fn with_profile(mut self, profile: NetworkProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Override the default resumption policy.
    pub fn with_resumption(mut self, policy: ResumptionPolicy) -> Self {
        self.resumption = policy;
        self
    }

    /// Override the default certificate era.
    pub fn with_era(mut self, era: CertificateEra) -> Self {
        self.era = era;
        self
    }

    /// Override the default fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the streaming chunk size (`0` = the engine default).
    pub fn with_stream_chunk(mut self, chunk_size: usize) -> Self {
        self.stream_chunk = chunk_size;
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::standard()
    }
}

/// One measurement campaign.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    engine: ScanEngine,
}

impl Campaign {
    /// Generate the world for `config`.
    pub fn new(config: CampaignConfig) -> Campaign {
        let world = World::generate(config.world.clone());
        let engine = ScanEngine::new(world, config.default_initial, config.workers)
            .with_stream_chunk(config.stream_chunk)
            .with_profile(config.profile)
            .with_resumption(config.resumption)
            .with_era(config.era)
            .with_fault_plan(config.fault_plan);
        Campaign { config, engine }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The scan engine holding every cached artifact.
    pub fn engine(&self) -> &ScanEngine {
        &self.engine
    }

    /// The generated world.
    pub fn world(&self) -> &World {
        self.engine.world()
    }

    /// The rank-group width used for Figs 12/13 (the paper uses 100k groups
    /// over 1M domains; scaled worlds use domains/10).
    pub fn rank_group_width(&self) -> usize {
        (self.config.world.domains / 10).max(1)
    }

    /// The HTTPS certificate scan (computed once).
    pub fn https_scan(&self) -> Arc<HttpsScanReport> {
        self.engine.https_scan()
    }

    /// The quicreach classification at the default Initial size.
    pub fn quicreach_default(&self) -> Arc<Vec<QuicReachResult>> {
        self.engine.quicreach_default()
    }

    /// The quicreach classification at an arbitrary Initial size.
    pub fn quicreach_at(&self, initial_size: usize) -> Arc<Vec<QuicReachResult>> {
        self.engine.quicreach(initial_size)
    }

    /// The quicreach classification under an explicit network profile
    /// (cached per `(profile, size)` pair — the scenario-matrix axis).
    pub fn quicreach_profiled(
        &self,
        profile: NetworkProfile,
        initial_size: usize,
    ) -> Arc<Vec<QuicReachResult>> {
        self.engine.quicreach_profiled(profile, initial_size)
    }

    /// The quicreach classification under an explicit [`CertificateEra`]
    /// and network profile (cached per `(era, profile, size)` — the
    /// post-quantum scenario-matrix axes).
    pub fn quicreach_era(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        initial_size: usize,
    ) -> Arc<Vec<QuicReachResult>> {
        self.engine.quicreach_era(era, profile, initial_size)
    }

    /// The quicreach classification under an explicit [`FaultPlan`]
    /// overlay (cached per `(era, profile, plan, size)` — the chaos-grid
    /// axes).
    pub fn quicreach_chaos(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        plan: FaultPlan,
        initial_size: usize,
    ) -> Arc<Vec<QuicReachResult>> {
        self.engine
            .quicreach_chaos(era, profile, plan, initial_size)
    }

    /// The cold-then-warm resumption scan at the default Initial size under
    /// the campaign's default profile and policy.
    pub fn warm_scan_default(&self) -> Arc<Vec<WarmScanResult>> {
        self.engine.warm_scan(self.config.default_initial)
    }

    /// The resumption scan under an explicit profile, policy and Initial
    /// size (cached per `(profile, policy, size)` — the scenario-matrix
    /// axes).
    pub fn warm_scan_profiled(
        &self,
        profile: NetworkProfile,
        policy: ResumptionPolicy,
        initial_size: usize,
    ) -> Arc<Vec<WarmScanResult>> {
        self.engine
            .warm_scan_profiled(profile, policy, initial_size)
    }

    /// The resumption scan under an explicit era, profile, policy and
    /// Initial size (cached per `(era, profile, policy, size)`).
    pub fn warm_scan_era(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        policy: ResumptionPolicy,
        initial_size: usize,
    ) -> Arc<Vec<WarmScanResult>> {
        self.engine
            .warm_scan_era(era, profile, policy, initial_size)
    }

    /// The full Fig 3 sweep (29 Initial sizes), computed once.
    pub fn sweep(&self) -> Arc<Vec<ScanSummary>> {
        self.engine.sweep()
    }

    /// Per-algorithm compression support (Table 1), computed once.
    pub fn compression_support(&self) -> Arc<Vec<AlgorithmSupport>> {
        self.engine.compression_support()
    }

    /// Services supporting all three compression algorithms (count, total).
    pub fn all_three_support(&self) -> (usize, usize) {
        self.engine.all_three_support()
    }

    /// The §4.2 synthetic compression study for one (algorithm, stride).
    pub fn compression_study(
        &self,
        algorithm: Algorithm,
        stride: usize,
    ) -> Arc<Vec<SyntheticCompression>> {
        self.engine.compression_study(algorithm, stride)
    }

    /// The synthetic compression study under an explicit
    /// [`CertificateEra`] (cached per `(era, algorithm, stride)`).
    pub fn compression_study_era(
        &self,
        era: CertificateEra,
        algorithm: Algorithm,
        stride: usize,
    ) -> Arc<Vec<SyntheticCompression>> {
        self.engine.compression_study_era(era, algorithm, stride)
    }

    /// Telescope backscatter sessions (Fig 9) for one probe budget.
    pub fn telescope(&self, per_provider: usize) -> Arc<Vec<BackscatterSession>> {
        self.engine.telescope(per_provider)
    }

    /// The §4.3 Meta-PoP ZMap scan (variation 0 is the headline scan; Fig
    /// 11 repetitions use higher variations).
    pub fn meta_pop(&self, post_disclosure: bool, variation: u64) -> Arc<Vec<ZmapResult>> {
        self.engine.meta_pop(post_disclosure, variation)
    }

    /// The QScanner certificate pass and its §3.2 TLS-vs-QUIC consistency
    /// report.
    pub fn qscanner(&self) -> Arc<(Vec<QuicCertObservation>, ConsistencyReport)> {
        self.engine.qscanner()
    }

    /// The streaming quicreach summary at the default Initial size —
    /// bit-for-bit the summary of [`Campaign::quicreach_default`], folded
    /// in bounded memory without materializing per-record results.
    pub fn stream_quicreach_default(&self) -> Arc<quicert_scanner::QuicReachShard> {
        self.engine.stream_quicreach(self.config.default_initial)
    }

    /// The streaming §3.1 funnel and chain-size summary.
    pub fn stream_https_scan(&self) -> Arc<quicert_scanner::HttpsScanShard> {
        self.engine.stream_https_scan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_cached() {
        let campaign = Campaign::new(CampaignConfig::small().with_seed(5));
        // Every artifact family returns the same allocation on re-request.
        assert!(Arc::ptr_eq(&campaign.https_scan(), &campaign.https_scan()));
        assert!(Arc::ptr_eq(
            &campaign.quicreach_default(),
            &campaign.quicreach_default()
        ));
        // The default-size scan and the explicit-size scan share one entry.
        assert!(Arc::ptr_eq(
            &campaign.quicreach_default(),
            &campaign.quicreach_at(campaign.config().default_initial)
        ));
        assert!(Arc::ptr_eq(&campaign.sweep(), &campaign.sweep()));
        assert!(Arc::ptr_eq(
            &campaign.compression_support(),
            &campaign.compression_support()
        ));
        assert!(Arc::ptr_eq(
            &campaign.compression_study(Algorithm::Brotli, 50),
            &campaign.compression_study(Algorithm::Brotli, 50)
        ));
        assert!(Arc::ptr_eq(&campaign.telescope(2), &campaign.telescope(2)));
        assert!(Arc::ptr_eq(
            &campaign.meta_pop(false, 0),
            &campaign.meta_pop(false, 0)
        ));
        assert_eq!(campaign.all_three_support(), campaign.all_three_support());
        assert!(!campaign.quicreach_default().is_empty());
    }

    #[test]
    fn rank_group_width_scales() {
        let c = Campaign::new(CampaignConfig::small().with_domains(5_000));
        assert_eq!(c.rank_group_width(), 500);
    }

    #[test]
    fn campaign_streaming_accessors_match_the_materialized_artifacts() {
        use quicert_scanner::https_scan::HttpsScanShard;
        use quicert_scanner::quicreach::QuicReachShard;

        let campaign = Campaign::new(CampaignConfig::small().with_seed(5).with_domains(1_000));
        let streamed = campaign.stream_quicreach_default();
        assert_eq!(
            *streamed,
            QuicReachShard::from_results(
                campaign.config().default_initial,
                &campaign.quicreach_default()
            )
        );
        assert!(Arc::ptr_eq(&streamed, &campaign.stream_quicreach_default()));
        assert_eq!(
            *campaign.stream_https_scan(),
            HttpsScanShard::from_report(&campaign.https_scan())
        );
    }

    #[test]
    fn worker_count_does_not_change_artifacts() {
        let serial = Campaign::new(CampaignConfig::small().with_seed(5).with_workers(1));
        let parallel = Campaign::new(CampaignConfig::small().with_seed(5).with_workers(8));
        assert_eq!(*serial.quicreach_default(), *parallel.quicreach_default());
        assert_eq!(
            serial.https_scan().observations.len(),
            parallel.https_scan().observations.len()
        );
    }
}
