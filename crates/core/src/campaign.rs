//! A measurement campaign: one world plus lazily computed scan artifacts.

use std::sync::OnceLock;

use quicert_pki::{World, WorldConfig};
use quicert_scanner::https_scan::{self, HttpsScanReport};
use quicert_scanner::quicreach::{self, QuicReachResult};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// The default client Initial size used for single-size scans
    /// (the paper reports at 1362 bytes, close to Firefox's 1357).
    pub default_initial: usize,
}

impl CampaignConfig {
    /// A small configuration for tests and examples (2k domains).
    pub fn small() -> Self {
        CampaignConfig {
            world: WorldConfig {
                domains: 2_000,
                ..WorldConfig::default()
            },
            default_initial: 1362,
        }
    }

    /// The default 1:50-scale configuration (20k domains).
    pub fn standard() -> Self {
        CampaignConfig {
            world: WorldConfig::default(),
            default_initial: 1362,
        }
    }

    /// Override the seed (useful for replication runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.world.seed = seed;
        self
    }

    /// Override the number of domains.
    pub fn with_domains(mut self, domains: usize) -> Self {
        self.world.domains = domains;
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::standard()
    }
}

/// One measurement campaign.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    world: World,
    https: OnceLock<HttpsScanReport>,
    quicreach_default: OnceLock<Vec<QuicReachResult>>,
}

impl Campaign {
    /// Generate the world for `config`.
    pub fn new(config: CampaignConfig) -> Campaign {
        let world = World::generate(config.world.clone());
        Campaign {
            config,
            world,
            https: OnceLock::new(),
            quicreach_default: OnceLock::new(),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The generated world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The rank-group width used for Figs 12/13 (the paper uses 100k groups
    /// over 1M domains; scaled worlds use domains/10).
    pub fn rank_group_width(&self) -> usize {
        (self.config.world.domains / 10).max(1)
    }

    /// The HTTPS certificate scan (computed once).
    pub fn https_scan(&self) -> &HttpsScanReport {
        self.https.get_or_init(|| https_scan::scan(&self.world))
    }

    /// The quicreach classification at the default Initial size.
    pub fn quicreach_default(&self) -> &[QuicReachResult] {
        self.quicreach_default
            .get_or_init(|| quicreach::scan(&self.world, self.config.default_initial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_cached() {
        let campaign = Campaign::new(CampaignConfig::small().with_seed(5));
        let a = campaign.https_scan() as *const _;
        let b = campaign.https_scan() as *const _;
        assert_eq!(a, b, "same allocation on second call");
        let q1 = campaign.quicreach_default().len();
        let q2 = campaign.quicreach_default().len();
        assert_eq!(q1, q2);
        assert!(q1 > 0);
    }

    #[test]
    fn rank_group_width_scales() {
        let c = Campaign::new(CampaignConfig::small().with_domains(5_000));
        assert_eq!(c.rank_group_width(), 500);
    }
}
