//! The [`ScanEngine`]: one uniform, lazily-computed artifact store with a
//! worker-sharded parallel execution path.
//!
//! Every scan artifact the report and the experiment modules consume — the
//! HTTPS certificate scan, quicreach classifications at *any* Initial size,
//! the full Fig 3 sweep, the compression support scan and synthetic study,
//! telescope backscatter sessions, Meta-PoP ZMap scans and the QScanner
//! pass — is computed at most once per campaign and shared behind an
//! [`Arc`]. Experiments therefore never recompute a scan behind the
//! report's back: asking twice returns the same allocation.
//!
//! ## Parallel execution and determinism
//!
//! Per-domain scans shard the record list into `workers` contiguous chunks
//! and probe each chunk on its own scoped thread (`workers <= 1` falls back
//! to a plain serial loop, so single-threaded environments pay no
//! synchronisation cost). The results are **bit-for-bit identical at any
//! worker count** because every probe draws its randomness from a `SimRng`
//! stream forked off the campaign seed *per record* at world-generation
//! time (`record.seed`), never from a stream shared across records. A
//! shard boundary therefore cannot shift any draw: worker `i` probing
//! records `[a, b)` produces exactly the bytes a serial run produces for
//! those records, and concatenating the shard outputs in shard order
//! restores the serial result exactly. The determinism test in this module
//! pins that guarantee at 1, 2 and 8 workers.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use quicert_analysis::Merge;
use quicert_compress::Algorithm;
use quicert_netsim::{FaultPlan, Ipv4Net, NetworkProfile};
use quicert_obs::{Counter, Gauge, MetricsRegistry};
use quicert_pki::{CertificateEra, DomainRecord, World, WorldConfig};
use quicert_scanner::compression::{
    self, AlgorithmSupport, CompressionShard, SyntheticCompression,
};
use quicert_scanner::https_scan::{self, HttpsScanReport, HttpsScanShard};
use quicert_scanner::qscanner::{self, ConsistencyReport, QuicCertObservation};
use quicert_scanner::quicreach::{
    self, ProbeMetrics, QuicReachResult, QuicReachShard, ScanSummary, WarmScanResult,
};
use quicert_scanner::telescope_scan::{self, BackscatterSession};
use quicert_scanner::zmap::{self, ZmapResult};
use quicert_session::ResumptionPolicy;

/// Smallest chunk the adaptive pump claims: keeps `SimNet` batching
/// amortised even at the tail of the population.
pub const MIN_ADAPTIVE_CHUNK: usize = 64;

/// Largest chunk the adaptive pump claims. Deliberately modest: probe
/// batches share one `SimNet` event heap, so per-event cost grows with the
/// batch (heap log factor, cold session state), and profiling the 100k
/// pump showed 64–256-record claims 20–40% faster than the old fixed 1024.
/// Claim overhead is one atomic `fetch_add` per chunk — noise even at ten
/// million records.
pub const MAX_ADAPTIVE_CHUNK: usize = 256;

/// The host's core count (1 when it cannot be determined). The pump and
/// the sharded materialized path never spawn more threads than this —
/// oversubscribing a small host made 2-worker runs *slower* than serial.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The chunk a pump worker claims next under adaptive granularity: an
/// eighth of the remaining population per worker, clamped to
/// [[`MIN_ADAPTIVE_CHUNK`], [`MAX_ADAPTIVE_CHUNK`]]. Early claims are
/// large (cheap cursor traffic, good batching); tail claims shrink so no
/// worker sits idle while one drains a final oversized chunk.
fn adaptive_claim(remaining: usize, workers: usize) -> usize {
    (remaining / (workers * 8).max(1)).clamp(MIN_ADAPTIVE_CHUNK, MAX_ADAPTIVE_CHUNK)
}

/// One fully-specified scan scenario: the orthogonal axes that determine
/// a scan family's outcome, packaged as one hashable key.
///
/// Replaces the engine's former ad-hoc `(era, profile, plan, size)` and
/// `(era, profile, policy, plan, size)` cache-key tuples, and doubles as
/// the key the campaign service uses for per-tick snapshots. All
/// components store exact (integer/enum) values, so the key is `Eq +
/// Hash` with no float anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    /// Certificate era the scan runs under.
    pub era: CertificateEra,
    /// Network path conditions.
    pub profile: NetworkProfile,
    /// Resumption policy for warm scans; `None` on cold scans.
    pub policy: Option<ResumptionPolicy>,
    /// Chaos overlay ([`FaultPlan::NONE`] outside fault campaigns).
    pub plan: FaultPlan,
    /// Client Initial size in bytes.
    pub initial_size: usize,
}

impl ScenarioKey {
    /// The key of a cold (no-resumption) scan.
    pub fn cold(
        era: CertificateEra,
        profile: NetworkProfile,
        plan: FaultPlan,
        initial_size: usize,
    ) -> ScenarioKey {
        ScenarioKey {
            era,
            profile,
            policy: None,
            plan,
            initial_size,
        }
    }

    /// The same scenario scanned warm under `policy`.
    pub fn with_policy(self, policy: ResumptionPolicy) -> ScenarioKey {
        ScenarioKey {
            policy: Some(policy),
            ..self
        }
    }
}

/// One lazily-computed artifact family, keyed by scan parameters.
///
/// The first request for a key computes the artifact (outside the lock, so
/// engine methods may nest — the sweep pulls per-size quicreach artifacts);
/// every later request returns the same `Arc` allocation.
#[derive(Debug)]
struct ArtifactCache<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl<K: Eq + Hash, V> ArtifactCache<K, V> {
    /// A cache whose hit/miss counters carry `family` as their label on
    /// `registry`. Artifact requests are rare (once per campaign figure),
    /// so counting every lookup costs nothing measurable.
    fn new(registry: &MetricsRegistry, family: &str) -> Self {
        ArtifactCache {
            map: Mutex::new(HashMap::new()),
            hits: registry.labeled_counter(
                "quicert_engine_cache_hits_total",
                &[("family", family)],
                "Artifact requests answered from the engine cache",
            ),
            misses: registry.labeled_counter(
                "quicert_engine_cache_misses_total",
                &[("family", family)],
                "Artifact requests that had to compute their artifact",
            ),
        }
    }

    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(value) = self.map.lock().unwrap().get(&key) {
            self.hits.inc();
            return Arc::clone(value);
        }
        self.misses.inc();
        let value = Arc::new(compute());
        // First insertion wins so concurrent callers agree on one allocation.
        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(value))
    }
}

/// Shard `items` into at most `workers` contiguous chunks and run
/// `run_shard` on each, on its own scoped thread. Outputs are concatenated
/// in shard order, so any per-record computation is reproduced bit-for-bit
/// regardless of the worker count. With one worker (or one item) this is a
/// plain serial call.
///
/// The spawned thread count is additionally capped at
/// [`host_parallelism`]: requesting more workers than cores cannot help a
/// CPU-bound scan, and on small hosts the extra threads made multi-worker
/// runs measurably slower than serial. Results are unaffected — they are
/// worker-count invariant by construction.
pub fn run_sharded<T, R, F>(items: &[T], workers: usize, run_shard: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = workers
        .max(1)
        .min(items.len().max(1))
        .min(host_parallelism());
    if workers == 1 {
        return run_shard(items);
    }
    let chunk = items.len().div_ceil(workers);
    let run_shard = &run_shard;
    let mut shards: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(move || run_shard(shard)))
            .collect();
        shards.extend(
            handles
                .into_iter()
                .map(|handle| handle.join().expect("scan worker panicked")),
        );
    });
    shards.into_iter().flatten().collect()
}

/// Counters one pump worker accumulated over the chunks it claimed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerPumpStats {
    /// Chunks this worker claimed off the shared cursor.
    pub chunks_claimed: u64,
    /// Records this worker generated and folded.
    pub records_folded: u64,
    /// Wall-clock seconds spent generating and folding its chunks
    /// (excludes idle time waiting on the scope join).
    pub fold_seconds: f64,
    /// Probes answered from this worker's scenario-class memo instead of
    /// simulation (zero when the fold has no memo or bypassed it).
    pub memo_hits: u64,
    /// Probes this worker actually simulated while memoizing.
    pub memo_misses: u64,
    /// Distinct scenario classes in this worker's memo at the end of the
    /// run — the size of its flyweight table.
    pub distinct_classes: u64,
}

/// Memo-effectiveness counters a pump scratch may expose, harvested into
/// [`WorkerPumpStats`] when its worker finishes.
///
/// Implemented as `(0, 0, 0)` for scratch-less folds (`()`), and by
/// [`quicreach::ProbeScratch`] for the streaming quicreach fold whose
/// scenario-class memo these counters describe.
pub trait ScratchStats {
    /// `(memo_hits, memo_misses, distinct_classes)` accumulated so far.
    fn memo_stats(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }
}

impl ScratchStats for () {}

impl ScratchStats for quicreach::ProbeScratch {
    fn memo_stats(&self) -> (u64, u64, u64) {
        quicreach::ProbeScratch::memo_stats(self)
    }
}

/// What the streaming pump did on one run: per-worker counters plus the
/// resolved claiming parameters. `repro` prints this after a streaming
/// campaign and the bench artifact embeds it per scan row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PumpStats {
    /// Workers the caller asked for.
    pub requested_workers: usize,
    /// Threads that actually pumped: the request capped at
    /// [`host_parallelism`].
    pub effective_workers: usize,
    /// The fixed chunk size, or `None` when claims adapted to the
    /// remaining population.
    pub fixed_chunk: Option<usize>,
    /// Per-worker counters, in spawn order.
    pub workers: Vec<WorkerPumpStats>,
}

impl PumpStats {
    /// Every per-worker counter summed into one merged
    /// [`WorkerPumpStats`]: the run's totals, in the same shape as any
    /// single worker's share. `distinct_classes` sums the per-worker memo
    /// tables — workers memoize independently, so a class counts once per
    /// worker that met it, and at scale the total stays close to
    /// `workers × classes`.
    pub fn totals(&self) -> WorkerPumpStats {
        let mut totals = WorkerPumpStats::default();
        for w in &self.workers {
            totals.chunks_claimed += w.chunks_claimed;
            totals.records_folded += w.records_folded;
            totals.fold_seconds += w.fold_seconds;
            totals.memo_hits += w.memo_hits;
            totals.memo_misses += w.memo_misses;
            totals.distinct_classes += w.distinct_classes;
        }
        totals
    }

    /// The busiest worker's fold seconds — the pump's critical path.
    pub fn max_fold_seconds(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.fold_seconds)
            .fold(0.0, f64::max)
    }
}

/// Pump a world's population through worker threads as rank-ordered record
/// chunks, folding each chunk with `fold` into per-worker summaries that
/// are merged at the end.
///
/// This is the bounded-memory counterpart of [`run_sharded`]: at no point
/// does more than one chunk of records per worker (plus one summary and
/// one scratch per worker) exist in memory, so a million-record population
/// streams through a few megabytes. The result is **bit-for-bit
/// independent of the worker count and the chunk granularity** because
/// (a) per-record RNG forking makes every chunk's fold chunk-size
/// invariant, and (b) shard summaries are exactly commutative monoids
/// under [`Merge`], so the order workers happen to pick chunks in cannot
/// shift a single bit.
///
/// The datapath details, all invisible in the results:
///
/// * Chunks are rank-addressable ([`World::domain_chunk_into`] only reads
///   the config), so workers claim disjoint rank ranges off an atomic
///   cursor and generate their own records into a reused buffer — no
///   locks, no channel, and population generation parallelises along with
///   the probing.
/// * `chunk` fixes the claim size; `None` claims adaptively — an eighth
///   of the remaining population per worker, clamped to
///   [[`MIN_ADAPTIVE_CHUNK`], [`MAX_ADAPTIVE_CHUNK`]], so claims start
///   large and taper near the tail.
/// * Each worker builds one `scratch` via `make_scratch` and hands it to
///   every `fold` call, letting record-heavy folds (probe batches) reuse
///   their allocations across millions of records.
/// * Threads are capped at [`host_parallelism`]; a single effective
///   worker runs the same claim loop inline without spawning.
pub fn stream_sharded_scratch<S, T, MS, F>(
    world: &World,
    chunk: Option<usize>,
    workers: usize,
    make_scratch: MS,
    fold: F,
) -> (S, PumpStats)
where
    S: Merge + Send,
    T: ScratchStats,
    MS: Fn() -> T + Sync,
    F: Fn(&[DomainRecord], &mut T) -> S + Sync,
{
    let requested = workers.max(1);
    let effective = requested.min(host_parallelism());
    let total = world.config.domains;
    let cursor = AtomicUsize::new(1);
    let cursor = &cursor;
    let worker = || -> (S, WorkerPumpStats) {
        let mut local = S::identity();
        let mut scratch = make_scratch();
        let mut buf: Vec<DomainRecord> = Vec::new();
        let mut stats = WorkerPumpStats::default();
        let mut claim = match chunk {
            Some(size) => size.max(1),
            None => adaptive_claim(total, effective),
        };
        loop {
            let first = cursor.fetch_add(claim, Ordering::Relaxed);
            if first > total {
                break;
            }
            let started = Instant::now();
            world.domain_chunk_into(first, claim, &mut buf);
            local.merge(&fold(&buf, &mut scratch));
            stats.fold_seconds += started.elapsed().as_secs_f64();
            stats.chunks_claimed += 1;
            stats.records_folded += buf.len() as u64;
            if chunk.is_none() {
                let done = first.saturating_add(claim - 1).min(total);
                claim = adaptive_claim(total - done, effective);
            }
        }
        let (hits, misses, distinct) = scratch.memo_stats();
        stats.memo_hits = hits;
        stats.memo_misses = misses;
        stats.distinct_classes = distinct;
        (local, stats)
    };

    let mut shards: Vec<S> = Vec::with_capacity(effective);
    let mut worker_stats: Vec<WorkerPumpStats> = Vec::with_capacity(effective);
    if effective == 1 {
        let (shard, stats) = worker();
        shards.push(shard);
        worker_stats.push(stats);
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (0..effective).map(|_| scope.spawn(worker)).collect();
            for handle in handles {
                let (shard, stats) = handle.join().expect("stream worker panicked");
                shards.push(shard);
                worker_stats.push(stats);
            }
        });
    }
    (
        S::merge_all(shards),
        PumpStats {
            requested_workers: requested,
            effective_workers: effective,
            fixed_chunk: chunk,
            workers: worker_stats,
        },
    )
}

/// [`stream_sharded_scratch`] without per-worker scratch, for folds that
/// need none.
pub fn stream_sharded<S, F>(world: &World, chunk: Option<usize>, workers: usize, fold: F) -> S
where
    S: Merge + Send,
    F: Fn(&[DomainRecord]) -> S + Sync,
{
    stream_sharded_scratch(
        world,
        chunk,
        workers,
        || (),
        |records, _: &mut ()| fold(records),
    )
    .0
}

/// Pre-registered streaming-pump instruments on the engine's registry —
/// resolved once at construction so the pump's flush is a handful of
/// atomic adds, never a registry lock.
#[derive(Debug)]
struct EngineMetrics {
    chunks_claimed: Arc<Counter>,
    records_folded: Arc<Counter>,
    fold_wall_seconds: Arc<Gauge>,
    memo_hits: Arc<Counter>,
    memo_misses: Arc<Counter>,
    memo_classes: Arc<Gauge>,
}

impl EngineMetrics {
    fn register(registry: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            chunks_claimed: registry.counter(
                "quicert_engine_chunks_claimed_total",
                "Population chunks claimed off the streaming pump's cursor",
            ),
            records_folded: registry.counter(
                "quicert_engine_records_folded_total",
                "Records generated and folded by the streaming pump",
            ),
            // "wall" marks the one nondeterministic value in the registry:
            // golden renders redact exactly the lines carrying it.
            fold_wall_seconds: registry.gauge(
                "quicert_engine_fold_wall_seconds_total",
                "Wall-clock seconds pump workers spent generating and folding",
            ),
            memo_hits: registry.counter(
                "quicert_engine_memo_hits_total",
                "Streamed probes answered from scenario-class memos",
            ),
            memo_misses: registry.counter(
                "quicert_engine_memo_misses_total",
                "Streamed probes simulated while memoizing",
            ),
            memo_classes: registry.gauge(
                "quicert_engine_memo_classes",
                "Distinct scenario classes across per-worker memo tables after the last pump",
            ),
        }
    }
}

/// The campaign's scan executor and artifact store.
#[derive(Debug)]
pub struct ScanEngine {
    world: World,
    default_initial: usize,
    workers: usize,
    stream_chunk: Option<usize>,
    memoize: bool,
    profile: NetworkProfile,
    resumption: ResumptionPolicy,
    era: CertificateEra,
    fault_plan: FaultPlan,
    https: ArtifactCache<(), HttpsScanReport>,
    // Scan-family caches key on [`ScenarioKey`] — every axis stores exact
    // integer/enum values, so no float keys anywhere.
    quicreach: ArtifactCache<ScenarioKey, Vec<QuicReachResult>>,
    warm: ArtifactCache<ScenarioKey, Vec<WarmScanResult>>,
    sweep: ArtifactCache<(), Vec<ScanSummary>>,
    compression_support: ArtifactCache<(), Vec<AlgorithmSupport>>,
    all_three: ArtifactCache<(), (usize, usize)>,
    compression_study: ArtifactCache<(CertificateEra, Algorithm, usize), Vec<SyntheticCompression>>,
    telescope: ArtifactCache<usize, Vec<BackscatterSession>>,
    zmap: ArtifactCache<(bool, u64), Vec<ZmapResult>>,
    qscanner: ArtifactCache<(), (Vec<QuicCertObservation>, ConsistencyReport)>,
    // Streaming-path caches hold *summaries*, never per-record vectors, so
    // a cached million-record scan costs a few kilobytes.
    stream_quicreach: ArtifactCache<ScenarioKey, QuicReachShard>,
    stream_https: ArtifactCache<(), HttpsScanShard>,
    stream_compression: ArtifactCache<(), CompressionShard>,
    // What the pump did on the most recent (uncached) streaming scan.
    last_pump: Mutex<Option<PumpStats>>,
    // The campaign's metrics registry and its pre-registered pump
    // instruments; `metrics_enabled` gates the streaming-path flushes.
    registry: Arc<MetricsRegistry>,
    metrics: EngineMetrics,
    metrics_enabled: bool,
}

impl ScanEngine {
    /// Wrap a generated world. `workers == 0` resolves to one worker per
    /// available core; `workers == 1` forces the serial path.
    pub fn new(world: World, default_initial: usize, workers: usize) -> ScanEngine {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = EngineMetrics::register(&registry);
        ScanEngine {
            world,
            default_initial,
            workers,
            stream_chunk: None,
            memoize: true,
            profile: NetworkProfile::Ideal,
            resumption: ResumptionPolicy::WarmAfterFirstVisit,
            era: CertificateEra::Classical,
            fault_plan: FaultPlan::NONE,
            https: ArtifactCache::new(&registry, "https"),
            quicreach: ArtifactCache::new(&registry, "quicreach"),
            warm: ArtifactCache::new(&registry, "warm"),
            sweep: ArtifactCache::new(&registry, "sweep"),
            compression_support: ArtifactCache::new(&registry, "compression-support"),
            all_three: ArtifactCache::new(&registry, "all-three"),
            compression_study: ArtifactCache::new(&registry, "compression-study"),
            telescope: ArtifactCache::new(&registry, "telescope"),
            zmap: ArtifactCache::new(&registry, "zmap"),
            qscanner: ArtifactCache::new(&registry, "qscanner"),
            stream_quicreach: ArtifactCache::new(&registry, "stream-quicreach"),
            stream_https: ArtifactCache::new(&registry, "stream-https"),
            stream_compression: ArtifactCache::new(&registry, "stream-compression"),
            last_pump: Mutex::new(None),
            registry,
            metrics,
            metrics_enabled: true,
        }
    }

    /// An engine over a never-materialised [`World::streaming`] population:
    /// the at-scale constructor. Only the `stream_*` scan families make
    /// sense on such an engine — materialized artifact requests see an
    /// empty population.
    pub fn streaming(config: WorldConfig, default_initial: usize, workers: usize) -> ScanEngine {
        ScanEngine::new(World::streaming(config), default_initial, workers)
    }

    /// Fix the population chunk size the streaming scan path pumps; `0`
    /// restores the default *adaptive* claiming (large claims tapering
    /// near the population's tail). Results are bit-for-bit identical at
    /// any setting; the knob only trades peak memory (one chunk of records
    /// per worker) against claiming overhead.
    pub fn with_stream_chunk(mut self, chunk_size: usize) -> ScanEngine {
        self.stream_chunk = if chunk_size == 0 {
            None
        } else {
            Some(chunk_size)
        };
        self
    }

    /// Enable or disable scenario-class memoization on the streaming scan
    /// path (on by default). Memoized and unmemoized runs fold bit-for-bit
    /// identical summaries — the toggle exists for A/B benching and for
    /// the determinism matrix to prove exactly that; there is no results
    /// reason to turn it off. Profiles that consume per-record randomness
    /// bypass the memo on their own either way.
    pub fn with_memoization(mut self, memoize: bool) -> ScanEngine {
        self.memoize = memoize;
        self
    }

    /// Whether the streaming scan path memoizes scenario classes.
    pub fn memoization(&self) -> bool {
        self.memoize
    }

    /// Enable or disable streaming-scan instrumentation (on by default).
    /// Metrics are a pure side channel — they read simulated time and
    /// counters the datapath maintains anyway, so summaries are bit-for-bit
    /// identical either way; the determinism matrix pins exactly that. The
    /// toggle exists for overhead A/B runs, not because anything depends
    /// on it.
    pub fn with_metrics(mut self, enabled: bool) -> ScanEngine {
        self.metrics_enabled = enabled;
        self
    }

    /// Whether the streaming scan path updates the metrics registry.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_enabled
    }

    /// The campaign's metrics registry. Artifact-cache counters land here
    /// unconditionally; pump totals, probe counters and handshake-phase
    /// histograms land here while metrics are enabled. Render it with
    /// [`MetricsRegistry::render_prometheus`] or
    /// [`MetricsRegistry::render_json`].
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Set the engine's default [`NetworkProfile`]: the link-condition
    /// overlay all profile-unaware scan requests run under.
    /// [`NetworkProfile::Ideal`] (the default) reproduces profile-unaware
    /// campaigns byte-for-byte.
    pub fn with_profile(mut self, profile: NetworkProfile) -> ScanEngine {
        self.profile = profile;
        self
    }

    /// Set the engine's default [`ResumptionPolicy`]: the policy
    /// policy-unaware warm-scan requests run under. The policy only affects
    /// warm artifacts — cold scans never see it.
    pub fn with_resumption(mut self, policy: ResumptionPolicy) -> ScanEngine {
        self.resumption = policy;
        self
    }

    /// Set the engine's default [`CertificateEra`]: the PKI generation all
    /// era-unaware scan requests run against.
    /// [`CertificateEra::Classical`] (the default) reproduces era-unaware
    /// campaigns byte-for-byte.
    pub fn with_era(mut self, era: CertificateEra) -> ScanEngine {
        self.era = era;
        self
    }

    /// Set the engine's default [`FaultPlan`]: the fault overlay all
    /// plan-unaware scan requests run under. [`FaultPlan::NONE`] (the
    /// default) reproduces plan-unaware campaigns byte-for-byte; any other
    /// plan draws wire randomness, so the streaming scan path bypasses
    /// scenario-class memoization on its own.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ScanEngine {
        self.fault_plan = plan;
        self
    }

    /// The world all scans run against.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The engine's default network profile.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// The engine's default resumption policy.
    pub fn resumption(&self) -> ResumptionPolicy {
        self.resumption
    }

    /// The engine's default certificate era.
    pub fn era(&self) -> CertificateEra {
        self.era
    }

    /// The engine's default fault plan.
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault_plan
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The default client Initial size for single-size scans.
    pub fn default_initial(&self) -> usize {
        self.default_initial
    }

    /// The §3.1 HTTPS certificate scan (per-domain chain collection runs
    /// sharded; the funnel counters are folded in rank order afterwards).
    pub fn https_scan(&self) -> Arc<HttpsScanReport> {
        self.https.get_or_compute((), || {
            let records: Vec<&DomainRecord> = self.world.domains().iter().collect();
            let observations = run_sharded(&records, self.workers, |shard| {
                https_scan::observe_records(&self.world, shard)
            });
            https_scan::collate(&self.world, observations)
        })
    }

    /// quicreach classifications at one Initial size under the engine's
    /// default network profile, sharded over the QUIC service list.
    pub fn quicreach(&self, initial_size: usize) -> Arc<Vec<QuicReachResult>> {
        self.quicreach_profiled(self.profile, initial_size)
    }

    /// quicreach classifications at one Initial size under an explicit
    /// [`NetworkProfile`] and the engine's default era.
    pub fn quicreach_profiled(
        &self,
        profile: NetworkProfile,
        initial_size: usize,
    ) -> Arc<Vec<QuicReachResult>> {
        self.quicreach_era(self.era, profile, initial_size)
    }

    /// quicreach classifications under an explicit [`CertificateEra`] and
    /// [`NetworkProfile`] — one cached artifact per `(era, profile, size)`
    /// triple. Each worker shard is batched as sessions of one `SimNet`;
    /// per-record RNG forking keeps the artifact bit-for-bit identical at
    /// any worker count and batch size, on every era.
    pub fn quicreach_era(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        initial_size: usize,
    ) -> Arc<Vec<QuicReachResult>> {
        self.quicreach_chaos(era, profile, self.fault_plan, initial_size)
    }

    /// quicreach classifications under an explicit [`FaultPlan`] overlay on
    /// top of the era and profile — one cached artifact per `(era, profile,
    /// plan, size)` tuple, so a chaos grid revisiting a cell is free. The
    /// plan's drops, duplications and corruptions draw from each probe's
    /// forked RNG, so the artifact stays bit-for-bit identical at any
    /// worker count.
    pub fn quicreach_chaos(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        plan: FaultPlan,
        initial_size: usize,
    ) -> Arc<Vec<QuicReachResult>> {
        self.quicreach
            .get_or_compute(ScenarioKey::cold(era, profile, plan, initial_size), || {
                let records: Vec<&DomainRecord> = self.world.quic_services().collect();
                run_sharded(&records, self.workers, |shard| {
                    quicreach::scan_records_chaos(
                        &self.world,
                        shard,
                        initial_size,
                        profile,
                        era,
                        plan,
                    )
                })
            })
    }

    /// quicreach at the campaign's default Initial size.
    pub fn quicreach_default(&self) -> Arc<Vec<QuicReachResult>> {
        self.quicreach(self.default_initial)
    }

    /// The cold-then-warm resumption scan at one Initial size under the
    /// engine's default profile and policy.
    pub fn warm_scan(&self, initial_size: usize) -> Arc<Vec<WarmScanResult>> {
        self.warm_scan_profiled(self.profile, self.resumption, initial_size)
    }

    /// The cold-then-warm resumption scan under an explicit
    /// [`NetworkProfile`] and [`ResumptionPolicy`], on the engine's default
    /// era.
    pub fn warm_scan_profiled(
        &self,
        profile: NetworkProfile,
        policy: ResumptionPolicy,
        initial_size: usize,
    ) -> Arc<Vec<WarmScanResult>> {
        self.warm_scan_era(self.era, profile, policy, initial_size)
    }

    /// The cold-then-warm resumption scan under an explicit
    /// [`CertificateEra`], [`NetworkProfile`] and [`ResumptionPolicy`] —
    /// one cached artifact per `(era, profile, policy, size)` tuple. Worker
    /// shards batch their cold and warm visits on one `SimNet` each;
    /// per-record RNG forking keeps the artifact bit-for-bit identical at
    /// any worker count.
    pub fn warm_scan_era(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        policy: ResumptionPolicy,
        initial_size: usize,
    ) -> Arc<Vec<WarmScanResult>> {
        self.warm_scan_chaos(era, profile, policy, self.fault_plan, initial_size)
    }

    /// The cold-then-warm resumption scan under an explicit [`FaultPlan`]
    /// overlay — one cached artifact per `(era, profile, policy, plan,
    /// size)` tuple. This is how the chaos grid measures whether session
    /// resumption still pays off once the wire drops and corrupts
    /// datagrams.
    pub fn warm_scan_chaos(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        policy: ResumptionPolicy,
        plan: FaultPlan,
        initial_size: usize,
    ) -> Arc<Vec<WarmScanResult>> {
        let key = ScenarioKey::cold(era, profile, plan, initial_size).with_policy(policy);
        self.warm.get_or_compute(key, || {
            let records: Vec<&DomainRecord> = self.world.quic_services().collect();
            run_sharded(&records, self.workers, |shard| {
                quicreach::warm_scan_records_chaos(
                    &self.world,
                    shard,
                    initial_size,
                    profile,
                    policy,
                    era,
                    plan,
                )
            })
        })
    }

    /// The full Fig 3 sweep: one [`ScanSummary`] per swept Initial size.
    /// Every per-size scan lands in the [`ScanEngine::quicreach`] cache, so
    /// later single-size requests (the §4.1 reachability experiment, the
    /// default-size bar) are free.
    pub fn sweep(&self) -> Arc<Vec<ScanSummary>> {
        self.sweep.get_or_compute((), || {
            quicreach::sweep_sizes()
                .iter()
                .map(|&size| quicreach::summarize(size, &self.quicreach(size)))
                .collect()
        })
    }

    /// Per-algorithm compression support and achieved ratios (Table 1),
    /// probing sharded over the QUIC service list.
    pub fn compression_support(&self) -> Arc<Vec<AlgorithmSupport>> {
        self.compression_support.get_or_compute((), || {
            let records: Vec<&DomainRecord> = self.world.quic_services().collect();
            let probes = run_sharded(&records, self.workers, |shard| {
                compression::probe_records(&self.world, shard)
            });
            compression::collate(&probes)
        })
    }

    /// Services supporting all three compression algorithms (count, total).
    pub fn all_three_support(&self) -> (usize, usize) {
        *self
            .all_three
            .get_or_compute((), || compression::all_three_support(&self.world))
    }

    /// The §4.2 synthetic compression study for one (algorithm, stride) on
    /// the engine's default era.
    pub fn compression_study(
        &self,
        algorithm: Algorithm,
        stride: usize,
    ) -> Arc<Vec<SyntheticCompression>> {
        self.compression_study_era(self.era, algorithm, stride)
    }

    /// The synthetic compression study under an explicit
    /// [`CertificateEra`] — one cached artifact per `(era, algorithm,
    /// stride)` triple, chain compression sharded over the sampled records.
    /// This is how the report measures the Fig-9-style dictionary degrading
    /// on PQC chains.
    pub fn compression_study_era(
        &self,
        era: CertificateEra,
        algorithm: Algorithm,
        stride: usize,
    ) -> Arc<Vec<SyntheticCompression>> {
        self.compression_study
            .get_or_compute((era, algorithm, stride), || {
                let sampled = compression::study_sample(&self.world, stride);
                run_sharded(&sampled, self.workers, |shard| {
                    compression::study_records_era(&self.world, shard, algorithm, era)
                })
            })
    }

    /// Telescope backscatter sessions for `per_provider` spoofed probes per
    /// hypergiant (Fig 9). Sessions interleave on one simulated telescope,
    /// so this artifact is computed serially and cached whole.
    pub fn telescope(&self, per_provider: usize) -> Arc<Vec<BackscatterSession>> {
        self.telescope.get_or_compute(per_provider, || {
            telescope_scan::collect(
                &self.world,
                telescope_scan::default_dark_prefix(),
                per_provider,
            )
        })
    }

    /// The §4.3 Meta-PoP ZMap scan (Fig 11 uses `variation` for its
    /// per-repetition certificate-bundle jitter; the headline scan is
    /// variation 0).
    pub fn meta_pop(&self, post_disclosure: bool, variation: u64) -> Arc<Vec<ZmapResult>> {
        self.zmap.get_or_compute((post_disclosure, variation), || {
            zmap::scan_pop_with_variation(
                &self.world,
                self.pop_prefix(),
                post_disclosure,
                variation,
            )
        })
    }

    /// The QScanner certificate pass and its TLS-vs-QUIC consistency
    /// report (§3.2), fetching sharded over the QUIC service list.
    pub fn qscanner(&self) -> Arc<(Vec<QuicCertObservation>, ConsistencyReport)> {
        self.qscanner.get_or_compute((), || {
            let records: Vec<&DomainRecord> = self.world.quic_services().collect();
            let observations = run_sharded(&records, self.workers, |shard| {
                qscanner::fetch_records(&self.world, shard)
            });
            qscanner::collate(observations)
        })
    }

    fn pop_prefix(&self) -> Ipv4Net {
        zmap::default_pop_prefix()
    }

    // ------------------------------------------------------ streaming --

    /// The streaming chunk size: a fixed record count, or `None` under the
    /// default adaptive claiming.
    pub fn stream_chunk(&self) -> Option<usize> {
        self.stream_chunk
    }

    /// What the pump did on the most recent streaming scan that actually
    /// ran (cached artifact hits do not touch the pump), or `None` before
    /// any streaming scan.
    pub fn pump_stats(&self) -> Option<PumpStats> {
        self.last_pump.lock().unwrap().clone()
    }

    /// Run a streaming fold and record its [`PumpStats`].
    fn pump<S, T, MS, F>(&self, make_scratch: MS, fold: F) -> S
    where
        S: Merge + Send,
        T: ScratchStats,
        MS: Fn() -> T + Sync,
        F: Fn(&[DomainRecord], &mut T) -> S + Sync,
    {
        let (shard, stats) = stream_sharded_scratch(
            &self.world,
            self.stream_chunk,
            self.workers,
            make_scratch,
            fold,
        );
        if self.metrics_enabled {
            let totals = stats.totals();
            self.metrics.chunks_claimed.add(totals.chunks_claimed);
            self.metrics.records_folded.add(totals.records_folded);
            self.metrics.fold_wall_seconds.add(totals.fold_seconds);
            self.metrics.memo_hits.add(totals.memo_hits);
            self.metrics.memo_misses.add(totals.memo_misses);
            self.metrics
                .memo_classes
                .set(totals.distinct_classes as f64);
        }
        *self.last_pump.lock().unwrap() = Some(stats);
        shard
    }

    /// The streaming quicreach scan at one Initial size under the engine's
    /// default era and profile: the whole population is pumped through the
    /// sharded workers in bounded memory and folded into one
    /// [`QuicReachShard`]. No `Vec` of per-record results is ever built on
    /// this path — the cache stores the summary itself.
    pub fn stream_quicreach(&self, initial_size: usize) -> Arc<QuicReachShard> {
        self.stream_quicreach_era(self.era, self.profile, initial_size)
    }

    /// [`ScanEngine::stream_quicreach`] under an explicit
    /// [`CertificateEra`] and [`NetworkProfile`] — cached per `(era,
    /// profile, size)`, the same axes as the materialized quicreach cache.
    /// On a populated world the streamed summary is bit-for-bit
    /// [`QuicReachShard::from_results`] of the materialized artifact, at
    /// any worker count and chunk size.
    pub fn stream_quicreach_era(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        initial_size: usize,
    ) -> Arc<QuicReachShard> {
        self.stream_quicreach_chaos(era, profile, self.fault_plan, initial_size)
    }

    /// The streaming quicreach scan under an explicit [`FaultPlan`] overlay
    /// — cached per `(era, profile, plan, size)`. A non-[`FaultPlan::NONE`]
    /// plan consumes per-probe wire randomness, so the fold bypasses
    /// scenario-class memoization regardless of the engine's memo toggle;
    /// the summary stays bit-for-bit identical at any worker count and
    /// chunk size either way.
    pub fn stream_quicreach_chaos(
        &self,
        era: CertificateEra,
        profile: NetworkProfile,
        plan: FaultPlan,
        initial_size: usize,
    ) -> Arc<QuicReachShard> {
        self.stream_quicreach.get_or_compute(
            ScenarioKey::cold(era, profile, plan, initial_size),
            || {
                let probe_metrics = self
                    .metrics_enabled
                    .then(|| ProbeMetrics::register(&self.registry, era, profile));
                let mut shard: QuicReachShard = self.pump(
                    || {
                        let mut scratch = quicreach::ProbeScratch::with_memo(self.memoize);
                        if let Some(metrics) = &probe_metrics {
                            scratch.set_metrics(metrics.clone());
                        }
                        scratch
                    },
                    |records, scratch| {
                        quicreach::fold_records_scratch_chaos(
                            &self.world,
                            records,
                            initial_size,
                            profile,
                            era,
                            plan,
                            scratch,
                        )
                    },
                );
                // An all-identity merge (empty population) never saw the
                // scan's Initial size; stamp it so the bar is labelled.
                shard.classes.initial_size = initial_size;
                shard
            },
        )
    }

    /// The streaming §3.1 HTTPS scan: funnel counters and chain-size
    /// sketches folded over the population in bounded memory. On a
    /// populated world it is bit-for-bit
    /// [`HttpsScanShard::from_report`] of [`ScanEngine::https_scan`].
    pub fn stream_https_scan(&self) -> Arc<HttpsScanShard> {
        self.stream_https.get_or_compute((), || {
            self.pump(
                || (),
                |records, _: &mut ()| https_scan::fold_iter(&self.world, records),
            )
        })
    }

    /// The streaming compression-support scan (Table 1 at scale): counts
    /// and exact byte totals per RFC 8879 algorithm, folded in bounded
    /// memory.
    pub fn stream_compression_support(&self) -> Arc<CompressionShard> {
        self.stream_compression.get_or_compute((), || {
            self.pump(
                || (),
                |records, _: &mut ()| compression::fold_iter(&self.world, records),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn engine(workers: usize) -> ScanEngine {
        let world = World::generate(WorldConfig {
            domains: 1_200,
            seed: 0xD37E,
            ..WorldConfig::default()
        });
        ScanEngine::new(world, 1362, workers)
    }

    #[test]
    fn run_sharded_matches_serial_for_any_worker_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial = run_sharded(&items, 1, |shard| {
            shard.iter().map(|i| i * 31 + 7).collect()
        });
        for workers in [2, 3, 8, 64, 1000] {
            let parallel = run_sharded(&items, workers, |shard| {
                shard.iter().map(|i| i * 31 + 7).collect()
            });
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_worker_counts() {
        let serial = engine(1);
        let reference = serial.sweep();
        for workers in [2, 8] {
            let parallel = engine(workers);
            assert_eq!(
                *reference,
                *parallel.sweep(),
                "sweep diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn per_domain_scans_are_bit_identical_across_worker_counts() {
        let serial = engine(1);
        let parallel = engine(8);
        assert_eq!(*serial.quicreach(1242), *parallel.quicreach(1242));

        let a = serial.https_scan();
        let b = parallel.https_scan();
        assert_eq!(a.resolved, b.resolved);
        assert_eq!(a.names_seen, b.names_seen);
        assert_eq!(a.observations.len(), b.observations.len());
        for (x, y) in a.observations.iter().zip(&b.observations) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.summary.total_der, y.summary.total_der);
            assert_eq!(x.summary.chain_id, y.summary.chain_id);
        }

        let sa = serial.compression_support();
        let sb = parallel.compression_support();
        for (x, y) in sa.iter().zip(sb.iter()) {
            assert_eq!(x.supported, y.supported);
            assert_eq!(x.total, y.total);
            assert_eq!(x.mean_ratio.to_bits(), y.mean_ratio.to_bits());
        }

        let ca = serial.compression_study(Algorithm::Brotli, 10);
        let cb = parallel.compression_study(Algorithm::Brotli, 10);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!((x.original, x.compressed), (y.original, y.compressed));
        }
    }

    #[test]
    fn artifacts_are_shared_allocations() {
        let engine = engine(2);
        assert!(Arc::ptr_eq(&engine.https_scan(), &engine.https_scan()));
        assert!(Arc::ptr_eq(
            &engine.quicreach_default(),
            &engine.quicreach(1362)
        ));
        assert!(Arc::ptr_eq(&engine.sweep(), &engine.sweep()));
        assert!(Arc::ptr_eq(
            &engine.compression_support(),
            &engine.compression_support()
        ));
        assert!(Arc::ptr_eq(
            &engine.compression_study(Algorithm::Zstd, 20),
            &engine.compression_study(Algorithm::Zstd, 20)
        ));
        assert!(Arc::ptr_eq(&engine.telescope(2), &engine.telescope(2)));
        assert!(Arc::ptr_eq(
            &engine.meta_pop(false, 0),
            &engine.meta_pop(false, 0)
        ));
        assert!(Arc::ptr_eq(&engine.qscanner(), &engine.qscanner()));
        // Distinct parameters are distinct artifacts.
        assert!(!Arc::ptr_eq(
            &engine.meta_pop(false, 0),
            &engine.meta_pop(true, 0)
        ));
    }

    #[test]
    fn profiled_artifacts_are_cached_per_profile_and_worker_invariant() {
        let serial = engine(1);
        let parallel = engine(8);
        for profile in [NetworkProfile::Lossy, NetworkProfile::Tunneled] {
            assert_eq!(
                *serial.quicreach_profiled(profile, 1362),
                *parallel.quicreach_profiled(profile, 1362),
                "{profile} diverged across worker counts"
            );
        }

        let engine = engine(2);
        // The default-profile request and the explicit ideal request share
        // one cache entry; other profiles are distinct artifacts.
        assert!(Arc::ptr_eq(
            &engine.quicreach(1362),
            &engine.quicreach_profiled(NetworkProfile::Ideal, 1362)
        ));
        assert!(Arc::ptr_eq(
            &engine.quicreach_profiled(NetworkProfile::Lossy, 1362),
            &engine.quicreach_profiled(NetworkProfile::Lossy, 1362)
        ));
        assert!(!Arc::ptr_eq(
            &engine.quicreach_profiled(NetworkProfile::Ideal, 1362),
            &engine.quicreach_profiled(NetworkProfile::Lossy, 1362)
        ));
    }

    #[test]
    fn era_artifacts_are_cached_per_era_and_worker_invariant() {
        let serial = engine(1);
        let parallel = engine(8);
        for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
            assert_eq!(
                *serial.quicreach_era(era, NetworkProfile::Ideal, 1362),
                *parallel.quicreach_era(era, NetworkProfile::Ideal, 1362),
                "{era} diverged across worker counts"
            );
        }

        let engine = engine(2);
        // The era-unaware request and the explicit classical request share
        // one cache entry; other eras are distinct artifacts.
        assert!(Arc::ptr_eq(
            &engine.quicreach(1362),
            &engine.quicreach_era(CertificateEra::Classical, NetworkProfile::Ideal, 1362)
        ));
        assert!(!Arc::ptr_eq(
            &engine.quicreach_era(CertificateEra::Classical, NetworkProfile::Ideal, 1362),
            &engine.quicreach_era(CertificateEra::PostQuantum, NetworkProfile::Ideal, 1362)
        ));
        assert!(Arc::ptr_eq(
            &engine.compression_study(Algorithm::Brotli, 20),
            &engine.compression_study_era(CertificateEra::Classical, Algorithm::Brotli, 20)
        ));
        assert!(!Arc::ptr_eq(
            &engine.compression_study_era(CertificateEra::Classical, Algorithm::Brotli, 20),
            &engine.compression_study_era(CertificateEra::PostQuantum, Algorithm::Brotli, 20)
        ));
        assert!(Arc::ptr_eq(
            &engine.warm_scan(1362),
            &engine.warm_scan_era(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                ResumptionPolicy::WarmAfterFirstVisit,
                1362
            )
        ));
    }

    #[test]
    fn engine_default_era_steers_era_unaware_requests() {
        let world = World::generate(WorldConfig {
            domains: 1_200,
            seed: 0xD37E,
            ..WorldConfig::default()
        });
        let pq_engine = ScanEngine::new(world, 1362, 2).with_era(CertificateEra::PostQuantum);
        assert_eq!(pq_engine.era(), CertificateEra::PostQuantum);
        // The default request is the PQ artifact…
        assert!(Arc::ptr_eq(
            &pq_engine.quicreach(1362),
            &pq_engine.quicreach_era(CertificateEra::PostQuantum, NetworkProfile::Ideal, 1362)
        ));
        // …and it matches a classical-default engine's explicit PQ request.
        let classical_engine = engine(2);
        assert_eq!(
            *pq_engine.quicreach(1362),
            *classical_engine.quicreach_era(
                CertificateEra::PostQuantum,
                NetworkProfile::Ideal,
                1362
            )
        );
    }

    #[test]
    fn chaos_artifacts_are_cached_per_plan_and_worker_invariant() {
        let serial = engine(1);
        let parallel = engine(8);
        for plan in [FaultPlan::MODERATE, FaultPlan::DUP_STORM] {
            assert_eq!(
                *serial.quicreach_chaos(
                    CertificateEra::Classical,
                    NetworkProfile::Ideal,
                    plan,
                    1362
                ),
                *parallel.quicreach_chaos(
                    CertificateEra::Classical,
                    NetworkProfile::Ideal,
                    plan,
                    1362
                ),
                "{plan} diverged across worker counts"
            );
        }

        let engine = engine(2);
        // The plan-unaware request and the explicit fault-free request
        // share one cache entry; faulted plans are distinct artifacts.
        assert!(Arc::ptr_eq(
            &engine.quicreach(1362),
            &engine.quicreach_chaos(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                FaultPlan::NONE,
                1362
            )
        ));
        assert!(!Arc::ptr_eq(
            &engine.quicreach_chaos(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                FaultPlan::NONE,
                1362
            ),
            &engine.quicreach_chaos(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                FaultPlan::HEAVY,
                1362
            )
        ));
        assert!(Arc::ptr_eq(
            &engine.warm_scan(1362),
            &engine.warm_scan_chaos(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                ResumptionPolicy::WarmAfterFirstVisit,
                FaultPlan::NONE,
                1362
            )
        ));
    }

    #[test]
    fn engine_default_fault_plan_steers_plan_unaware_requests() {
        let world = World::generate(WorldConfig {
            domains: 1_200,
            seed: 0xD37E,
            ..WorldConfig::default()
        });
        let chaos_engine = ScanEngine::new(world, 1362, 2).with_fault_plan(FaultPlan::LIGHT);
        assert_eq!(chaos_engine.fault_plan(), FaultPlan::LIGHT);
        // The plan-unaware request is the faulted artifact…
        assert!(Arc::ptr_eq(
            &chaos_engine.quicreach(1362),
            &chaos_engine.quicreach_chaos(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                FaultPlan::LIGHT,
                1362
            )
        ));
        // …and it matches a fault-free engine's explicit chaos request.
        let plain_engine = engine(2);
        assert_eq!(
            *chaos_engine.quicreach(1362),
            *plain_engine.quicreach_chaos(
                CertificateEra::Classical,
                NetworkProfile::Ideal,
                FaultPlan::LIGHT,
                1362
            )
        );
    }

    #[test]
    fn stream_chaos_matches_materialized_and_bypasses_memo() {
        let engine = engine(2);
        let plan = FaultPlan::MODERATE;
        let streamed = engine.stream_quicreach_chaos(
            CertificateEra::Classical,
            NetworkProfile::Ideal,
            plan,
            1362,
        );
        let materialized = QuicReachShard::from_results(
            1362,
            &engine.quicreach_chaos(CertificateEra::Classical, NetworkProfile::Ideal, plan, 1362),
        );
        assert_eq!(*streamed, materialized);
        // The faulted probes draw wire randomness, so the streamed fold
        // must never have consulted the scenario-class memo — even though
        // the engine's memo toggle is on and the profile is Ideal.
        let stats = engine.pump_stats().expect("stream scan recorded stats");
        let totals = stats.totals();
        assert_eq!(
            (
                totals.memo_hits,
                totals.memo_misses,
                totals.distinct_classes
            ),
            (0, 0, 0),
            "faulted plans must bypass scenario-class memoization"
        );
        // The recovery-cost counters actually surface the plan's faults.
        assert!(streamed.fault_drops > 0, "moderate plan drops datagrams");
        assert!(
            streamed.retransmissions() > 0,
            "dropped flights force retransmissions"
        );
    }

    #[test]
    fn warm_scan_is_bit_identical_across_worker_counts() {
        let serial = engine(1);
        let reference = serial.warm_scan(1362);
        for workers in [2, 8] {
            let parallel = engine(workers);
            assert_eq!(
                *reference,
                *parallel.warm_scan(1362),
                "warm scan diverged at {workers} workers"
            );
        }
        // And under a non-default (profile, policy) pair.
        let a = engine(1).warm_scan_profiled(
            NetworkProfile::Tunneled,
            ResumptionPolicy::TicketExpired,
            1362,
        );
        let b = engine(8).warm_scan_profiled(
            NetworkProfile::Tunneled,
            ResumptionPolicy::TicketExpired,
            1362,
        );
        assert_eq!(*a, *b);
    }

    #[test]
    fn warm_artifacts_are_cached_per_profile_policy_and_size() {
        let engine = engine(2);
        // The default-policy request and the explicit request share one
        // cache entry.
        assert!(Arc::ptr_eq(
            &engine.warm_scan(1362),
            &engine.warm_scan_profiled(
                NetworkProfile::Ideal,
                ResumptionPolicy::WarmAfterFirstVisit,
                1362
            )
        ));
        // Distinct policies and sizes are distinct artifacts.
        assert!(!Arc::ptr_eq(
            &engine.warm_scan_profiled(
                NetworkProfile::Ideal,
                ResumptionPolicy::WarmAfterFirstVisit,
                1362
            ),
            &engine.warm_scan_profiled(NetworkProfile::Ideal, ResumptionPolicy::ColdOnly, 1362)
        ));
        // Warm scans never touch the cold quicreach cache: the cold
        // artifact computed afterwards is built fresh and ticket-free.
        let cold = engine.quicreach(1362);
        assert!(!cold.is_empty());
    }

    #[test]
    fn streaming_summaries_match_the_materialized_artifacts() {
        let engine = engine(2);
        // quicreach: the streamed shard equals the fold of the cached
        // materialized artifact, bit for bit.
        let streamed = engine.stream_quicreach(1362);
        let materialized = QuicReachShard::from_results(1362, &engine.quicreach(1362));
        assert_eq!(*streamed, materialized);
        // https: funnel counters and chain sketches match the report.
        let shard = engine.stream_https_scan();
        let report = engine.https_scan();
        assert_eq!(*shard, HttpsScanShard::from_report(&report));
        // compression: streamed counts match the materialized probe rows.
        let records: Vec<&DomainRecord> = engine.world().quic_services().collect();
        let probes = compression::probe_records(engine.world(), &records);
        assert_eq!(
            *engine.stream_compression_support(),
            CompressionShard::from_probes(&probes)
        );
    }

    #[test]
    fn streaming_engine_never_materializes_the_population() {
        let world = World::generate(WorldConfig {
            domains: 1_200,
            seed: 0xD37E,
            ..WorldConfig::default()
        });
        let materialized = ScanEngine::new(world, 1362, 2);
        let reference = materialized.stream_quicreach(1362);

        // The streaming engine's world holds zero records before, during
        // and after the scan — the population only ever exists as chunks.
        let config = WorldConfig {
            domains: 1_200,
            seed: 0xD37E,
            ..WorldConfig::default()
        };
        let engine = ScanEngine::streaming(config, 1362, 2).with_stream_chunk(128);
        assert!(engine.world().domains().is_empty());
        let streamed = engine.stream_quicreach(1362);
        assert!(engine.world().domains().is_empty());
        assert_eq!(*streamed, *reference);
        assert!(streamed.total() > 0);
        // The https stream works on the shell too.
        let funnel = engine.stream_https_scan();
        assert!(engine.world().domains().is_empty());
        assert_eq!(funnel.total, 1_200);
    }

    #[test]
    fn streaming_artifacts_are_cached_summaries() {
        let engine = engine(2);
        assert!(Arc::ptr_eq(
            &engine.stream_quicreach(1362),
            &engine.stream_quicreach(1362)
        ));
        assert!(Arc::ptr_eq(
            &engine.stream_https_scan(),
            &engine.stream_https_scan()
        ));
        assert!(Arc::ptr_eq(
            &engine.stream_compression_support(),
            &engine.stream_compression_support()
        ));
        // Distinct axes are distinct summaries; the default-axis request
        // shares the explicit classical/ideal entry.
        assert!(Arc::ptr_eq(
            &engine.stream_quicreach(1362),
            &engine.stream_quicreach_era(CertificateEra::Classical, NetworkProfile::Ideal, 1362)
        ));
        assert!(!Arc::ptr_eq(
            &engine.stream_quicreach(1362),
            &engine.stream_quicreach(1250)
        ));
    }

    #[test]
    fn empty_population_streams_to_empty_summaries() {
        let engine = ScanEngine::streaming(
            WorldConfig {
                domains: 0,
                seed: 1,
                ..WorldConfig::default()
            },
            1362,
            2,
        );
        let reach = engine.stream_quicreach(1362);
        assert_eq!(reach.total(), 0);
        assert_eq!(reach.classes.initial_size, 1362);
        assert_eq!(engine.stream_https_scan().total, 0);
    }

    #[test]
    fn metrics_are_a_pure_side_channel_at_any_worker_count() {
        // Bit-identity with metrics on vs off, at 1, 2 and 8 workers: the
        // instrumented pump must fold exactly the summaries the bare pump
        // folds. (The full axes sweep lives in the determinism matrix.)
        let reference = engine(1).with_metrics(false).stream_quicreach(1362);
        for workers in [1, 2, 8] {
            let on = engine(workers).with_metrics(true);
            let off = engine(workers).with_metrics(false);
            assert_eq!(
                *on.stream_quicreach(1362),
                *reference,
                "metrics on diverged at {workers} workers"
            );
            assert_eq!(
                *off.stream_quicreach(1362),
                *reference,
                "metrics off diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn registry_counters_mirror_the_pump_and_cache_activity() {
        let engine = engine(2);
        let first = engine.stream_quicreach(1362);
        let again = engine.stream_quicreach(1362);
        assert!(Arc::ptr_eq(&first, &again));

        let registry = engine.metrics_registry();
        let totals = engine.pump_stats().expect("a pump ran").totals();
        let counter = |name: &str| registry.counter(name, "").get();
        assert_eq!(
            counter("quicert_engine_chunks_claimed_total"),
            totals.chunks_claimed
        );
        assert_eq!(
            counter("quicert_engine_records_folded_total"),
            totals.records_folded
        );
        assert_eq!(counter("quicert_engine_memo_hits_total"), totals.memo_hits);
        assert_eq!(
            counter("quicert_engine_memo_misses_total"),
            totals.memo_misses
        );

        // The streaming probe counters carry the scan's era × profile
        // labels and split probed records into fresh vs replayed.
        let labels = [("era", "classical"), ("profile", "ideal")];
        let issued = registry
            .labeled_counter("quicert_scan_probes_issued_total", &labels, "")
            .get();
        let replayed = registry
            .labeled_counter("quicert_scan_probes_replayed_total", &labels, "")
            .get();
        assert_eq!(issued, totals.memo_misses);
        assert_eq!(replayed, totals.memo_hits);

        // One miss then one hit on the stream-quicreach artifact cache.
        let cache = [("family", "stream-quicreach")];
        assert_eq!(
            registry
                .labeled_counter("quicert_engine_cache_misses_total", &cache, "")
                .get(),
            1
        );
        assert_eq!(
            registry
                .labeled_counter("quicert_engine_cache_hits_total", &cache, "")
                .get(),
            1
        );

        // Disabled metrics freeze the pump counters (cache counters still
        // tick — they never threatened determinism in the first place).
        let off = super::tests::engine(2).with_metrics(false);
        off.stream_quicreach(1362);
        assert_eq!(
            off.metrics_registry()
                .counter("quicert_engine_records_folded_total", "")
                .get(),
            0
        );
    }

    #[test]
    fn sweep_populates_the_per_size_cache() {
        let engine = engine(2);
        let sweep = engine.sweep();
        // The reachability sizes were already computed by the sweep.
        let at_1200 = engine.quicreach(1200);
        let at_1472 = engine.quicreach(1472);
        let bar_1200 = sweep.iter().find(|b| b.initial_size == 1200).unwrap();
        assert_eq!(bar_1200.reachable() + bar_1200.unreachable, at_1200.len());
        assert!(!at_1472.is_empty());
    }
}
