//! Amplification-potential experiments: Fig 9 (telescope), the §4.3 ZMap
//! scan, Fig 11 (Meta before/after disclosure) and Table 3 (historical
//! policies).

use std::sync::Arc;

use quicert_analysis::{mean_ci95, render_table, Cdf, Table};
use quicert_netsim::{SimDuration, Wire};
use quicert_pki::ecosystem::{ChainId, LeafParams};
use quicert_pki::Provider;
use quicert_quic::{run_spoofed_probe, LimitPolicy, ServerBehavior, ServerConfig};
use quicert_scanner::telescope_scan::BackscatterSession;
use quicert_scanner::zmap::{MetaService, ZmapResult};
use quicert_x509::KeyAlgorithm;

use crate::Campaign;

// ----------------------------------------------------------------- Fig 9 --

/// Fig 9: telescope amplification CDFs per hypergiant.
#[derive(Debug)]
pub struct Fig9 {
    /// All reconstructed sessions, shared with the campaign's artifact.
    pub sessions: Arc<Vec<BackscatterSession>>,
}

/// Collect backscatter sessions (spoofed probes against hypergiants) from
/// the campaign's cached artifact.
pub fn fig9(campaign: &Campaign, per_provider: usize) -> Fig9 {
    Fig9 {
        sessions: campaign.telescope(per_provider),
    }
}

impl Fig9 {
    /// The amplification CDF of one provider.
    pub fn cdf(&self, provider: Provider) -> Cdf {
        Cdf::new(
            self.sessions
                .iter()
                .filter(|s| s.provider == provider)
                .map(|s| s.amplification)
                .collect(),
        )
    }

    /// Render headline numbers per provider.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["provider", "sessions", "median x", "p90 x", "max x"]);
        for provider in [Provider::Cloudflare, Provider::Google, Provider::Meta] {
            let cdf = self.cdf(provider);
            t.row(&[
                format!("{provider:?}"),
                cdf.len().to_string(),
                format!("{:.1}", cdf.median()),
                format!("{:.1}", cdf.quantile(0.9)),
                format!("{:.1}", cdf.range().1),
            ]);
        }
        format!(
            "Fig 9 — telescope amplification (resends included)\n{}",
            render_table(&t)
        )
    }
}

// ------------------------------------------------------------ ZMap (§4.3) --

/// The §4.3 active scan of a Meta point-of-presence.
#[derive(Debug)]
pub struct MetaPopScan {
    /// Per-host results, shared with the campaign's artifact.
    pub results: Arc<Vec<ZmapResult>>,
}

/// Scan the Meta PoP (pre- or post-disclosure fleet) from the campaign's
/// cached artifact.
pub fn meta_pop_scan(campaign: &Campaign, post_disclosure: bool) -> MetaPopScan {
    MetaPopScan {
        results: campaign.meta_pop(post_disclosure, 0),
    }
}

impl MetaPopScan {
    /// Mean response bytes per service group.
    pub fn group_mean_bytes(&self, service: MetaService) -> f64 {
        let bytes: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.service == service)
            .map(|r| r.response_bytes as f64)
            .collect();
        quicert_analysis::mean(&bytes)
    }

    /// Render the three groups.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["group", "domains", "mean bytes", "mean x"]);
        for service in [
            MetaService::None,
            MetaService::Facebook,
            MetaService::InstagramWhatsapp,
        ] {
            let factors: Vec<f64> = self
                .results
                .iter()
                .filter(|r| r.service == service)
                .map(|r| r.amplification)
                .collect();
            t.row(&[
                format!("{service:?}"),
                service.domains().to_string(),
                format!("{:.0}", self.group_mean_bytes(service)),
                format!("{:.1}", quicert_analysis::mean(&factors)),
            ]);
        }
        format!(
            "§4.3 — Meta PoP /24 single-Initial scan\n{}",
            render_table(&t)
        )
    }
}

// ---------------------------------------------------------------- Fig 11 --

/// Fig 11: mean amplification per host octet with 95% CIs, before and
/// after the responsible disclosure.
#[derive(Debug)]
pub struct Fig11 {
    /// (octet, mean amplification, CI95 half-width) pre-disclosure.
    pub before: Vec<(u8, f64, f64)>,
    /// Same, post-disclosure.
    pub after: Vec<(u8, f64, f64)>,
}

/// Probe each PoP host `reps` times (certificate deployments vary slightly
/// per repetition, yielding the paper's confidence intervals).
pub fn fig11(campaign: &Campaign, reps: usize) -> Fig11 {
    let run = |post: bool| -> Vec<(u8, f64, f64)> {
        let mut per_octet: Vec<(u8, Vec<f64>)> = Vec::new();
        for rep in 0..reps.max(1) {
            let results = campaign.meta_pop(post, rep as u64);
            for r in results.iter() {
                if r.service == MetaService::None {
                    continue;
                }
                match per_octet.iter_mut().find(|(o, _)| *o == r.octet) {
                    Some((_, v)) => v.push(r.amplification),
                    None => per_octet.push((r.octet, vec![r.amplification])),
                }
            }
        }
        per_octet
            .into_iter()
            .map(|(octet, factors)| {
                let (mean, ci) = mean_ci95(&factors);
                (octet, mean, ci)
            })
            .collect()
    };
    Fig11 {
        before: run(false),
        after: run(true),
    }
}

impl Fig11 {
    /// Mean amplification across all served octets.
    pub fn overall_mean(values: &[(u8, f64, f64)]) -> f64 {
        let means: Vec<f64> = values.iter().map(|(_, m, _)| *m).collect();
        quicert_analysis::mean(&means)
    }

    /// Render the before/after comparison.
    pub fn render(&self) -> String {
        format!(
            "Fig 11 — Meta per-host amplification: before disclosure mean {:.1}x \
             (max {:.1}x), after disclosure mean {:.1}x (max {:.1}x)\n",
            Self::overall_mean(&self.before),
            self.before.iter().map(|(_, m, _)| *m).fold(0.0, f64::max),
            Self::overall_mean(&self.after),
            self.after.iter().map(|(_, m, _)| *m).fold(0.0, f64::max),
        )
    }
}

// --------------------------------------------------------------- Table 3 --

/// Table 3: the historical anti-amplification policies, each exercised
/// against a spoofing adversary.
#[derive(Debug)]
pub struct Table3 {
    /// (policy, observed amplification factor for a spoofed probe).
    pub rows: Vec<(LimitPolicy, f64)>,
}

/// Run the ablation: the same (well-behaved) server under each policy.
pub fn table3(campaign: &Campaign) -> Table3 {
    let world = campaign.world();
    let chain = world.ecosystem.issue(
        ChainId::LeR3X1Cross,
        &LeafParams {
            common_name: "policy-ablation.example".into(),
            extra_sans: vec![],
            key: KeyAlgorithm::Rsa2048,
            scts: 2,
            seed: 0x7AB3,
        },
    );
    let rows = LimitPolicy::HISTORY
        .iter()
        .map(|&policy| {
            let mut behavior = ServerBehavior::rfc_compliant();
            behavior.limit_policy = policy;
            // Generous retransmission budget so the *policy* is the
            // binding constraint, as in the drafts' threat model.
            behavior.max_transmissions = 6;
            let config = ServerConfig {
                behavior,
                chain: chain.clone(),
                leaf_key: KeyAlgorithm::Rsa2048,
                compression_support: vec![],
                resumption: None,
                seed: 0x7AB3,
            };
            let mut wire = Wire::ideal(SimDuration::from_millis(15));
            let out = run_spoofed_probe(
                1252,
                std::net::Ipv4Addr::new(44, 1, 1, 1),
                std::net::Ipv4Addr::new(198, 51, 100, 77),
                config,
                &mut wire,
                0x7AB3,
            );
            (policy, out.amplification())
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    /// Render the policy table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["policy", "spoofed-probe amplification"]);
        for (policy, amp) in &self.rows {
            t.row(&[policy.label().to_string(), format!("{amp:.1}x")]);
        }
        format!(
            "Table 3 — historical anti-amplification policies\n{}",
            render_table(&t)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(31).with_domains(12_000))
    }

    #[test]
    fn fig9_ordering_matches_paper() {
        let c = campaign();
        let fig = fig9(&c, 8);
        let meta = fig.cdf(Provider::Meta);
        let cf = fig.cdf(Provider::Cloudflare);
        let google = fig.cdf(Provider::Google);
        assert!(meta.range().1 > 15.0, "meta max {}", meta.range().1);
        assert!(cf.median() < 10.0);
        assert!(google.median() < 10.0);
        assert!(!fig.render().is_empty());
    }

    #[test]
    fn meta_pop_groups_match_section_4_3() {
        let c = campaign();
        let scan = meta_pop_scan(&c, false);
        assert!(scan.group_mean_bytes(MetaService::None) < 150.0);
        let fb = scan.group_mean_bytes(MetaService::Facebook);
        let ig = scan.group_mean_bytes(MetaService::InstagramWhatsapp);
        // Paper: ~7k vs ~35k.
        assert!((4_000.0..14_000.0).contains(&fb), "facebook {fb}");
        assert!(ig > 25_000.0, "instagram {ig}");
        assert!(!scan.render().is_empty());
    }

    #[test]
    fn fig11_disclosure_reduces_amplification() {
        let c = campaign();
        let fig = fig11(&c, 3);
        let before = Fig11::overall_mean(&fig.before);
        let after = Fig11::overall_mean(&fig.after);
        assert!(before > after + 3.0, "before {before} after {after}");
        // Fig 11(b): post-disclosure mean ~5x, still above the limit.
        assert!((3.0..9.5).contains(&after), "after {after}");
        assert!(fig.before.iter().all(|(_, _, ci)| *ci >= 0.0));
    }

    #[test]
    fn table3_policies_tighten_over_time() {
        let c = campaign();
        let t = table3(&c);
        assert_eq!(t.rows.len(), 4);
        let amp_of = |p: LimitPolicy| {
            t.rows
                .iter()
                .find(|(policy, _)| *policy == p)
                .map(|(_, a)| *a)
                .unwrap()
        };
        let unlimited = amp_of(LimitPolicy::Unlimited);
        let bytes3x = amp_of(LimitPolicy::ThreeTimesBytes);
        assert!(unlimited > bytes3x, "{unlimited} > {bytes3x}");
        assert!(bytes3x <= 3.0 + 1e-9, "final policy respects 3x: {bytes3x}");
        // The packet/datagram-count policies sit in between (they bound
        // packets, not bytes, so can exceed 3x in bytes).
        let pkts = amp_of(LimitPolicy::ThreePackets);
        let dgrams = amp_of(LimitPolicy::ThreeDatagrams);
        assert!(pkts <= unlimited && dgrams <= unlimited);
        assert!(!t.render().is_empty());
    }
}
