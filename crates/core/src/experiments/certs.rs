//! Certificate-corpus experiments: Figs 2b, 6, 7, 8, 14 and Table 2.

use std::collections::HashMap;

use quicert_analysis::{render_table, Cdf, Table};
use quicert_pki::ChainId;
use quicert_scanner::https_scan::HttpsObservation;
use quicert_x509::{FieldSizes, KeyAlgorithm};

use crate::Campaign;

/// The common amplification limit used as a reference line: 3 × 1357
/// (Firefox's Initial).
pub const LIMIT_3X_1357: usize = 3 * 1357;

// ---------------------------------------------------------------- Fig 2b --

/// Fig 2(b): CDFs of X.509 field sizes across the certificate corpus.
#[derive(Debug)]
pub struct Fig2b {
    /// Subject name sizes.
    pub subject: Cdf,
    /// Issuer name sizes.
    pub issuer: Cdf,
    /// SubjectPublicKeyInfo sizes.
    pub spki: Cdf,
    /// Extension block sizes.
    pub extensions: Cdf,
    /// Signature (algorithm + value) sizes.
    pub signature: Cdf,
}

/// Compute Fig 2(b) over every certificate collected by the HTTPS scan.
pub fn fig2b(campaign: &Campaign) -> Fig2b {
    let report = campaign.https_scan();
    let mut subject = Vec::new();
    let mut issuer = Vec::new();
    let mut spki = Vec::new();
    let mut extensions = Vec::new();
    let mut signature = Vec::new();
    for obs in &report.observations {
        for f in &obs.summary.cert_fields {
            subject.push(f.subject as f64);
            issuer.push(f.issuer as f64);
            spki.push(f.spki as f64);
            extensions.push(f.extensions as f64);
            signature.push(f.signature as f64);
        }
    }
    Fig2b {
        subject: Cdf::new(subject),
        issuer: Cdf::new(issuer),
        spki: Cdf::new(spki),
        extensions: Cdf::new(extensions),
        signature: Cdf::new(signature),
    }
}

impl Fig2b {
    /// Render medians per field (the figure's qualitative content:
    /// extensions ≥ signature/SPKI ≥ names).
    pub fn render(&self) -> String {
        let mut t = Table::new(&["field", "median [B]", "p90 [B]"]);
        for (name, cdf) in [
            ("subject", &self.subject),
            ("issuer", &self.issuer),
            ("spki", &self.spki),
            ("extensions", &self.extensions),
            ("signature", &self.signature),
        ] {
            t.row(&[
                name.to_string(),
                format!("{:.0}", cdf.median()),
                format!("{:.0}", cdf.quantile(0.9)),
            ]);
        }
        format!(
            "Fig 2b — X.509 field size distribution\n{}",
            render_table(&t)
        )
    }
}

// ----------------------------------------------------------------- Fig 6 --

/// Fig 6: certificate chain size distributions by QUIC support.
#[derive(Debug)]
pub struct Fig6 {
    /// Chain sizes of QUIC services.
    pub quic: Cdf,
    /// Chain sizes of HTTPS-only services.
    pub https_only: Cdf,
}

/// Compute Fig 6.
pub fn fig6(campaign: &Campaign) -> Fig6 {
    let report = campaign.https_scan();
    Fig6 {
        quic: Cdf::new(report.quic().map(|o| o.summary.total_der as f64).collect()),
        https_only: Cdf::new(
            report
                .https_only()
                .map(|o| o.summary.total_der as f64)
                .collect(),
        ),
    }
}

impl Fig6 {
    /// Share of all chains exceeding 3·1357 bytes (the paper finds 35%).
    pub fn share_over_limit(&self) -> f64 {
        let over_quic =
            (1.0 - self.quic.fraction_below(LIMIT_3X_1357 as f64)) * self.quic.len() as f64;
        let over_https = (1.0 - self.https_only.fraction_below(LIMIT_3X_1357 as f64))
            * self.https_only.len() as f64;
        (over_quic + over_https) / (self.quic.len() + self.https_only.len()).max(1) as f64
    }

    /// Render the figure's headline numbers.
    pub fn render(&self) -> String {
        format!(
            "Fig 6 — chain sizes: QUIC median {:.0} B (n={}), HTTPS-only median {:.0} B (n={}), \
             {:.1}% of all chains exceed {} B\n",
            self.quic.median(),
            self.quic.len(),
            self.https_only.median(),
            self.https_only.len(),
            self.share_over_limit() * 100.0,
            LIMIT_3X_1357,
        )
    }
}

// ----------------------------------------------------------------- Fig 7 --

/// One row of Fig 7: a parent chain with its share and sizes.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Chain label.
    pub label: &'static str,
    /// Share among the service set, in percent.
    pub share: f64,
    /// Parent chain size (sum over intermediates).
    pub parent_bytes: usize,
    /// Number of parent certificates.
    pub depth: usize,
    /// Median leaf size in the set.
    pub median_leaf: f64,
    /// Largest leaf observed.
    pub max_leaf: usize,
}

/// Fig 7: top parent chains for one service population.
#[derive(Debug)]
pub struct Fig7 {
    /// Rows sorted by share, descending (top 10).
    pub rows: Vec<Fig7Row>,
    /// Share of services covered by the top 10 (96.5% for QUIC, 72% for
    /// HTTPS-only in the paper).
    pub top10_coverage: f64,
}

/// Compute Fig 7 for QUIC (`quic = true`) or HTTPS-only services.
pub fn fig7(campaign: &Campaign, quic: bool) -> Fig7 {
    let report = campaign.https_scan();
    let observations: Vec<&HttpsObservation> = if quic {
        report.quic().collect()
    } else {
        report.https_only().collect()
    };
    // The paper excludes incorrectly ordered chains.
    let ordered: Vec<&&HttpsObservation> = observations
        .iter()
        .filter(|o| o.summary.correctly_ordered)
        .collect();
    let mut by_chain: HashMap<ChainId, Vec<&&HttpsObservation>> = HashMap::new();
    for obs in &ordered {
        by_chain.entry(obs.summary.chain_id).or_default().push(obs);
    }
    let total = ordered.len().max(1) as f64;
    let mut rows: Vec<Fig7Row> = by_chain
        .into_iter()
        .map(|(chain_id, group)| {
            let leaves: Vec<f64> = group.iter().map(|o| o.summary.leaf_der as f64).collect();
            let first = &group[0].summary;
            Fig7Row {
                label: chain_id.label(),
                share: group.len() as f64 / total * 100.0,
                parent_bytes: first.parent_der,
                depth: first.depth - 1,
                median_leaf: quicert_analysis::median(&leaves),
                max_leaf: leaves.iter().fold(0.0f64, |a, &b| a.max(b)) as usize,
            }
        })
        .collect();
    // Tie-break equal shares by label: HashMap iteration order must never
    // leak into the rendered row order (the report is bit-reproducible).
    rows.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .unwrap()
            .then_with(|| a.label.cmp(b.label))
    });
    let top10_coverage: f64 = rows.iter().take(10).map(|r| r.share).sum();
    rows.truncate(10);
    Fig7 {
        rows,
        top10_coverage,
    }
}

impl Fig7 {
    /// Render the top-10 table.
    pub fn render(&self, title: &str) -> String {
        let mut t = Table::new(&[
            "chain",
            "share %",
            "parents",
            "parent B",
            "median leaf B",
            "max leaf B",
        ]);
        for row in &self.rows {
            t.row(&[
                row.label.to_string(),
                format!("{:.2}", row.share),
                row.depth.to_string(),
                row.parent_bytes.to_string(),
                format!("{:.0}", row.median_leaf),
                row.max_leaf.to_string(),
            ]);
        }
        format!(
            "Fig 7 — {title} (top-10 cover {:.1}%)\n{}",
            self.top10_coverage,
            render_table(&t)
        )
    }
}

// ----------------------------------------------------------------- Fig 8 --

/// Mean field sizes for one (cert type, chain size class) cell of Fig 8.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// True for leaf certificates.
    pub leaf: bool,
    /// True for chains over 4000 bytes.
    pub big_chain: bool,
    /// Mean sizes per field.
    pub mean: FieldSizes,
    /// Number of certificates in the cell.
    pub count: usize,
}

/// Fig 8: mean certificate field sizes by type, for QUIC domains.
pub fn fig8(campaign: &Campaign) -> Vec<Fig8Row> {
    let report = campaign.https_scan();
    let mut cells: HashMap<(bool, bool), (FieldSizes, usize)> = HashMap::new();
    for obs in report.quic() {
        let big = obs.summary.total_der > 4000;
        for (i, f) in obs.summary.cert_fields.iter().enumerate() {
            let leaf = i == 0;
            let (acc, n) = cells.entry((leaf, big)).or_default();
            acc.subject += f.subject;
            acc.issuer += f.issuer;
            acc.spki += f.spki;
            acc.extensions += f.extensions;
            acc.signature += f.signature;
            acc.other += f.other;
            *n += 1;
        }
    }
    let mut rows: Vec<Fig8Row> = cells
        .into_iter()
        .map(|((leaf, big_chain), (sum, count))| Fig8Row {
            leaf,
            big_chain,
            mean: FieldSizes {
                subject: sum.subject / count.max(1),
                issuer: sum.issuer / count.max(1),
                spki: sum.spki / count.max(1),
                extensions: sum.extensions / count.max(1),
                signature: sum.signature / count.max(1),
                other: sum.other / count.max(1),
            },
            count,
        })
        .collect();
    rows.sort_by_key(|r| (r.big_chain, r.leaf));
    rows
}

/// Render Fig 8.
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut t = Table::new(&[
        "cell",
        "subject",
        "issuer",
        "spki",
        "extensions",
        "signature",
        "n",
    ]);
    for row in rows {
        let label = format!(
            "({}, {})",
            if row.big_chain { ">4000" } else { "<=4000" },
            if row.leaf { "leaf" } else { "non-leaf" }
        );
        t.row(&[
            label,
            row.mean.subject.to_string(),
            row.mean.issuer.to_string(),
            row.mean.spki.to_string(),
            row.mean.extensions.to_string(),
            row.mean.signature.to_string(),
            row.count.to_string(),
        ]);
    }
    format!(
        "Fig 8 — mean field sizes by certificate type [B]\n{}",
        render_table(&t)
    )
}

// --------------------------------------------------------------- Table 2 --

/// Table 2: key algorithm shares per (service set, leaf/non-leaf), in
/// percent. Computed over unique certificates, leaves being unique per
/// domain and parents deduplicated per chain position.
#[derive(Debug, Default)]
pub struct Table2 {
    /// (quic?, leaf?) → algorithm → share %.
    pub shares: HashMap<(bool, bool), HashMap<KeyAlgorithm, f64>>,
}

/// Compute Table 2.
pub fn table2(campaign: &Campaign) -> Table2 {
    let report = campaign.https_scan();
    let mut out = Table2::default();
    for quic in [true, false] {
        let observations: Vec<&HttpsObservation> = if quic {
            report.quic().collect()
        } else {
            report.https_only().collect()
        };
        // Leaves: one per service.
        let mut leaf_counts: HashMap<KeyAlgorithm, usize> = HashMap::new();
        // Parents: unique per (chain, position).
        let mut parent_unique: HashMap<(ChainId, usize), KeyAlgorithm> = HashMap::new();
        for obs in &observations {
            *leaf_counts.entry(obs.summary.cert_keys[0]).or_default() += 1;
            for (i, &key) in obs.summary.cert_keys.iter().enumerate().skip(1) {
                parent_unique.insert((obs.summary.chain_id, i), key);
            }
        }
        let leaf_total: usize = leaf_counts.values().sum();
        let leaf_shares = leaf_counts
            .into_iter()
            .map(|(k, v)| (k, v as f64 / leaf_total.max(1) as f64 * 100.0))
            .collect();
        let mut parent_counts: HashMap<KeyAlgorithm, usize> = HashMap::new();
        for key in parent_unique.values() {
            *parent_counts.entry(*key).or_default() += 1;
        }
        let parent_total: usize = parent_counts.values().sum();
        let parent_shares = parent_counts
            .into_iter()
            .map(|(k, v)| (k, v as f64 / parent_total.max(1) as f64 * 100.0))
            .collect();
        out.shares.insert((quic, true), leaf_shares);
        out.shares.insert((quic, false), parent_shares);
    }
    out
}

impl Table2 {
    /// Share for one cell (0 when absent).
    pub fn share(&self, quic: bool, leaf: bool, alg: KeyAlgorithm) -> f64 {
        self.shares
            .get(&(quic, leaf))
            .and_then(|m| m.get(&alg))
            .copied()
            .unwrap_or(0.0)
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "service / cert",
            "RSA-2048",
            "RSA-4096",
            "ECDSA-256",
            "ECDSA-384",
        ]);
        for (quic, leaf, label) in [
            (true, false, "QUIC non-leaf"),
            (true, true, "QUIC leaf"),
            (false, false, "HTTPS-only non-leaf"),
            (false, true, "HTTPS-only leaf"),
        ] {
            t.row(&[
                label.to_string(),
                format!("{:.1}%", self.share(quic, leaf, KeyAlgorithm::Rsa2048)),
                format!("{:.1}%", self.share(quic, leaf, KeyAlgorithm::Rsa4096)),
                format!("{:.1}%", self.share(quic, leaf, KeyAlgorithm::EcdsaP256)),
                format!("{:.1}%", self.share(quic, leaf, KeyAlgorithm::EcdsaP384)),
            ]);
        }
        format!("Table 2 — crypto algorithms in use\n{}", render_table(&t))
    }
}

// ---------------------------------------------------------------- Fig 14 --

/// Fig 14: SAN byte share vs leaf size for QUIC services.
#[derive(Debug)]
pub struct Fig14 {
    /// (leaf size, SAN byte share in percent) per QUIC service.
    pub points: Vec<(usize, f64)>,
}

/// Compute Fig 14.
pub fn fig14(campaign: &Campaign) -> Fig14 {
    let report = campaign.https_scan();
    Fig14 {
        points: report
            .quic()
            .map(|o| {
                let share = o.summary.leaf_san_bytes as f64 / o.summary.leaf_der.max(1) as f64;
                (o.summary.leaf_der, share * 100.0)
            })
            .collect(),
    }
}

impl Fig14 {
    /// The SAN share above which the top 1% of leaves sit (paper: 28.9%).
    pub fn top_1pct_share_threshold(&self) -> f64 {
        let shares: Vec<f64> = self.points.iter().map(|(_, s)| *s).collect();
        quicert_analysis::percentile(&shares, 99.0)
    }

    /// Share of leaves that are both SAN-heavy (top 1%) and exceed the
    /// common amplification limit (paper: ~0.1%).
    pub fn cruise_liners_over_limit(&self) -> f64 {
        let threshold = self.top_1pct_share_threshold();
        let n = self
            .points
            .iter()
            .filter(|(size, share)| *share >= threshold && *size > LIMIT_3X_1357)
            .count();
        n as f64 / self.points.len().max(1) as f64 * 100.0
    }

    /// Render the headline numbers.
    pub fn render(&self) -> String {
        let shares: Vec<f64> = self.points.iter().map(|(_, s)| *s).collect();
        format!(
            "Fig 14 — SAN byte share: median {:.1}%, top-1%% threshold {:.1}%, \
             cruise-liners over limit {:.2}%\n",
            quicert_analysis::median(&shares),
            self.top_1pct_share_threshold(),
            self.cruise_liners_over_limit(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(101).with_domains(4_000))
    }

    #[test]
    fn fig2b_field_ordering_matches_paper() {
        let c = campaign();
        let fig = fig2b(&c);
        // Fig 2b: extensions are the most space-consuming field group,
        // followed by signature and public key; names are smallest.
        assert!(fig.extensions.median() > fig.signature.median());
        assert!(fig.signature.median() >= fig.spki.median() * 0.5);
        assert!(fig.subject.median() < fig.spki.median());
        assert!(!fig.render().is_empty());
    }

    #[test]
    fn fig6_quic_chains_are_smaller() {
        let c = campaign();
        let fig = fig6(&c);
        assert!(fig.quic.median() < fig.https_only.median());
        // Paper: 35% of all chains exceed 3*1357; shape: between 15 and 55%.
        let share = fig.share_over_limit();
        assert!((0.15..0.55).contains(&share), "share {share}");
    }

    #[test]
    fn fig7_consolidation_is_stronger_for_quic() {
        let c = campaign();
        let quic = fig7(&c, true);
        let https = fig7(&c, false);
        // Paper: top-10 cover 96.5% (QUIC) vs 72% (HTTPS-only) — shape:
        // QUIC is more consolidated.
        assert!(quic.top10_coverage > https.top10_coverage);
        assert!(quic.top10_coverage > 90.0, "{}", quic.top10_coverage);
        // The dominant QUIC chain is Let's Encrypt R3.
        assert_eq!(quic.rows[0].label, "Let's Enc. R3");
        assert!(quic.rows[0].share > 40.0);
    }

    #[test]
    fn fig8_non_leaves_dominate_big_chains() {
        let c = campaign();
        let rows = fig8(&c);
        let cell = |leaf: bool, big: bool| {
            rows.iter()
                .find(|r| r.leaf == leaf && r.big_chain == big)
                .copied()
        };
        if let (Some(big_nonleaf), Some(big_leaf)) = (cell(false, true), cell(true, true)) {
            // Paper: for large chains, non-leaf spki+signature dominate.
            let nl = big_nonleaf.mean.spki + big_nonleaf.mean.signature;
            let l = big_leaf.mean.spki + big_leaf.mean.signature;
            assert!(nl > l, "non-leaf {nl} vs leaf {l}");
        }
        assert!(!render_fig8(&rows).is_empty());
    }

    #[test]
    fn table2_quic_leans_ecdsa_https_leans_rsa() {
        let c = campaign();
        let t = table2(&c);
        assert!(t.share(true, true, KeyAlgorithm::EcdsaP256) > 55.0);
        assert!(t.share(false, true, KeyAlgorithm::Rsa2048) > 65.0);
        // Each row sums to ~100.
        for (quic, leaf) in [(true, true), (true, false), (false, true), (false, false)] {
            let sum: f64 = KeyAlgorithm::ALL
                .iter()
                .map(|&a| t.share(quic, leaf, a))
                .sum();
            assert!((sum - 100.0).abs() < 1.0, "({quic},{leaf}) sums to {sum}");
        }
    }

    #[test]
    fn fig14_cruise_liners_are_rare() {
        let c = campaign();
        let fig = fig14(&c);
        assert!(!fig.points.is_empty());
        let shares: Vec<f64> = fig.points.iter().map(|(_, s)| *s).collect();
        // Most leaves spend <10% of bytes on SANs.
        assert!(quicert_analysis::median(&shares) < 12.0);
        assert!(fig.cruise_liners_over_limit() < 2.0);
    }
}
