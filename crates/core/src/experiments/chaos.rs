//! Chaos-grid experiments: the fault-injection axis swept as a grid and
//! the *cost* of loss recovery surfaced as first-class measurements.
//!
//! The paper measures handshakes on well-behaved paths; real scans cross
//! paths that drop, duplicate and corrupt datagrams. The chaos axis
//! overlays a [`FaultPlan`] on every probe wire and asks what recovery
//! costs: extra round trips over the fault-free baseline, client and
//! server retransmissions, and time spent stalled against the 3×
//! amplification budget while the server waits for address validation.
//!
//! Two views, both fed from the engine's plan-keyed artifact caches:
//!
//! * [`fault_grid`] — the [`FaultPlan::LADDER`] swept per `(era, profile)`
//!   cell on the streaming scan path, each rung compared against the
//!   fault-free rung of the same cell;
//! * [`resumption_under_faults`] — whether session resumption still pays
//!   off once the wire misbehaves, per ladder rung and
//!   [`ResumptionPolicy`].

use quicert_analysis::{render_table, Table};
use quicert_netsim::{FaultPlan, NetworkProfile};
use quicert_pki::CertificateEra;
use quicert_session::ResumptionPolicy;

use crate::experiments::resumption::{aggregate, WarmAggregate};
use crate::Campaign;

/// One cell of the chaos grid: the whole population scanned under one
/// `(plan, era, profile)` combination, with recovery cost measured against
/// the fault-free plan of the same `(era, profile)` cell.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCell {
    /// The fault overlay scanned under.
    pub plan: FaultPlan,
    /// The certificate era scanned against.
    pub era: CertificateEra,
    /// The link-condition overlay underneath the plan.
    pub profile: NetworkProfile,
    /// Services probed.
    pub probed: usize,
    /// Services reaching any class but Unreachable.
    pub reachable: usize,
    /// Mean handshake round trips.
    pub mean_rtts: f64,
    /// Mean round trips *added* by the plan over the fault-free rung of
    /// the same `(era, profile)` cell — the headline recovery cost.
    pub added_rtts: f64,
    /// Client Initial retransmissions (PTO-driven) across the population.
    pub client_retransmissions: u64,
    /// Server flight retransmissions across the population.
    pub server_retransmissions: u64,
    /// Datagrams the fault injectors dropped.
    pub fault_drops: u64,
    /// Datagrams the fault injectors delivered twice.
    pub fault_duplications: u64,
    /// Datagrams the fault injectors corrupted.
    pub fault_corruptions: u64,
    /// Total simulated time servers spent amplification-stalled, in
    /// milliseconds. Nonzero only when loss eats the client ack that
    /// would have validated the address.
    pub stall_ms_total: f64,
}

impl ChaosCell {
    /// Total retransmissions, both directions.
    pub fn retransmissions(&self) -> u64 {
        self.client_retransmissions + self.server_retransmissions
    }
}

/// The eras the default grid sweeps: the classical baseline and the
/// post-quantum era whose multi-datagram flights give loss the most
/// surface to hit.
pub const GRID_ERAS: [CertificateEra; 2] = [CertificateEra::Classical, CertificateEra::PostQuantum];

/// The profiles the default grid sweeps. Ideal keeps the plan as the only
/// fault source (clean attribution); lossy stacks the plan on a path that
/// already drops, probing how the overlays compound.
pub const GRID_PROFILES: [NetworkProfile; 2] = [NetworkProfile::Ideal, NetworkProfile::Lossy];

/// Sweep the [`FaultPlan::LADDER`] over every `(era, profile)` cell, on
/// the streaming scan path (one [`quicert_scanner::QuicReachShard`] per
/// cell, never a materialized result vector). Rows arrive grouped by
/// `(era, profile)` with the ladder in intensity order, baseline first.
pub fn fault_grid(
    campaign: &Campaign,
    eras: &[CertificateEra],
    profiles: &[NetworkProfile],
) -> Vec<ChaosCell> {
    let initial = campaign.config().default_initial;
    let engine = campaign.engine();
    let mut cells = Vec::new();
    for &era in eras {
        for &profile in profiles {
            let baseline = engine.stream_quicreach_chaos(era, profile, FaultPlan::NONE, initial);
            for plan in FaultPlan::LADDER {
                let shard = engine.stream_quicreach_chaos(era, profile, plan, initial);
                cells.push(ChaosCell {
                    plan,
                    era,
                    profile,
                    probed: shard.classes.reachable() + shard.classes.unreachable,
                    reachable: shard.classes.reachable(),
                    mean_rtts: shard.rtts.mean(),
                    added_rtts: shard.rtts.mean() - baseline.rtts.mean(),
                    client_retransmissions: shard.client_retransmissions,
                    server_retransmissions: shard.server_retransmissions,
                    fault_drops: shard.fault_drops,
                    fault_duplications: shard.fault_duplications,
                    fault_corruptions: shard.fault_corruptions,
                    stall_ms_total: shard.stall_ns_total as f64 / 1e6,
                });
            }
        }
    }
    cells
}

/// [`fault_grid`] over the default [`GRID_ERAS`] × [`GRID_PROFILES`] axes.
pub fn fault_grid_default(campaign: &Campaign) -> Vec<ChaosCell> {
    fault_grid(campaign, &GRID_ERAS, &GRID_PROFILES)
}

/// Render the chaos grid.
pub fn render_fault_grid(cells: &[ChaosCell]) -> String {
    let mut t = Table::new(&[
        "era",
        "profile",
        "plan",
        "reach",
        "mean RTTs",
        "added RTTs",
        "cli rtx",
        "srv rtx",
        "drops",
        "dups",
        "corrupt",
        "stall ms",
    ]);
    for c in cells {
        t.row(&[
            c.era.to_string(),
            c.profile.name().to_string(),
            c.plan.to_string(),
            c.reachable.to_string(),
            format!("{:.3}", c.mean_rtts),
            format!("{:+.3}", c.added_rtts),
            c.client_retransmissions.to_string(),
            c.server_retransmissions.to_string(),
            c.fault_drops.to_string(),
            c.fault_duplications.to_string(),
            c.fault_corruptions.to_string(),
            format!("{:.1}", c.stall_ms_total),
        ]);
    }
    format!(
        "Chaos grid — loss-recovery cost per fault plan (vs the fault-free rung)\n{}",
        render_table(&t)
    )
}

// -------------------------------------------- resumption under faults --

/// One row of the resumption-under-faults sweep: the cold-then-warm scan
/// with one [`FaultPlan`] overlaid on both visits.
#[derive(Debug, Clone, Copy)]
pub struct ChaosResumptionRow {
    /// The fault overlay scanned under.
    pub plan: FaultPlan,
    /// The ticket policy of the revisit.
    pub policy: ResumptionPolicy,
    /// Aggregate cold-vs-warm measurements.
    pub agg: WarmAggregate,
}

/// Sweep the ladder with working resumption on the campaign's default era
/// and the ideal profile: does the mitigation survive a misbehaving wire?
pub fn resumption_under_faults(campaign: &Campaign) -> Vec<ChaosResumptionRow> {
    let initial = campaign.config().default_initial;
    let era = campaign.config().era;
    let policy = ResumptionPolicy::WarmAfterFirstVisit;
    FaultPlan::LADDER
        .iter()
        .map(|&plan| {
            let results = campaign.engine().warm_scan_chaos(
                era,
                NetworkProfile::Ideal,
                policy,
                plan,
                initial,
            );
            ChaosResumptionRow {
                plan,
                policy,
                agg: aggregate(&results),
            }
        })
        .collect()
}

/// Render the resumption-under-faults sweep.
pub fn render_resumption_under_faults(rows: &[ChaosResumptionRow]) -> String {
    let mut t = Table::new(&[
        "plan",
        "policy",
        "reachable",
        "resumed",
        "over 3x",
        "cert B warm",
        "mean saved",
    ]);
    for row in rows {
        t.row(&[
            row.plan.to_string(),
            row.policy.name().to_string(),
            row.agg.cold_reachable.to_string(),
            row.agg.resumed.to_string(),
            row.agg.resumed_over_budget.to_string(),
            row.agg.warm_cert_bytes.to_string(),
            format!("{:.2}", row.agg.mean_rtts_saved_multi),
        ]);
    }
    format!(
        "Resumption under faults — the mitigation on a misbehaving wire\n{}",
        render_table(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(9).with_domains(1_200))
    }

    fn cell(cells: &[ChaosCell], plan: FaultPlan) -> &ChaosCell {
        cells
            .iter()
            .find(|c| {
                c.plan == plan
                    && c.era == CertificateEra::Classical
                    && c.profile == NetworkProfile::Ideal
            })
            .expect("grid holds every ladder rung")
    }

    #[test]
    fn recovery_cost_scales_with_fault_intensity() {
        let c = campaign();
        let cells = fault_grid(&c, &[CertificateEra::Classical], &[NetworkProfile::Ideal]);
        assert_eq!(cells.len(), FaultPlan::LADDER.len());

        let none = cell(&cells, FaultPlan::NONE);
        let light = cell(&cells, FaultPlan::LIGHT);
        let heavy = cell(&cells, FaultPlan::HEAVY);
        let storm = cell(&cells, FaultPlan::DUP_STORM);

        // The fault-free rung is its own baseline: zero faults, zero
        // retransmissions, zero added round trips on the ideal profile.
        assert_eq!(none.fault_drops + none.fault_duplications, 0);
        assert_eq!(none.retransmissions(), 0);
        assert_eq!(none.added_rtts, 0.0);

        // Cost rises monotonically with the ladder.
        assert!(light.fault_drops > 0, "light plan drops datagrams");
        assert!(heavy.fault_drops > light.fault_drops);
        assert!(heavy.retransmissions() > light.retransmissions());
        assert!(heavy.retransmissions() > 0);
        assert!(
            heavy.added_rtts > 0.0,
            "recovery costs round trips: {:+.3}",
            heavy.added_rtts
        );

        // The duplication storm duplicates without dropping — the
        // previously dead duplicating injector, live in the grid.
        assert!(storm.fault_duplications > 0);
        assert_eq!(storm.fault_drops, 0);
        assert_eq!(
            storm.retransmissions(),
            0,
            "duplication alone never forces a retransmission"
        );

        // Every rung probed the same population.
        for c in &cells {
            assert_eq!(c.probed, none.probed, "{} probed fewer services", c.plan);
        }
    }

    #[test]
    fn resumption_survives_the_ladder() {
        let c = campaign();
        let rows = resumption_under_faults(&c);
        assert_eq!(rows.len(), FaultPlan::LADDER.len());
        for row in &rows {
            // Resumption keeps working under every plan — but heavy loss
            // eats some tickets and warm flights, so the bar scales with
            // intensity: ≥90% on benign rungs, a clear majority even on
            // the heavy rung.
            let (num, den) = if row.plan == FaultPlan::HEAVY {
                (2, 3)
            } else {
                (9, 10)
            };
            assert!(
                row.agg.resumed * den >= row.agg.cold_reachable * num,
                "{}: {}/{} resumed",
                row.plan,
                row.agg.resumed,
                row.agg.cold_reachable
            );
            assert_eq!(row.agg.resumed_with_cert_bytes, 0, "{}", row.plan);
        }
    }

    #[test]
    fn renders_mention_every_ladder_rung() {
        let c = campaign();
        let grid = render_fault_grid(&fault_grid(
            &c,
            &[CertificateEra::Classical],
            &[NetworkProfile::Ideal],
        ));
        let resumption = render_resumption_under_faults(&resumption_under_faults(&c));
        for plan in FaultPlan::LADDER {
            assert!(grid.contains(plan.name), "grid missing {plan}");
            assert!(resumption.contains(plan.name), "resumption missing {plan}");
        }
        assert!(grid.contains("added RTTs"));
    }
}
