//! The "Ecosystem churn" experiment: the paper's headline distributions
//! re-measured along a deterministic churn timeline through the resident
//! [`CampaignService`].
//!
//! The paper scans one instant of a living ecosystem. This experiment
//! replays that ecosystem's life: certificates rotate and get revoked,
//! CA dictionaries drift, and providers migrate eras mid-campaign
//! (Chou & Cao's PQC-migration study is the motivating longitudinal
//! question). Each row is one tick's snapshot — served by a delta scan
//! that re-probed only the churned segments, bit-identical to a full
//! rescan — showing how the 1-RTT share collapses and the chain-size
//! distribution inflates as the era migration rolls through providers.

use quicert_churn::ChurnConfig;
use quicert_pki::world::Provider;
use quicert_pki::CertificateEra;
use quicert_quic::handshake::HandshakeClass;

use quicert_analysis::{render_table, Table};

use crate::service::{CampaignService, ServiceConfig, Snapshot, TickStats};
use crate::Campaign;

/// One scanned tick of the churn timeline.
#[derive(Debug, Clone)]
pub struct ChurnTickRow {
    /// The measured snapshot.
    pub snapshot: Snapshot,
    /// What the scan cost (delta-vs-full probe accounting).
    pub stats: TickStats,
}

/// The demo era-migration timeline for a campaign: sparse per-rank churn
/// every tick, Cloudflare migrating to hybrid at tick 2, Google at tick
/// 3, and Meta plus the self-hosted long tail to post-quantum at tick 5.
/// Fully derived from the campaign's world config, so the experiment is
/// deterministic per campaign.
pub fn era_migration_config(campaign: &Campaign) -> ServiceConfig {
    let world = &campaign.config().world;
    let churn = ChurnConfig::new(world.seed ^ 0x00C4_2A17, world.domains)
        .with_migration(2, Provider::Cloudflare, CertificateEra::Hybrid)
        .with_migration(3, Provider::Google, CertificateEra::Hybrid)
        .with_migration(5, Provider::Meta, CertificateEra::PostQuantum)
        .with_migration(5, Provider::SelfHosted, CertificateEra::PostQuantum);
    // Per-tick churn volume is fixed (sparse), so segments scale with the
    // population to keep non-migration ticks genuine deltas.
    ServiceConfig::new(campaign.config().clone(), churn)
        .with_segment_size((world.domains / 50).clamp(32, 1024))
}

/// Run the era-migration timeline: snapshot every tick in `0..=ticks`
/// through the delta-scan path and pair each snapshot with its scan
/// stats.
pub fn churn_timeline(campaign: &Campaign, ticks: u64) -> Vec<ChurnTickRow> {
    let mut service = CampaignService::new(era_migration_config(campaign));
    (0..=ticks)
        .map(|tick| {
            let snapshot = service.snapshot_at(tick);
            let stats = *service
                .tick_log()
                .last()
                .expect("snapshot_at always logs a scan");
            ChurnTickRow {
                snapshot: (*snapshot).clone(),
                stats,
            }
        })
        .collect()
}

/// Render the timeline: per-tick handshake-class shares, chain-size
/// quantiles, and the delta-scan probe accounting.
pub fn render_churn(rows: &[ChurnTickRow]) -> String {
    let mut t = Table::new(&[
        "tick",
        "churned",
        "1-RTT %",
        "multi %",
        "quic chain p50",
        "p90",
        "probed",
        "of full",
        "segments",
        "stek",
    ]);
    for row in rows {
        let classes = &row.snapshot.reach.classes;
        let stats = &row.stats;
        t.row(&[
            row.snapshot.tick.to_string(),
            stats.changed_ranks.to_string(),
            format!("{:.2}", classes.share_of_reachable(HandshakeClass::OneRtt)),
            format!(
                "{:.1}",
                classes.share_of_reachable(HandshakeClass::MultiRtt)
            ),
            format!("{:.0}", row.snapshot.funnel.quic_chain_der.quantile(0.5)),
            format!("{:.0}", row.snapshot.funnel.quic_chain_der.quantile(0.9)),
            stats.probed.to_string(),
            stats.full_probe_count.to_string(),
            format!("{}/{}", stats.dirty_segments, stats.total_segments),
            row.snapshot.stek_epoch.to_string(),
        ]);
    }
    format!(
        "Ecosystem churn — delta scans along an era-migration timeline \
         (each row bit-identical to a full rescan at that tick)\n{}",
        render_table(&t)
    )
}

/// Render one snapshot as a point-in-time report block (the service's
/// `report_at`).
pub fn render_snapshot(snapshot: &Snapshot) -> String {
    let classes = &snapshot.reach.classes;
    format!(
        "Snapshot at tick {} (STEK epoch {})\n\
         funnel: {} attempted, {} TLS-reachable, {} QUIC\n\
         reachable {} | 1-RTT {:.2}% | multi-RTT {:.1}% | amplification-limited {:.1}%\n\
         chain DER p50 {:.0} B, p90 {:.0} B, p99 {:.0} B",
        snapshot.tick,
        snapshot.stek_epoch,
        snapshot.funnel.total,
        snapshot.funnel.tls_reachable,
        snapshot.funnel.quic_services,
        classes.reachable(),
        classes.share_of_reachable(HandshakeClass::OneRtt),
        classes.share_of_reachable(HandshakeClass::MultiRtt),
        classes.share_of_reachable(HandshakeClass::Amplification),
        snapshot.funnel.chain_der.quantile(0.5),
        snapshot.funnel.chain_der.quantile(0.9),
        snapshot.funnel.chain_der.quantile(0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(31).with_domains(800))
    }

    #[test]
    fn timeline_rows_cover_every_tick_and_shift_the_distributions() {
        let c = campaign();
        let rows = churn_timeline(&c, 5);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].snapshot.tick, 0);
        // Tick 0 scans everything (first fold); later sparse ticks are
        // true deltas.
        assert!(rows[1].stats.probed < rows[1].stats.full_probe_count);
        // By tick 5 every provider has migrated, so the QUIC chain-size
        // distribution inflates wholesale.
        let p50_before = rows[0].snapshot.funnel.quic_chain_der.quantile(0.5);
        let p50_after = rows[5].snapshot.funnel.quic_chain_der.quantile(0.5);
        assert!(
            p50_after > p50_before * 2.0,
            "p50 {p50_before} -> {p50_after}"
        );
        // And the 1-RTT share collapses: post-quantum chains do not fit
        // the amplification budget in one flight.
        let one_rtt_before = rows[0]
            .snapshot
            .reach
            .classes
            .share_of_reachable(HandshakeClass::OneRtt);
        let one_rtt_after = rows[5]
            .snapshot
            .reach
            .classes
            .share_of_reachable(HandshakeClass::OneRtt);
        assert!(
            one_rtt_after < one_rtt_before,
            "1-RTT {one_rtt_before} -> {one_rtt_after}"
        );
    }

    #[test]
    fn renders_mention_the_key_columns() {
        let c = campaign();
        let rows = churn_timeline(&c, 2);
        let rendered = render_churn(&rows);
        assert!(rendered.contains("Ecosystem churn"));
        assert!(rendered.contains("1-RTT %"));
        assert!(rendered.contains("chain p50"));
        let snap = render_snapshot(&rows[2].snapshot);
        assert!(snap.contains("Snapshot at tick 2"));
        assert!(snap.contains("chain DER p50"));
    }
}
