//! Compression experiments: Table 1 and the §4.2 synthetic study.

use std::sync::Arc;

use quicert_analysis::{render_table, Cdf, Table};
use quicert_compress::Algorithm;
use quicert_scanner::compression::AlgorithmSupport;
use quicert_tls::browser::{all_profiles, BrowserProfile};

use crate::Campaign;

/// Table 1: browser parameters plus measured algorithm support/ratios.
#[derive(Debug)]
pub struct Table1 {
    /// Browser rows (static parameters of the tested versions).
    pub browsers: Vec<BrowserProfile>,
    /// Measured per-algorithm support and achieved ratios, shared with the
    /// campaign's artifact.
    pub support: Arc<Vec<AlgorithmSupport>>,
    /// Services supporting all three algorithms (count, total).
    pub all_three: (usize, usize),
}

/// Compute Table 1 from the campaign's cached artifacts.
pub fn table1(campaign: &Campaign) -> Table1 {
    Table1 {
        browsers: all_profiles(),
        support: campaign.compression_support(),
        all_three: campaign.all_three_support(),
    }
}

impl Table1 {
    /// Support share for one algorithm, percent.
    pub fn support_share(&self, alg: Algorithm) -> f64 {
        self.support
            .iter()
            .find(|s| s.algorithm == alg)
            .map(|s| s.share())
            .unwrap_or(0.0)
    }

    /// Mean ratio for one algorithm.
    pub fn mean_ratio(&self, alg: Algorithm) -> f64 {
        self.support
            .iter()
            .find(|s| s.algorithm == alg)
            .map(|s| s.mean_ratio)
            .unwrap_or(1.0)
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["browser", "version", "Initial [B]", "compression"]);
        for b in &self.browsers {
            t.row(&[
                b.name.to_string(),
                b.version.to_string(),
                b.initial_size
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "no QUIC".into()),
                b.compression
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join("+"),
            ]);
        }
        let mut s = format!("Table 1 — browser profiles\n{}", render_table(&t));
        let mut t2 = Table::new(&["algorithm", "service support %", "mean ratio"]);
        for sup in self.support.iter() {
            t2.row(&[
                sup.algorithm.name().to_string(),
                format!("{:.2}", sup.share()),
                format!("{:.2}", sup.mean_ratio),
            ]);
        }
        s.push_str(&render_table(&t2));
        s.push_str(&format!(
            "services supporting all three algorithms: {} of {} ({:.2}%)\n",
            self.all_three.0,
            self.all_three.1,
            self.all_three.0 as f64 / self.all_three.1.max(1) as f64 * 100.0
        ));
        s
    }
}

/// The §4.2 synthetic compression study.
#[derive(Debug)]
pub struct CompressionStudy {
    /// Ratio CDF (compressed/original) over the sampled chains.
    pub ratios: Cdf,
    /// Compressed-size CDF.
    pub compressed_sizes: Cdf,
    /// Share of compressed chains under the 3·1357 limit.
    pub under_limit: f64,
}

/// Run the study on every `stride`-th chain with the given algorithm,
/// through the campaign's cached, sharded engine path.
pub fn compression_study(
    campaign: &Campaign,
    algorithm: Algorithm,
    stride: usize,
) -> CompressionStudy {
    let results = campaign.compression_study(algorithm, stride);
    let limit = (3 * 1357) as f64;
    let under = results
        .iter()
        .filter(|r| (r.compressed as f64) <= limit)
        .count();
    CompressionStudy {
        ratios: Cdf::new(results.iter().map(|r| r.ratio()).collect()),
        compressed_sizes: Cdf::new(results.iter().map(|r| r.compressed as f64).collect()),
        under_limit: under as f64 / results.len().max(1) as f64,
    }
}

impl CompressionStudy {
    /// Render the study's headline numbers.
    pub fn render(&self) -> String {
        format!(
            "§4.2 compression study (n={}): median ratio {:.2}, \
             median compressed size {:.0} B, {:.1}% under the 3x1357 limit\n",
            self.ratios.len(),
            self.ratios.median(),
            self.compressed_sizes.median(),
            self.under_limit * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(41).with_domains(3_000))
    }

    #[test]
    fn table1_matches_paper_support_pattern() {
        let c = campaign();
        let t = table1(&c);
        // Paper: 96% brotli support; zlib/zstd 0.05% (Meta only).
        assert!(t.support_share(Algorithm::Brotli) > 90.0);
        assert!(t.support_share(Algorithm::Zlib) < 3.0);
        assert!(t.support_share(Algorithm::Zstd) < 3.0);
        let (all, total) = t.all_three;
        assert!((all as f64 / total.max(1) as f64) < 0.02);
        // Browser constants.
        assert_eq!(t.browsers[0].initial_size, Some(1357));
        assert_eq!(t.browsers[1].initial_size, Some(1250));
        assert_eq!(t.browsers[2].initial_size, None);
        assert!(!t.render().is_empty());
    }

    #[test]
    fn study_keeps_nearly_all_chains_under_limit() {
        let c = campaign();
        let study = compression_study(&c, Algorithm::Brotli, 5);
        assert!(study.ratios.len() > 100);
        // Paper: 99% under limit with a ~0.65 ratio; shape: the vast
        // majority fit, and compression is substantial.
        assert!(study.under_limit > 0.93, "under {}", study.under_limit);
        assert!(
            study.ratios.median() < 0.85,
            "ratio {}",
            study.ratios.median()
        );
        assert!(!study.render().is_empty());
    }

    #[test]
    fn zlib_and_zstd_profiles_also_compress() {
        let c = campaign();
        for alg in [Algorithm::Zlib, Algorithm::Zstd] {
            let study = compression_study(&c, alg, 20);
            assert!(
                study.ratios.median() < 0.95,
                "{alg}: {}",
                study.ratios.median()
            );
        }
    }
}
