//! The §5 discussion, as runnable experiments.
//!
//! The paper closes with guidance for implementers and an open question
//! about loss recovery. This module turns each claim into an ablation:
//!
//! * [`server_ablation`] — the "guidance for QUIC implementations" list:
//!   how coalescing, padding accounting and certificate compression each
//!   change the handshake class of the *same* deployment;
//! * [`client_mitigation`] — "can a QUIC client mitigate lack of
//!   compression?": a client that caches server flight sizes and adapts
//!   its Initial size accordingly;
//! * [`loss_study`] — "dealing efficiently with loss of messages during
//!   the connection setup seems an open challenge": handshake completion
//!   under server-side loss, with and without compression.

use quicert_analysis::{render_table, Table};
use quicert_compress::Algorithm;
use quicert_netsim::{FaultInjector, SimDuration, Wire};
use quicert_pki::ecosystem::{ChainId, LeafParams};
use quicert_quic::handshake::HandshakeClass;
use quicert_quic::{run_handshake, ClientConfig, ServerBehavior, ServerConfig};
use quicert_x509::{CertificateChain, KeyAlgorithm};

use crate::Campaign;

const SERVER_ADDR: std::net::Ipv4Addr = std::net::Ipv4Addr::new(198, 51, 100, 50);

fn study_chain(campaign: &Campaign) -> CertificateChain {
    // The paper's problem case: the default long Let's Encrypt chain with
    // an RSA leaf — too big for 3x1362 uncompressed, fits compressed.
    campaign.world().ecosystem.issue(
        ChainId::LeR3X1Cross,
        &LeafParams {
            common_name: "guidance.example".into(),
            extra_sans: vec![],
            key: KeyAlgorithm::Rsa2048,
            scts: 2,
            seed: 0x9D9D,
        },
    )
}

// ------------------------------------------------------- server ablation --

/// One ablation row: a server variant and what the scanner observes.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: &'static str,
    /// Resulting handshake class.
    pub class: HandshakeClass,
    /// First-RTT amplification factor.
    pub amplification: f64,
    /// RTTs to completion.
    pub rtts: u32,
    /// Padding bytes on the wire.
    pub padding: usize,
}

/// Run the §5 implementation-guidance ablation on one chain.
pub fn server_ablation(campaign: &Campaign) -> Vec<AblationRow> {
    let chain = study_chain(campaign);
    let variants: Vec<(&'static str, ServerBehavior, Vec<Algorithm>, Vec<Algorithm>)> = vec![
        (
            "baseline: coalescing, counted padding, no compression",
            ServerBehavior::rfc_compliant(),
            vec![],
            vec![],
        ),
        (
            "no coalescing + uncounted padding (Cloudflare-like)",
            ServerBehavior::cloudflare_like(),
            vec![],
            vec![],
        ),
        (
            "no coalescing, but padding counted",
            ServerBehavior {
                count_padding: true,
                ..ServerBehavior::cloudflare_like()
            },
            vec![],
            vec![],
        ),
        (
            "coalescing + certificate compression (all guidance applied)",
            ServerBehavior::rfc_compliant(),
            vec![Algorithm::Brotli],
            vec![Algorithm::Brotli],
        ),
    ];
    variants
        .into_iter()
        .map(|(label, behavior, server_algs, client_algs)| {
            let config = ServerConfig {
                behavior,
                chain: chain.clone(),
                leaf_key: KeyAlgorithm::Rsa2048,
                compression_support: server_algs,
                resumption: None,
                seed: 0x9D9D,
            };
            let mut client = ClientConfig::scanner(1362, SERVER_ADDR, 0x9D9D);
            client.compression = client_algs;
            let mut wire = Wire::ideal(SimDuration::from_millis(20));
            let out = run_handshake(client, config, &mut wire, 0x9D9D);
            AblationRow {
                label,
                class: out.classify(),
                amplification: out.amplification_first_flight(),
                rtts: out.rtt_count,
                padding: out.server_stats.padding_sent,
            }
        })
        .collect()
}

/// Render the ablation table.
pub fn render_server_ablation(rows: &[AblationRow]) -> String {
    let mut t = Table::new(&["server variant", "class", "ampl", "RTTs", "padding B"]);
    for row in rows {
        t.row(&[
            row.label.to_string(),
            row.class.label().to_string(),
            format!("{:.2}x", row.amplification),
            row.rtts.to_string(),
            row.padding.to_string(),
        ]);
    }
    format!(
        "§5 — implementation-guidance ablation (same chain)\n{}",
        render_table(&t)
    )
}

// ----------------------------------------------------- client mitigation --

/// Result of the client-side Initial-size-cache mitigation.
#[derive(Debug, Clone, Copy)]
pub struct ClientMitigation {
    /// Multi-RTT services at the default Initial size.
    pub multi_rtt_before: usize,
    /// Of those, how many a cache-informed client turns into 1-RTT.
    pub fixed_by_mitigation: usize,
    /// How many remain multi-RTT even at the MTU-bound Initial (their
    /// flights exceed 3×1472 — only compression can save them).
    pub unfixable: usize,
}

/// §5: a client that remembers each server's flight size from a previous
/// contact and sends an Initial of `ceil(flight/3)` (clamped to the MTU).
///
/// The "previous contact" is the campaign's cached default-size scan — the
/// artifact the report already computed — so only the adapted re-probe
/// costs new handshakes.
pub fn client_mitigation(campaign: &Campaign) -> ClientMitigation {
    let world = campaign.world();
    let first_contacts = campaign.quicreach_default();
    let mut result = ClientMitigation {
        multi_rtt_before: 0,
        fixed_by_mitigation: 0,
        unfixable: 0,
    };
    for (record, first) in world.quic_services().zip(first_contacts.iter()) {
        debug_assert_eq!(record.rank, first.rank, "scan order matches service order");
        if first.class != HandshakeClass::MultiRtt {
            continue;
        }
        result.multi_rtt_before += 1;
        // The "cache": the flight size observed during the first contact.
        let needed = first.wire_received.div_ceil(3) + 16;
        let adapted = needed.clamp(1200, 1472);
        if needed > 1472 {
            result.unfixable += 1;
            continue;
        }
        let second = quicert_scanner::quicreach::scan_service(world, record, adapted);
        if second.class == HandshakeClass::OneRtt {
            result.fixed_by_mitigation += 1;
        }
    }
    result
}

impl ClientMitigation {
    /// Share of multi-RTT handshakes the mitigation eliminates.
    pub fn fixed_share(&self) -> f64 {
        self.fixed_by_mitigation as f64 / self.multi_rtt_before.max(1) as f64
    }

    /// Render the result.
    pub fn render(&self) -> String {
        format!(
            "§5 — client Initial-size cache: {} multi-RTT services; {} ({:.1}%) \
             become 1-RTT with an adapted Initial; {} need compression (flight \
             exceeds 3x1472)\n",
            self.multi_rtt_before,
            self.fixed_by_mitigation,
            self.fixed_share() * 100.0,
            self.unfixable,
        )
    }
}

// ------------------------------------------------------------ loss study --

/// Handshake latency and robustness under server→client loss.
#[derive(Debug, Clone, Copy)]
pub struct LossStudy {
    /// Loss probability applied to the server's datagrams.
    pub loss: f64,
    /// Mean RTT rounds to completion without compression (completed trials).
    pub mean_rtts_uncompressed: f64,
    /// Mean RTT rounds to completion with brotli compression.
    pub mean_rtts_compressed: f64,
    /// Completion rate without compression.
    pub completion_uncompressed: f64,
    /// Completion rate with compression.
    pub completion_compressed: f64,
    /// Trials per configuration.
    pub trials: usize,
}

/// §5: "the limit allows at most one retransmission of the full flight,
/// given small compressed chains" — measure handshake latency under loss
/// with and without compression for the same big-chain deployment. A
/// compressed flight fits the budget with room for retransmission, so lost
/// datagrams cost fewer extra rounds.
pub fn loss_study(campaign: &Campaign, loss: f64, trials: usize) -> LossStudy {
    let chain = study_chain(campaign);
    let run = |compressed: bool, trial: usize| -> Option<u32> {
        let config = ServerConfig {
            behavior: ServerBehavior::rfc_compliant(),
            chain: chain.clone(),
            leaf_key: KeyAlgorithm::Rsa2048,
            compression_support: if compressed {
                vec![Algorithm::Brotli]
            } else {
                vec![]
            },
            resumption: None,
            seed: 0x1055 + trial as u64,
        };
        let mut client = ClientConfig::scanner(1362, SERVER_ADDR, 0x1055 + trial as u64);
        if compressed {
            client.compression = vec![Algorithm::Brotli];
        }
        let mut wire = Wire::ideal(SimDuration::from_millis(20));
        wire.fault_b_to_a = FaultInjector::dropping(loss);
        let out = run_handshake(client, config, &mut wire, 0x1055 + trial as u64);
        out.completed.then_some(out.rtt_count)
    };
    let measure = |compressed: bool| -> (f64, f64) {
        let rtts: Vec<f64> = (0..trials)
            .filter_map(|t| run(compressed, t))
            .map(|r| r as f64)
            .collect();
        (
            quicert_analysis::mean(&rtts),
            rtts.len() as f64 / trials.max(1) as f64,
        )
    };
    let (mean_rtts_uncompressed, completion_uncompressed) = measure(false);
    let (mean_rtts_compressed, completion_compressed) = measure(true);
    LossStudy {
        loss,
        mean_rtts_uncompressed,
        mean_rtts_compressed,
        completion_uncompressed,
        completion_compressed,
        trials,
    }
}

impl LossStudy {
    /// Render the result.
    pub fn render(&self) -> String {
        format!(
            "§5 — loss study ({:.0}% server-side loss, {} trials): mean \
             {:.1} RTTs uncompressed vs {:.1} RTTs compressed (completion \
             {:.0}% / {:.0}%)\n",
            self.loss * 100.0,
            self.trials,
            self.mean_rtts_uncompressed,
            self.mean_rtts_compressed,
            self.completion_uncompressed * 100.0,
            self.completion_compressed * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(51).with_domains(2_000))
    }

    #[test]
    fn ablation_reproduces_the_guidance_claims() {
        let c = campaign();
        let rows = server_ablation(&c);
        assert_eq!(rows.len(), 4);
        // Baseline: big chain, compliant server → multi-RTT.
        assert_eq!(rows[0].class, HandshakeClass::MultiRtt);
        // Cloudflare-like accounting on a big chain stays multi-RTT but
        // wastes thousands of padding bytes.
        assert!(rows[1].padding > rows[0].padding + 1500);
        // Counting padding correctly does not make the chain fit, but it
        // keeps the wire within the budget in the first RTT.
        assert!(rows[2].amplification <= 3.0 + 1e-9);
        // All guidance applied: compression turns it into 1-RTT.
        assert_eq!(
            rows[3].class,
            HandshakeClass::OneRtt,
            "ampl {}",
            rows[3].amplification
        );
        assert_eq!(rows[3].rtts, 1);
        assert!(!render_server_ablation(&rows).is_empty());
    }

    #[test]
    fn client_cache_fixes_marginal_services_only() {
        let c = campaign();
        let m = client_mitigation(&c);
        assert!(m.multi_rtt_before > 0);
        // The mitigation can only help flights under 3x1472; most of the
        // multi-RTT population (big LE-long/Google/corp chains) is beyond
        // it, which is exactly why the paper recommends compression.
        assert!(m.fixed_by_mitigation + m.unfixable <= m.multi_rtt_before);
        assert!(
            m.unfixable > 0,
            "big chains cannot be fixed by Initial sizing"
        );
        assert!(!m.render().is_empty());
    }

    #[test]
    fn compression_cuts_handshake_latency_under_loss() {
        let c = campaign();
        // Without loss: the compressed flight completes in one round, the
        // uncompressed one needs at least two.
        let clean = loss_study(&c, 0.0, 4);
        assert!((clean.mean_rtts_compressed - 1.0).abs() < 1e-9);
        assert!(clean.mean_rtts_uncompressed >= 2.0);
        // Under loss both degrade, but compression keeps the handshake
        // faster on average.
        let lossy = loss_study(&c, 0.25, 32);
        assert!(
            lossy.mean_rtts_compressed < lossy.mean_rtts_uncompressed,
            "compressed {} vs uncompressed {}",
            lossy.mean_rtts_compressed,
            lossy.mean_rtts_uncompressed
        );
        assert!(lossy.completion_compressed > 0.6);
        assert!(!lossy.render().is_empty());
    }
}
