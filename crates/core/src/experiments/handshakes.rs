//! Handshake-classification experiments: Figs 3, 4, 5, 12, 13 and the
//! §4.1 reachability analysis.

use std::sync::Arc;

use quicert_analysis::{render_table, Cdf, Table};
use quicert_netsim::NetworkProfile;
use quicert_quic::handshake::HandshakeClass;
use quicert_scanner::quicreach::{self, QuicReachResult, ScanSummary};

use crate::Campaign;

// ----------------------------------------------------------------- Fig 3 --

/// Fig 3: handshake classes per client Initial size.
#[derive(Debug)]
pub struct Fig3 {
    /// One summary per swept size (1200..=1472 step 10), shared with the
    /// campaign's sweep artifact.
    pub bars: Arc<Vec<ScanSummary>>,
}

/// Run the full sweep through the campaign's cached, sharded engine path.
pub fn fig3(campaign: &Campaign) -> Fig3 {
    Fig3 {
        bars: campaign.sweep(),
    }
}

impl Fig3 {
    /// The bar at a given Initial size.
    pub fn at(&self, initial_size: usize) -> Option<&ScanSummary> {
        self.bars.iter().find(|b| b.initial_size == initial_size)
    }

    /// Render the stacked-bar data.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "initial",
            "amplification",
            "multi-RTT",
            "RETRY",
            "1-RTT",
            "unreachable",
        ]);
        for bar in self.bars.iter() {
            t.row(&[
                bar.initial_size.to_string(),
                bar.amplification.to_string(),
                bar.multi_rtt.to_string(),
                bar.retry.to_string(),
                bar.one_rtt.to_string(),
                bar.unreachable.to_string(),
            ]);
        }
        format!(
            "Fig 3 — handshake classes vs Initial size\n{}",
            render_table(&t)
        )
    }
}

// ----------------------------------------------------------------- Fig 4 --

/// Fig 4: CDF of first-RTT amplification factors for handshakes that
/// exceed the limit (the paper's 165k amplifying services).
pub fn fig4(campaign: &Campaign) -> Cdf {
    Cdf::new(
        campaign
            .quicreach_default()
            .iter()
            .filter(|r| r.class == HandshakeClass::Amplification)
            .map(|r| r.amplification)
            .collect(),
    )
}

/// Render Fig 4 headline numbers.
pub fn render_fig4(cdf: &Cdf) -> String {
    format!(
        "Fig 4 — first-RTT amplification (amplifying handshakes, n={}): \
         min {:.2}x, median {:.2}x, p99 {:.2}x, max {:.2}x\n",
        cdf.len(),
        cdf.range().0,
        cdf.median(),
        cdf.quantile(0.99),
        cdf.range().1,
    )
}

// ----------------------------------------------------------------- Fig 5 --

/// Fig 5: per-handshake payload split for multi-RTT handshakes.
#[derive(Debug)]
pub struct Fig5 {
    /// (TLS payload bytes, total received bytes) per multi-RTT handshake,
    /// ascending by total.
    pub handshakes: Vec<(usize, usize)>,
    /// The 3× limit at the default Initial size.
    pub limit: usize,
}

/// Compute Fig 5.
pub fn fig5(campaign: &Campaign) -> Fig5 {
    let mut handshakes: Vec<(usize, usize)> = campaign
        .quicreach_default()
        .iter()
        .filter(|r| r.class == HandshakeClass::MultiRtt)
        .map(|r| (r.tls_received, r.wire_received))
        .collect();
    handshakes.sort_by_key(|(_, wire)| *wire);
    Fig5 {
        handshakes,
        limit: 3 * campaign.config().default_initial,
    }
}

impl Fig5 {
    /// Share of multi-RTT handshakes whose TLS payload alone exceeds the
    /// limit (paper: 87%).
    pub fn tls_alone_exceeds(&self) -> f64 {
        let n = self
            .handshakes
            .iter()
            .filter(|(tls, _)| *tls > self.limit)
            .count();
        n as f64 / self.handshakes.len().max(1) as f64
    }

    /// Render the headline numbers.
    pub fn render(&self) -> String {
        format!(
            "Fig 5 — multi-RTT payloads (n={}): TLS alone exceeds the {} B \
             limit in {:.1}% of handshakes\n",
            self.handshakes.len(),
            self.limit,
            self.tls_alone_exceeds() * 100.0,
        )
    }
}

// ----------------------------------------------------------- Figs 12/13 --

/// Per-rank-group service shares (Fig 12) and class shares (Fig 13).
#[derive(Debug)]
pub struct RankGroupRow {
    /// Group index (0 = most popular).
    pub group: usize,
    /// Domains in the group.
    pub domains: usize,
    /// QUIC service share, percent of domains.
    pub quic_share: f64,
    /// HTTPS-only share, percent of domains.
    pub https_only_share: f64,
    /// Handshake class shares among the group's reachable QUIC services
    /// (amplification, multi, retry, one-rtt), in percent.
    pub class_shares: [f64; 4],
}

/// Compute Figs 12 and 13 in one pass.
pub fn rank_groups(campaign: &Campaign) -> Vec<RankGroupRow> {
    let width = campaign.rank_group_width();
    let world = campaign.world();
    let results = campaign.quicreach_default();
    let group_count = world.domains().len().div_ceil(width);
    let mut rows: Vec<RankGroupRow> = (0..group_count)
        .map(|group| RankGroupRow {
            group,
            domains: 0,
            quic_share: 0.0,
            https_only_share: 0.0,
            class_shares: [0.0; 4],
        })
        .collect();
    let mut quic_counts = vec![0usize; group_count];
    let mut https_counts = vec![0usize; group_count];
    for d in world.domains() {
        let g = (d.rank - 1) / width;
        rows[g].domains += 1;
        if d.has_quic() {
            quic_counts[g] += 1;
        } else if d.has_https() {
            https_counts[g] += 1;
        }
    }
    let mut class_counts = vec![[0usize; 4]; group_count];
    let mut reachable = vec![0usize; group_count];
    for r in results.iter() {
        let g = (r.rank - 1) / width;
        let idx = match r.class {
            HandshakeClass::Amplification => 0,
            HandshakeClass::MultiRtt => 1,
            HandshakeClass::Retry => 2,
            HandshakeClass::OneRtt => 3,
            HandshakeClass::Unreachable => continue,
        };
        class_counts[g][idx] += 1;
        reachable[g] += 1;
    }
    for (g, row) in rows.iter_mut().enumerate() {
        let n = row.domains.max(1) as f64;
        row.quic_share = quic_counts[g] as f64 / n * 100.0;
        row.https_only_share = https_counts[g] as f64 / n * 100.0;
        let total = reachable[g].max(1) as f64;
        for (i, share) in row.class_shares.iter_mut().enumerate() {
            *share = class_counts[g][i] as f64 / total * 100.0;
        }
    }
    rows
}

/// Render Figs 12 and 13.
pub fn render_rank_groups(rows: &[RankGroupRow]) -> String {
    let mut t = Table::new(&[
        "group",
        "QUIC %",
        "HTTPS-only %",
        "ampl %",
        "multi %",
        "retry %",
        "1-RTT %",
    ]);
    for row in rows {
        t.row(&[
            row.group.to_string(),
            format!("{:.1}", row.quic_share),
            format!("{:.1}", row.https_only_share),
            format!("{:.2}", row.class_shares[0]),
            format!("{:.2}", row.class_shares[1]),
            format!("{:.2}", row.class_shares[2]),
            format!("{:.2}", row.class_shares[3]),
        ]);
    }
    format!("Figs 12/13 — per rank group\n{}", render_table(&t))
}

// ------------------------------------------------------ network profiles --

/// One row of the network-profile scenario matrix: the default-size scan
/// repeated under one [`NetworkProfile`].
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// The link-condition overlay scanned under.
    pub profile: NetworkProfile,
    /// Class counts at the campaign's default Initial size.
    pub summary: ScanSummary,
    /// Total datagrams the profile's fault injectors dropped across all
    /// probes (0 on the ideal profile).
    pub fault_drops: u64,
    /// Total datagrams the profile's fault injectors corrupted.
    pub fault_corruptions: u64,
}

/// Scan the QUIC population at the default Initial size under every
/// [`NetworkProfile`]. On a default (ideal-profile) campaign the ideal row
/// shares the cached default-scan artifact — same `(profile, size)` cache
/// key — so only the non-ideal profiles cost new handshakes; a campaign
/// configured with a non-ideal default profile scans its ideal row fresh.
pub fn profile_matrix(campaign: &Campaign) -> Vec<ProfileRow> {
    let initial = campaign.config().default_initial;
    NetworkProfile::ALL
        .iter()
        .map(|&profile| {
            let results = campaign.quicreach_profiled(profile, initial);
            ProfileRow {
                profile,
                summary: quicreach::summarize(initial, &results),
                fault_drops: results.iter().map(|r| r.fault_drops).sum(),
                fault_corruptions: results.iter().map(|r| r.fault_corruptions).sum(),
            }
        })
        .collect()
}

/// Render the scenario matrix: class shares among reachable services,
/// unreachability against the full population, and the per-profile fault
/// counters.
pub fn render_profile_matrix(rows: &[ProfileRow]) -> String {
    let mut t = Table::new(&[
        "profile",
        "reachable",
        "ampl %",
        "multi %",
        "retry %",
        "1-RTT %",
        "unreach %",
        "drops",
        "corrupt",
    ]);
    for row in rows {
        t.row(&[
            row.profile.name().to_string(),
            row.summary.reachable().to_string(),
            format!(
                "{:.1}",
                row.summary
                    .share_of_reachable(HandshakeClass::Amplification)
            ),
            format!(
                "{:.1}",
                row.summary.share_of_reachable(HandshakeClass::MultiRtt)
            ),
            format!(
                "{:.2}",
                row.summary.share_of_reachable(HandshakeClass::Retry)
            ),
            format!(
                "{:.2}",
                row.summary.share_of_reachable(HandshakeClass::OneRtt)
            ),
            format!(
                "{:.1}",
                row.summary.share_of_all(HandshakeClass::Unreachable)
            ),
            row.fault_drops.to_string(),
            row.fault_corruptions.to_string(),
        ]);
    }
    format!(
        "Network-profile matrix — handshake classes at the default Initial\n{}",
        render_table(&t)
    )
}

// ----------------------------------------------------- §4.1 reachability --

/// Reachability drop between the smallest and largest Initial sizes,
/// overall and for the top rank buckets.
#[derive(Debug)]
pub struct Reachability {
    /// (bucket label, reachable at 1200, reachable at 1472).
    pub buckets: Vec<(&'static str, usize, usize)>,
}

/// Compute the reachability experiment from the cached per-size artifacts
/// (free once the Fig 3 sweep has run — both sizes are sweep endpoints).
pub fn reachability(campaign: &Campaign) -> Reachability {
    let world = campaign.world();
    let small = campaign.quicreach_at(1200);
    let large = campaign.quicreach_at(1472);
    let count = |results: &[QuicReachResult], lo: usize, hi: usize| {
        results
            .iter()
            .filter(|r| r.rank >= lo && r.rank <= hi && r.class != HandshakeClass::Unreachable)
            .count()
    };
    let n = world.domains().len();
    Reachability {
        buckets: vec![
            ("top-1k", count(&small, 1, 1_000), count(&large, 1, 1_000)),
            (
                "top-10k",
                count(&small, 1, 10_000),
                count(&large, 1, 10_000),
            ),
            ("all", count(&small, 1, n), count(&large, 1, n)),
        ],
    }
}

impl Reachability {
    /// Relative drop for a bucket, in percent.
    pub fn drop_pct(&self, label: &str) -> f64 {
        self.buckets
            .iter()
            .find(|(l, _, _)| *l == label)
            .map(|(_, small, large)| {
                (*small as f64 - *large as f64) / (*small).max(1) as f64 * 100.0
            })
            .unwrap_or(0.0)
    }

    /// Render.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["bucket", "reachable @1200", "reachable @1472", "drop %"]);
        for (label, small, large) in &self.buckets {
            t.row(&[
                label.to_string(),
                small.to_string(),
                large.to_string(),
                format!("{:.1}", self.drop_pct(label)),
            ]);
        }
        format!("§4.1 — reachability vs Initial size\n{}", render_table(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(7).with_domains(2_500))
    }

    #[test]
    fn fig4_amplification_band_matches_paper() {
        let c = campaign();
        let cdf = fig4(&c);
        assert!(cdf.len() > 50);
        // Fig 4: factors sit between 3 and ~5.5.
        assert!(cdf.range().0 > 3.0);
        assert!(cdf.range().1 < 6.5, "max {}", cdf.range().1);
        assert!(!render_fig4(&cdf).is_empty());
    }

    #[test]
    fn fig5_tls_dominates_multi_rtt() {
        let c = campaign();
        let fig = fig5(&c);
        assert!(!fig.handshakes.is_empty());
        // Paper: TLS payload alone exceeds the limit in 87% of cases.
        let share = fig.tls_alone_exceeds();
        assert!(share > 0.70, "tls-exceeds share {share}");
        // And received totals always exceed the limit for multi-RTT.
        let over = fig
            .handshakes
            .iter()
            .filter(|(_, wire)| *wire > fig.limit)
            .count() as f64
            / fig.handshakes.len() as f64;
        assert!(over > 0.9, "wire-over share {over}");
    }

    #[test]
    fn rank_group_shares_are_stable() {
        let c = campaign();
        let rows = rank_groups(&c);
        assert_eq!(rows.len(), 10);
        let shares: Vec<f64> = rows.iter().map(|r| r.quic_share).collect();
        let mean = quicert_analysis::mean(&shares);
        let sd = quicert_analysis::std_dev(&shares);
        // Fig 12: ~17-21% QUIC per group with small deviation (σ=3 in the
        // paper; small worlds are noisier).
        assert!((10.0..28.0).contains(&mean), "mean {mean}");
        assert!(sd < 6.0, "sd {sd}");
        assert!(!render_rank_groups(&rows).is_empty());
    }

    #[test]
    fn profile_matrix_spans_every_profile() {
        let c = campaign();
        let rows = profile_matrix(&c);
        assert_eq!(rows.len(), NetworkProfile::ALL.len());

        let row = |p: NetworkProfile| rows.iter().find(|r| r.profile == p).unwrap();
        let ideal = row(NetworkProfile::Ideal);
        // The ideal row IS the campaign's default scan artifact.
        let default_summary =
            quicreach::summarize(c.config().default_initial, &c.quicreach_default());
        assert_eq!(ideal.summary, default_summary);
        assert_eq!(ideal.fault_drops, 0);
        assert_eq!(ideal.fault_corruptions, 0);

        // Lossy paths exercise the fault injectors and lose some services.
        let lossy = row(NetworkProfile::Lossy);
        assert!(lossy.fault_drops > 0);
        assert!(lossy.summary.unreachable >= ideal.summary.unreachable);

        // A long fat path changes delay but not reachability; its jitter
        // defeats the timing-based 1-RTT classification entirely.
        let long_fat = row(NetworkProfile::LongFat);
        assert_eq!(long_fat.summary.reachable(), ideal.summary.reachable());
        assert_eq!(long_fat.summary.one_rtt, 0);

        // Universal tunneling pushes more services over the MTU.
        let tunneled = row(NetworkProfile::Tunneled);
        assert!(tunneled.summary.unreachable >= ideal.summary.unreachable);

        let rendered = render_profile_matrix(&rows);
        for p in NetworkProfile::ALL {
            assert!(rendered.contains(p.name()), "missing row {p}");
        }
    }

    #[test]
    fn top_group_has_more_one_rtt() {
        let c = Campaign::new(CampaignConfig::small().with_seed(11).with_domains(8_000));
        let rows = rank_groups(&c);
        let top = rows[0].class_shares[3];
        let rest: Vec<f64> = rows[1..].iter().map(|r| r.class_shares[3]).collect();
        let rest_mean = quicert_analysis::mean(&rest);
        // Fig 13: 3.02% vs <1% in the paper.
        assert!(top > rest_mean, "top {top} vs rest {rest_mean}");
    }
}
