//! One module per group of paper experiments.
//!
//! | module | reproduces |
//! |---|---|
//! | [`certs`] | Fig 2b, Fig 6, Fig 7, Fig 8, Table 2, Fig 14 |
//! | [`handshakes`] | Fig 3, Fig 4, Fig 5, Fig 12, Fig 13, §4.1 reachability |
//! | [`amplification`] | Fig 9, the §4.3 ZMap scan, Fig 11, Table 3 |
//! | [`guidance`] | the §5 discussion as runnable ablations |
//! | [`compression`] | Table 1 and the §4.2 compression study |
//! | [`resumption`] | the §5 session-resumption mitigation, cold vs warm |
//! | [`pq`] | the post-quantum certificate-era axis (beyond the paper) |
//! | [`scale`] | the population-scale ladder on the streaming scan path |
//! | [`chaos`] | the fault-grid axis and its loss-recovery cost (beyond the paper) |
//! | [`churn`] | ecosystem churn over a resident campaign (beyond the paper) |

pub mod amplification;
pub mod certs;
pub mod chaos;
pub mod churn;
pub mod compression;
pub mod guidance;
pub mod handshakes;
pub mod pq;
pub mod resumption;
pub mod scale;
