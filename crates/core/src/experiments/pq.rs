//! Post-quantum certificate-era experiments: what the paper's measurements
//! look like after the PKI migrates to ML-DSA / hybrid chains.
//!
//! Three views, all fed from the engine's era-keyed artifact caches:
//!
//! * [`era_matrix`] — handshake classes per `(era, profile)` at the default
//!   Initial size, with the 1-RTT→multi-RTT shift, the added round trips
//!   and the amplification-budget violations relative to the classical era
//!   of the same profile;
//! * [`one_rtt_survivors`] — the headline population shift on the ideal
//!   profile: which 1-RTT deployments survive each era;
//! * [`compression_degradation`] — the §4.2 synthetic study per era,
//!   measuring how the brotli profile's classical certificate dictionary
//!   degrades on incompressible ML-DSA material.

use quicert_analysis::{mean, median, render_table, Table};
use quicert_compress::Algorithm;
use quicert_netsim::NetworkProfile;
use quicert_pki::CertificateEra;
use quicert_quic::handshake::HandshakeClass;
use quicert_scanner::quicreach::{self, QuicReachResult, ScanSummary};

use crate::Campaign;

/// Tolerance on the 3× amplification factor (float comparison only).
const BUDGET_EPS: f64 = 1e-9;

/// One cell of the era × profile scenario matrix.
#[derive(Debug, Clone)]
pub struct EraProfileRow {
    /// The PKI generation scanned.
    pub era: CertificateEra,
    /// The link-condition overlay scanned under.
    pub profile: NetworkProfile,
    /// Class counts at the campaign's default Initial size.
    pub summary: ScanSummary,
    /// Mean round trips to completion across reachable services.
    pub mean_rtts: f64,
    /// Completed handshakes whose first flight exceeded the 3× budget
    /// (buggy accounting survives every era; see §4.1/§4.3).
    pub budget_violations: usize,
    /// Services classified 1-RTT in the classical era of this profile but
    /// multi-RTT in this era (0 on the classical rows by construction).
    pub one_rtt_to_multi: usize,
    /// Mean round trips added relative to the classical era, over services
    /// that completed in both.
    pub mean_added_rtts: f64,
}

fn row_from(
    era: CertificateEra,
    profile: NetworkProfile,
    initial: usize,
    classical: &[QuicReachResult],
    results: &[QuicReachResult],
) -> EraProfileRow {
    debug_assert_eq!(classical.len(), results.len());
    let summary = quicreach::summarize(initial, results);
    let mut rtts = Vec::new();
    let mut added = Vec::new();
    let mut one_rtt_to_multi = 0usize;
    let mut budget_violations = 0usize;
    for (base, now) in classical.iter().zip(results) {
        debug_assert_eq!(base.rank, now.rank);
        if now.class != HandshakeClass::Unreachable {
            rtts.push(now.rtt_count as f64);
            if now.amplification > 3.0 + BUDGET_EPS {
                budget_violations += 1;
            }
        }
        if base.class == HandshakeClass::OneRtt && now.class == HandshakeClass::MultiRtt {
            one_rtt_to_multi += 1;
        }
        if base.class != HandshakeClass::Unreachable && now.class != HandshakeClass::Unreachable {
            added.push(now.rtt_count as f64 - base.rtt_count as f64);
        }
    }
    EraProfileRow {
        era,
        profile,
        summary,
        mean_rtts: mean(&rtts),
        budget_violations,
        one_rtt_to_multi,
        mean_added_rtts: mean(&added),
    }
}

/// Scan the QUIC population at the default Initial size under every
/// `(era, profile)` pair. The classical-ideal cell shares the campaign's
/// cached default-scan artifact, so a default campaign only pays for the
/// non-classical and non-ideal cells.
pub fn era_matrix(campaign: &Campaign) -> Vec<EraProfileRow> {
    let initial = campaign.config().default_initial;
    let mut rows = Vec::new();
    for &profile in NetworkProfile::ALL.iter() {
        let classical = campaign.quicreach_era(CertificateEra::Classical, profile, initial);
        for &era in CertificateEra::ALL.iter() {
            let results = campaign.quicreach_era(era, profile, initial);
            rows.push(row_from(era, profile, initial, &classical, &results));
        }
    }
    rows
}

/// Render the era × profile matrix.
pub fn render_era_matrix(rows: &[EraProfileRow]) -> String {
    let mut t = Table::new(&[
        "era",
        "profile",
        "reachable",
        "1-RTT %",
        "multi %",
        "ampl %",
        "unreach %",
        "mean RTTs",
        "+RTTs",
        "1RTT->multi",
        "over 3x",
    ]);
    for row in rows {
        t.row(&[
            row.era.name().to_string(),
            row.profile.name().to_string(),
            row.summary.reachable().to_string(),
            format!(
                "{:.2}",
                row.summary.share_of_reachable(HandshakeClass::OneRtt)
            ),
            format!(
                "{:.1}",
                row.summary.share_of_reachable(HandshakeClass::MultiRtt)
            ),
            format!(
                "{:.1}",
                row.summary
                    .share_of_reachable(HandshakeClass::Amplification)
            ),
            format!(
                "{:.1}",
                row.summary.share_of_all(HandshakeClass::Unreachable)
            ),
            format!("{:.2}", row.mean_rtts),
            format!("{:+.2}", row.mean_added_rtts),
            row.one_rtt_to_multi.to_string(),
            row.budget_violations.to_string(),
        ]);
    }
    format!(
        "Certificate-era matrix — handshake classes per era and network profile\n{}",
        render_table(&t)
    )
}

// -------------------------------------------------------- 1-RTT survivors --

/// The headline population shift: what happens to the (already rare) fast
/// handshakes when the PKI migrates.
#[derive(Debug, Clone, Copy)]
pub struct OneRttShift {
    /// The era compared against classical.
    pub era: CertificateEra,
    /// Services completing in one round trip within budget, classically.
    pub classical_one_rtt: usize,
    /// Of those, still 1-RTT in this era.
    pub survivors: usize,
    /// Of those, now multi-RTT.
    pub to_multi_rtt: usize,
    /// Of those, now amplifying (buggy accounting hides the extra bytes).
    pub to_amplification: usize,
}

/// Compute the 1-RTT survivorship per era on the ideal profile.
pub fn one_rtt_survivors(campaign: &Campaign) -> Vec<OneRttShift> {
    let initial = campaign.config().default_initial;
    let classical =
        campaign.quicreach_era(CertificateEra::Classical, NetworkProfile::Ideal, initial);
    [CertificateEra::Hybrid, CertificateEra::PostQuantum]
        .into_iter()
        .map(|era| {
            let results = campaign.quicreach_era(era, NetworkProfile::Ideal, initial);
            let mut shift = OneRttShift {
                era,
                classical_one_rtt: 0,
                survivors: 0,
                to_multi_rtt: 0,
                to_amplification: 0,
            };
            for (base, now) in classical.iter().zip(results.iter()) {
                if base.class != HandshakeClass::OneRtt {
                    continue;
                }
                shift.classical_one_rtt += 1;
                match now.class {
                    HandshakeClass::OneRtt => shift.survivors += 1,
                    HandshakeClass::MultiRtt => shift.to_multi_rtt += 1,
                    HandshakeClass::Amplification => shift.to_amplification += 1,
                    _ => {}
                }
            }
            shift
        })
        .collect()
}

/// Render the survivorship table.
pub fn render_one_rtt_survivors(shifts: &[OneRttShift]) -> String {
    let mut t = Table::new(&[
        "era",
        "classical 1-RTT",
        "still 1-RTT",
        "now multi-RTT",
        "now amplifying",
    ]);
    for s in shifts {
        t.row(&[
            s.era.name().to_string(),
            s.classical_one_rtt.to_string(),
            s.survivors.to_string(),
            s.to_multi_rtt.to_string(),
            s.to_amplification.to_string(),
        ]);
    }
    format!(
        "PQ migration — 1-RTT survivorship on the ideal profile\n{}",
        render_table(&t)
    )
}

// ------------------------------------------------- compression degradation --

/// Chains per era whose DER is n-gram-matched against the dictionary for
/// the coverage column (an O(bytes) scan per chain, so it runs on a small
/// fixed sample rather than the whole study population).
const COVERAGE_SAMPLE: usize = 16;

/// The §4.2 synthetic compression study, aggregated for one era.
#[derive(Debug, Clone, Copy)]
pub struct EraCompression {
    /// The PKI generation compressed.
    pub era: CertificateEra,
    /// Chains sampled.
    pub chains: usize,
    /// Mean original (uncompressed) chain size, bytes.
    pub mean_original: f64,
    /// Mean compressed/original ratio.
    pub mean_ratio: f64,
    /// Median ratio.
    pub median_ratio: f64,
    /// Share of compressed chains fitting the 3× budget at the campaign's
    /// default Initial, percent.
    pub under_limit_pct: f64,
    /// Mean [`quicert_compress::dict::coverage`] over the first
    /// `COVERAGE_SAMPLE` sampled chains: the share of chain bytes the
    /// brotli profile's classical certificate dictionary has n-grams for.
    /// This is *why* the ratio degrades — ML-DSA keys and signatures are
    /// material the dictionary has never seen.
    pub mean_dict_coverage: f64,
}

/// Compress the sampled chain population once per era with the brotli
/// profile (the only one shipping a certificate dictionary).
pub fn compression_degradation(campaign: &Campaign, stride: usize) -> Vec<EraCompression> {
    let limit = 3 * campaign.config().default_initial;
    let world = campaign.world();
    let sample = quicert_scanner::compression::study_sample(world, stride);
    CertificateEra::ALL
        .iter()
        .map(|&era| {
            let rows = campaign.compression_study_era(era, Algorithm::Brotli, stride);
            let ratios: Vec<f64> = rows.iter().map(|r| r.ratio()).collect();
            let originals: Vec<f64> = rows.iter().map(|r| r.original as f64).collect();
            let under = rows.iter().filter(|r| r.compressed <= limit).count();
            let coverages: Vec<f64> = sample
                .iter()
                .take(COVERAGE_SAMPLE)
                .filter_map(|record| world.https_chain_era(record, era))
                .map(|chain| quicert_compress::dict::coverage(&chain.concatenated_der()))
                .collect();
            EraCompression {
                era,
                chains: rows.len(),
                mean_original: mean(&originals),
                mean_ratio: mean(&ratios),
                median_ratio: median(&ratios),
                under_limit_pct: under as f64 / rows.len().max(1) as f64 * 100.0,
                mean_dict_coverage: mean(&coverages),
            }
        })
        .collect()
}

/// Render the per-era compression table.
pub fn render_compression_degradation(rows: &[EraCompression]) -> String {
    let mut t = Table::new(&[
        "era",
        "chains",
        "mean B",
        "mean ratio",
        "median ratio",
        "under 3x %",
        "dict cov %",
    ]);
    for row in rows {
        t.row(&[
            row.era.name().to_string(),
            row.chains.to_string(),
            format!("{:.0}", row.mean_original),
            format!("{:.3}", row.mean_ratio),
            format!("{:.3}", row.median_ratio),
            format!("{:.1}", row.under_limit_pct),
            format!("{:.1}", row.mean_dict_coverage * 100.0),
        ]);
    }
    format!(
        "PQ compression — brotli dictionary performance per era\n{}",
        render_table(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(7).with_domains(2_000))
    }

    #[test]
    fn matrix_spans_every_era_and_profile() {
        let c = campaign();
        let rows = era_matrix(&c);
        assert_eq!(
            rows.len(),
            CertificateEra::ALL.len() * NetworkProfile::ALL.len()
        );
        let cell = |era, profile| {
            rows.iter()
                .find(|r| r.era == era && r.profile == profile)
                .unwrap()
        };
        for &profile in NetworkProfile::ALL.iter() {
            let classical = cell(CertificateEra::Classical, profile);
            // The classical row is its own baseline: no shift, no delta.
            assert_eq!(classical.one_rtt_to_multi, 0, "{profile}");
            assert!(classical.mean_added_rtts.abs() < 1e-12, "{profile}");
            for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
                let row = cell(era, profile);
                // PQC chains travel at the Handshake level, so on loss-free
                // paths the era never costs reachability. Under loss the
                // much longer flights expose more drop opportunities, so a
                // small unreachability delta is expected there.
                if profile == NetworkProfile::Lossy {
                    let delta = row
                        .summary
                        .unreachable
                        .abs_diff(classical.summary.unreachable);
                    assert!(
                        delta * 20 <= classical.summary.total().max(1),
                        "{era}/{profile}: unreachable {} vs {}",
                        row.summary.unreachable,
                        classical.summary.unreachable
                    );
                } else {
                    assert_eq!(
                        row.summary.unreachable, classical.summary.unreachable,
                        "{era}/{profile}"
                    );
                }
                // …but it costs round trips.
                assert!(
                    row.mean_added_rtts > 0.3,
                    "{era}/{profile}: +{:.2} RTTs",
                    row.mean_added_rtts
                );
                // Long-fat jitter already classifies every reachable
                // handshake as multi-RTT classically (see the profile
                // matrix), so the class count can only grow on the other
                // profiles; the added-RTT assertion above carries the
                // long-fat claim.
                if profile == NetworkProfile::LongFat {
                    assert!(
                        row.summary.multi_rtt >= classical.summary.multi_rtt,
                        "{era}/{profile}"
                    );
                } else {
                    assert!(
                        row.summary.multi_rtt > classical.summary.multi_rtt,
                        "{era}/{profile}"
                    );
                }
            }
        }
    }

    #[test]
    fn classical_ideal_cell_is_the_campaign_default_artifact() {
        let c = campaign();
        let rows = era_matrix(&c);
        let ideal_classical = rows
            .iter()
            .find(|r| r.era == CertificateEra::Classical && r.profile == NetworkProfile::Ideal)
            .unwrap();
        let default_summary =
            quicreach::summarize(c.config().default_initial, &c.quicreach_default());
        assert_eq!(ideal_classical.summary, default_summary);
    }

    #[test]
    fn one_rtt_population_shifts_to_multi_rtt() {
        let c = campaign();
        let shifts = one_rtt_survivors(&c);
        assert_eq!(shifts.len(), 2);
        for s in &shifts {
            assert!(s.classical_one_rtt > 0, "{}", s.era);
            assert_eq!(
                s.survivors + s.to_multi_rtt + s.to_amplification,
                s.classical_one_rtt,
                "{}: a 1-RTT service stays reachable in every era",
                s.era
            );
            // The defining result: the (already rare) 1-RTT population all
            // but disappears once chains carry ML-DSA material.
            assert!(
                s.to_multi_rtt + s.to_amplification > s.survivors,
                "{}: {} survivors of {}",
                s.era,
                s.survivors,
                s.classical_one_rtt
            );
        }
    }

    #[test]
    fn compression_cannot_rescue_pq_chains() {
        let c = campaign();
        let rows = compression_degradation(&c, 25);
        assert_eq!(rows.len(), 3);
        let by = |era| rows.iter().find(|r| r.era == era).copied().unwrap();
        let classical = by(CertificateEra::Classical);
        let hybrid = by(CertificateEra::Hybrid);
        let pq = by(CertificateEra::PostQuantum);
        // §4.2: compression keeps nearly everything under the limit today…
        assert!(
            classical.under_limit_pct > 90.0,
            "{}",
            classical.under_limit_pct
        );
        // …but ML-DSA bytes neither compress nor fit.
        assert!(pq.mean_ratio > classical.mean_ratio + 0.15);
        assert!(hybrid.mean_ratio > classical.mean_ratio + 0.15);
        assert!(pq.under_limit_pct < 50.0, "{}", pq.under_limit_pct);
        assert!(pq.mean_original > 2.0 * classical.mean_original);
        assert!(hybrid.mean_original > pq.mean_original);
        // The mechanism: the dictionary covers a fair share of classical
        // chain bytes but almost none of the ML-DSA material.
        assert!(
            classical.mean_dict_coverage > 3.0 * pq.mean_dict_coverage,
            "dict coverage {} vs {}",
            classical.mean_dict_coverage,
            pq.mean_dict_coverage
        );
    }

    #[test]
    fn renders_mention_every_axis_value() {
        let c = campaign();
        let matrix = render_era_matrix(&era_matrix(&c));
        for era in CertificateEra::ALL {
            assert!(matrix.contains(era.name()), "missing {era}");
        }
        for profile in NetworkProfile::ALL {
            assert!(matrix.contains(profile.name()), "missing {profile}");
        }
        let survivors = render_one_rtt_survivors(&one_rtt_survivors(&c));
        assert!(survivors.contains("post-quantum"));
        let compression = render_compression_degradation(&compression_degradation(&c, 25));
        assert!(compression.contains("hybrid"));
    }
}
