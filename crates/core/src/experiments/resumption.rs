//! Session-resumption experiments: the §5 mitigation measured against the
//! cold population the rest of the report characterises.
//!
//! Three views, all fed from the engine's cached warm-scan artifacts:
//!
//! * [`resumption_matrix`] — cold vs resumed handshakes per
//!   [`NetworkProfile`], at the default Initial size;
//! * [`policy_comparison`] — the [`ResumptionPolicy`] axis on the default
//!   profile (cold-only baseline, working resumption, expired tickets);
//! * [`budget_sweep`] — resumed handshakes against the 3× amplification
//!   budget across Initial sizes (they fit by construction; this measures
//!   it).

use quicert_analysis::{render_table, Table};
use quicert_netsim::NetworkProfile;
use quicert_quic::handshake::HandshakeClass;
use quicert_scanner::quicreach::WarmScanResult;
use quicert_session::ResumptionPolicy;

use crate::Campaign;

/// Aggregate measurements of one warm-scan artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmAggregate {
    /// Services probed.
    pub total: usize,
    /// Cold visits that completed (any class but Unreachable).
    pub cold_reachable: usize,
    /// Warm visits that actually resumed (PSK accepted).
    pub resumed: usize,
    /// Resumed visits whose first flight exceeded the 3× budget. 0 on
    /// loss-free profiles — the certificate-free flight fits by
    /// construction. Under loss, buggy servers (uncharged resends, §4.3)
    /// can retransmit even the tiny resumed flight past 3× when the
    /// client's ack is dropped, so a rare nonzero tail survives there.
    pub resumed_over_budget: usize,
    /// Resumed visits with any certificate bytes on the wire (must be 0).
    pub resumed_with_cert_bytes: usize,
    /// Total certificate bytes on the wire, cold visits.
    pub cold_cert_bytes: u64,
    /// Total certificate bytes on the wire, warm visits.
    pub warm_cert_bytes: u64,
    /// Cold visits classified Multi-RTT.
    pub cold_multi_rtt: usize,
    /// Of those, warm visits that shaved at least one round trip.
    pub multi_rtt_saved_a_round: usize,
    /// Mean round trips saved across the cold Multi-RTT population.
    pub mean_rtts_saved_multi: f64,
}

/// Fold a warm-scan artifact into its aggregate.
pub fn aggregate(results: &[WarmScanResult]) -> WarmAggregate {
    let mut agg = WarmAggregate {
        total: results.len(),
        cold_reachable: 0,
        resumed: 0,
        resumed_over_budget: 0,
        resumed_with_cert_bytes: 0,
        cold_cert_bytes: 0,
        warm_cert_bytes: 0,
        cold_multi_rtt: 0,
        multi_rtt_saved_a_round: 0,
        mean_rtts_saved_multi: 0.0,
    };
    let mut saved_sum = 0i64;
    for r in results {
        if r.cold.class != HandshakeClass::Unreachable {
            agg.cold_reachable += 1;
        }
        agg.cold_cert_bytes += r.cold_cert_bytes as u64;
        agg.warm_cert_bytes += r.warm_cert_bytes as u64;
        if r.resumed {
            agg.resumed += 1;
            if r.warm_exceeds_limit {
                agg.resumed_over_budget += 1;
            }
            if r.warm_cert_bytes > 0 {
                agg.resumed_with_cert_bytes += 1;
            }
        }
        if r.cold.class == HandshakeClass::MultiRtt {
            agg.cold_multi_rtt += 1;
            saved_sum += r.rtts_saved;
            if r.rtts_saved >= 1 {
                agg.multi_rtt_saved_a_round += 1;
            }
        }
    }
    agg.mean_rtts_saved_multi = saved_sum as f64 / agg.cold_multi_rtt.max(1) as f64;
    agg
}

// ------------------------------------------------------- profile matrix --

/// One row of the resumption scenario matrix: the warm scan under one
/// [`NetworkProfile`] with working resumption.
#[derive(Debug, Clone)]
pub struct ResumptionRow {
    /// The link-condition overlay scanned under.
    pub profile: NetworkProfile,
    /// Aggregate cold-vs-warm measurements.
    pub agg: WarmAggregate,
}

/// Run the warm scan (warm-after-first-visit policy) at the default Initial
/// size under every [`NetworkProfile`].
pub fn resumption_matrix(campaign: &Campaign) -> Vec<ResumptionRow> {
    let initial = campaign.config().default_initial;
    NetworkProfile::ALL
        .iter()
        .map(|&profile| {
            let results = campaign.warm_scan_profiled(
                profile,
                ResumptionPolicy::WarmAfterFirstVisit,
                initial,
            );
            ResumptionRow {
                profile,
                agg: aggregate(&results),
            }
        })
        .collect()
}

/// Render the per-profile matrix.
pub fn render_resumption_matrix(rows: &[ResumptionRow]) -> String {
    let mut t = Table::new(&[
        "profile",
        "reachable",
        "resumed",
        "cert B cold",
        "cert B warm",
        "over 3x",
        "multi-RTT",
        "saved>=1RTT",
        "mean saved",
    ]);
    for row in rows {
        t.row(&[
            row.profile.name().to_string(),
            row.agg.cold_reachable.to_string(),
            row.agg.resumed.to_string(),
            row.agg.cold_cert_bytes.to_string(),
            row.agg.warm_cert_bytes.to_string(),
            row.agg.resumed_over_budget.to_string(),
            row.agg.cold_multi_rtt.to_string(),
            row.agg.multi_rtt_saved_a_round.to_string(),
            format!("{:.2}", row.agg.mean_rtts_saved_multi),
        ]);
    }
    format!(
        "Resumption matrix — cold vs resumed handshakes at the default Initial\n{}",
        render_table(&t)
    )
}

// -------------------------------------------------------- policy sweep --

/// One row of the policy comparison: the warm scan on the default profile
/// under one [`ResumptionPolicy`].
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The ticket policy of the revisit.
    pub policy: ResumptionPolicy,
    /// Aggregate cold-vs-warm measurements.
    pub agg: WarmAggregate,
}

/// Sweep the [`ResumptionPolicy`] axis at the default profile and Initial
/// size: the cold-only baseline pays the chain twice, the warm policy skips
/// it, and the expired policy demonstrates the deterministic fallback.
pub fn policy_comparison(campaign: &Campaign) -> Vec<PolicyRow> {
    let initial = campaign.config().default_initial;
    let profile = campaign.config().profile;
    ResumptionPolicy::ALL
        .iter()
        .map(|&policy| {
            let results = campaign.warm_scan_profiled(profile, policy, initial);
            PolicyRow {
                policy,
                agg: aggregate(&results),
            }
        })
        .collect()
}

/// Render the policy comparison.
pub fn render_policy_comparison(rows: &[PolicyRow]) -> String {
    let mut t = Table::new(&[
        "policy",
        "reachable",
        "resumed",
        "cert B warm",
        "warm bytes saved %",
    ]);
    for row in rows {
        let saved = if row.agg.cold_cert_bytes == 0 {
            0.0
        } else {
            (1.0 - row.agg.warm_cert_bytes as f64 / row.agg.cold_cert_bytes as f64) * 100.0
        };
        t.row(&[
            row.policy.name().to_string(),
            row.agg.cold_reachable.to_string(),
            row.agg.resumed.to_string(),
            row.agg.warm_cert_bytes.to_string(),
            format!("{saved:.1}"),
        ]);
    }
    format!(
        "Resumption policies — revisit cost on the default profile\n{}",
        render_table(&t)
    )
}

// -------------------------------------------------------- budget sweep --

/// Resumed handshakes vs the 3× budget at one Initial size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetPoint {
    /// Client Initial size.
    pub initial_size: usize,
    /// Resumed handshakes at this size.
    pub resumed: usize,
    /// Of those, first flights exceeding 3× (0 by construction).
    pub over_budget: usize,
}

/// The default sizes the budget sweep probes (sweep endpoints + default).
pub const BUDGET_SWEEP_SIZES: [usize; 3] = [1200, 1362, 1472];

/// Measure resumed handshakes against the amplification budget across
/// Initial sizes on the ideal profile.
pub fn budget_sweep(campaign: &Campaign, sizes: &[usize]) -> Vec<BudgetPoint> {
    sizes
        .iter()
        .map(|&initial_size| {
            let results = campaign.warm_scan_profiled(
                NetworkProfile::Ideal,
                ResumptionPolicy::WarmAfterFirstVisit,
                initial_size,
            );
            let agg = aggregate(&results);
            BudgetPoint {
                initial_size,
                resumed: agg.resumed,
                over_budget: agg.resumed_over_budget,
            }
        })
        .collect()
}

/// Render the budget sweep.
pub fn render_budget_sweep(points: &[BudgetPoint]) -> String {
    let mut t = Table::new(&["initial", "resumed", "over 3x"]);
    for p in points {
        t.row(&[
            p.initial_size.to_string(),
            p.resumed.to_string(),
            p.over_budget.to_string(),
        ]);
    }
    format!(
        "Resumed handshakes vs the 3x budget per Initial size\n{}",
        render_table(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(7).with_domains(2_000))
    }

    #[test]
    fn matrix_meets_the_acceptance_criteria_on_every_profile() {
        let c = campaign();
        for row in resumption_matrix(&c) {
            // Resumed handshakes never carry certificate bytes.
            assert_eq!(
                row.agg.resumed_with_cert_bytes, 0,
                "{}: certs on resumed wire",
                row.profile
            );
            // The certificate-free flight fits the 3x budget by
            // construction. The lossy profile is the one place the paper's
            // resend-amplification bug can still surface — a dropped client
            // ack makes buggy servers resend the (tiny) flight without
            // charging it — so over-budget cases there stay a rare tail
            // rather than an exact zero.
            if row.profile == NetworkProfile::Lossy {
                assert!(
                    row.agg.resumed_over_budget * 20 <= row.agg.resumed,
                    "{}: {}/{} resumed flights over budget",
                    row.profile,
                    row.agg.resumed_over_budget,
                    row.agg.resumed
                );
            } else {
                assert_eq!(
                    row.agg.resumed_over_budget, 0,
                    "{}: resumed flight over budget",
                    row.profile
                );
            }
            // The reachable population overwhelmingly resumes.
            assert!(
                row.agg.resumed * 10 >= row.agg.cold_reachable * 9,
                "{}: {}/{} resumed",
                row.profile,
                row.agg.resumed,
                row.agg.cold_reachable
            );
            // Warm wire sheds certificate bytes wholesale.
            assert!(row.agg.warm_cert_bytes * 10 < row.agg.cold_cert_bytes);
            // The cold multi-RTT population shaves at least one round trip.
            assert!(row.agg.cold_multi_rtt > 0, "{}", row.profile);
            match row.profile {
                // Deterministic timing: the guarantee is per-service.
                NetworkProfile::Ideal | NetworkProfile::Tunneled => {
                    assert_eq!(
                        row.agg.multi_rtt_saved_a_round, row.agg.cold_multi_rtt,
                        "{}: every multi-RTT service must save a round",
                        row.profile
                    );
                    assert!(row.agg.mean_rtts_saved_multi >= 1.0, "{}", row.profile);
                }
                // Under loss a dropped warm datagram can cost a
                // retransmission round, so the guarantee is aggregate.
                NetworkProfile::Lossy => {
                    assert!(
                        row.agg.multi_rtt_saved_a_round * 10 >= row.agg.cold_multi_rtt * 9,
                        "{}: {}/{} multi-RTT services saved a round",
                        row.profile,
                        row.agg.multi_rtt_saved_a_round,
                        row.agg.cold_multi_rtt
                    );
                    assert!(row.agg.mean_rtts_saved_multi >= 0.9, "{}", row.profile);
                }
                // Long-fat jitter collapses the timing classes (every
                // completed handshake reads as multi-RTT, see the profile
                // matrix experiment), so "multi-RTT" there includes
                // one-round services with nothing left to save. The
                // per-service claim holds on the genuinely multi-round
                // population, checked below against the raw artifact.
                NetworkProfile::LongFat => {}
            }
        }

        // Long-fat, per-service, on services that really took extra wire
        // rounds cold (rtt_count >= 3 cannot be jitter: jitter adds at most
        // one nominal round to a one-round handshake).
        let long_fat = c.warm_scan_profiled(
            NetworkProfile::LongFat,
            ResumptionPolicy::WarmAfterFirstVisit,
            c.config().default_initial,
        );
        let deep: Vec<_> = long_fat.iter().filter(|r| r.cold.rtt_count >= 3).collect();
        assert!(
            !deep.is_empty(),
            "long-fat has genuinely multi-round services"
        );
        for r in deep {
            assert!(
                r.rtts_saved >= 1,
                "long-fat rank {}: cold {} RTTs, warm {}",
                r.rank,
                r.cold.rtt_count,
                r.warm.rtt_count
            );
        }
    }

    #[test]
    fn policy_axis_separates_baseline_mitigation_and_fallback() {
        let c = campaign();
        let rows = policy_comparison(&c);
        assert_eq!(rows.len(), ResumptionPolicy::ALL.len());
        let by = |p: ResumptionPolicy| rows.iter().find(|r| r.policy == p).map(|r| r.agg).unwrap();
        let cold = by(ResumptionPolicy::ColdOnly);
        let warm = by(ResumptionPolicy::WarmAfterFirstVisit);
        let expired = by(ResumptionPolicy::TicketExpired);
        // Baseline: nothing resumes, the chain is paid again in full.
        assert_eq!(cold.resumed, 0);
        assert!(cold.warm_cert_bytes >= cold.cold_cert_bytes * 9 / 10);
        // Mitigation: everything reachable resumes, no cert bytes.
        assert!(warm.resumed * 10 >= warm.cold_reachable * 9);
        assert_eq!(warm.warm_cert_bytes, 0);
        // Expired tickets: offered but rejected — full fallback.
        assert_eq!(expired.resumed, 0);
        assert!(expired.warm_cert_bytes >= expired.cold_cert_bytes * 9 / 10);
    }

    #[test]
    fn budget_sweep_never_exceeds_three_x() {
        let c = campaign();
        let points = budget_sweep(&c, &BUDGET_SWEEP_SIZES);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.resumed > 0, "size {}", p.initial_size);
            assert_eq!(p.over_budget, 0, "size {}", p.initial_size);
        }
        assert!(!render_budget_sweep(&points).is_empty());
    }

    #[test]
    fn renders_mention_every_axis_value() {
        let c = campaign();
        let matrix = render_resumption_matrix(&resumption_matrix(&c));
        for p in NetworkProfile::ALL {
            assert!(matrix.contains(p.name()), "missing {p}");
        }
        let policies = render_policy_comparison(&policy_comparison(&c));
        for p in ResumptionPolicy::ALL {
            assert!(policies.contains(p.name()), "missing {p}");
        }
    }
}
