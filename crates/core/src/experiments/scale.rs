//! The "Population scale" experiment: the paper's headline measurements
//! recomputed at growing population sizes through the streaming scan path.
//!
//! The paper scans ~1M domains; the materialized engine tops out far
//! earlier because every layer holds per-record vectors. Each row here
//! builds a [`quicert_pki::World::streaming`] population of the requested size — never
//! materialized — and pumps it through [`ScanEngine::stream_https_scan`]
//! and [`ScanEngine::stream_quicreach`], so memory stays bounded by
//! `chunk × workers` records while the summaries (funnel counters,
//! handshake-class shares, chain-size quantile sketches) are bit-for-bit
//! what a materialized scan of the same population would produce.

use quicert_pki::WorldConfig;
use quicert_scanner::https_scan::HttpsScanShard;
use quicert_scanner::quicreach::QuicReachShard;

use quicert_analysis::{render_table, Table};
use quicert_quic::handshake::HandshakeClass;

use crate::engine::ScanEngine;
use crate::Campaign;

/// The paper-scale population ladder: the full report and the
/// `examples/at_scale` tour measure at these absolute sizes.
pub const PAPER_SCALE_SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// One population size's streamed measurements.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Domains in this population.
    pub population: usize,
    /// Streamed §3.1 funnel and chain-size summary.
    pub funnel: HttpsScanShard,
    /// Streamed quicreach summary at the campaign's default Initial size.
    pub reach: QuicReachShard,
}

/// Resolve a requested size ladder: `0` entries derive from the campaign's
/// own world size as `[n/2, n, 5n]`, so tests and small reports scale
/// their ladder down while explicit requests (the `repro` harness passes
/// [`PAPER_SCALE_SIZES`]) measure the absolute populations.
pub fn resolve_sizes(requested: [usize; 3], world_domains: usize) -> [usize; 3] {
    let n = world_domains.max(2);
    let derived = [n / 2, n, 5 * n];
    let mut sizes = [0usize; 3];
    for (i, (&req, der)) in requested.iter().zip(derived).enumerate() {
        sizes[i] = if req == 0 { der } else { req };
    }
    sizes
}

/// Stream one population size with a campaign's scan parameters (same
/// seed, population model, Initial size, workers and chunk size — only
/// the domain count varies).
pub fn scale_row(campaign: &Campaign, population: usize) -> ScaleRow {
    let config = WorldConfig {
        domains: population,
        ..campaign.config().world.clone()
    };
    let engine = ScanEngine::streaming(
        config,
        campaign.config().default_initial,
        campaign.config().workers,
    )
    .with_stream_chunk(campaign.config().stream_chunk)
    .with_profile(campaign.config().profile)
    .with_era(campaign.config().era);
    ScaleRow {
        population,
        funnel: (*engine.stream_https_scan()).clone(),
        reach: (*engine.stream_quicreach(campaign.config().default_initial)).clone(),
    }
}

/// The population-scale ladder (one streamed row per size).
pub fn population_scale(campaign: &Campaign, sizes: &[usize]) -> Vec<ScaleRow> {
    sizes.iter().map(|&n| scale_row(campaign, n)).collect()
}

/// Render the ladder: adoption funnel, handshake-class shares among
/// reachable services, and chain-size quantiles from the streaming
/// sketches (64-byte quantile error bound).
pub fn render_population_scale(rows: &[ScaleRow]) -> String {
    let mut t = Table::new(&[
        "population",
        "TLS",
        "QUIC",
        "reachable",
        "ampl %",
        "multi %",
        "1-RTT %",
        "unreach %",
        "chain p50",
        "p90",
        "p99",
    ]);
    for row in rows {
        let classes = &row.reach.classes;
        t.row(&[
            row.population.to_string(),
            row.funnel.tls_reachable.to_string(),
            row.funnel.quic_services.to_string(),
            classes.reachable().to_string(),
            format!(
                "{:.1}",
                classes.share_of_reachable(HandshakeClass::Amplification)
            ),
            format!(
                "{:.1}",
                classes.share_of_reachable(HandshakeClass::MultiRtt)
            ),
            format!("{:.2}", classes.share_of_reachable(HandshakeClass::OneRtt)),
            format!("{:.1}", classes.share_of_all(HandshakeClass::Unreachable)),
            format!("{:.0}", row.funnel.chain_der.quantile(0.5)),
            format!("{:.0}", row.funnel.chain_der.quantile(0.9)),
            format!("{:.0}", row.funnel.chain_der.quantile(0.99)),
        ]);
    }
    format!(
        "Population scale — streamed scans in bounded memory \
         (summaries only, no per-record artifacts)\n{}",
        render_table(&t)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;
    use quicert_scanner::quicreach;

    fn campaign() -> Campaign {
        Campaign::new(CampaignConfig::small().with_seed(13).with_domains(1_000))
    }

    #[test]
    fn sizes_resolve_relative_or_absolute() {
        assert_eq!(resolve_sizes([0, 0, 0], 1_000), [500, 1_000, 5_000]);
        assert_eq!(
            resolve_sizes([10_000, 0, 1_000_000], 1_000),
            [10_000, 1_000, 1_000_000]
        );
    }

    #[test]
    fn scale_rows_stream_without_materializing() {
        let c = campaign();
        let rows = population_scale(&c, &[400, 1_000]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.funnel.total == row.population as u64);
            assert!(row.funnel.quic_services > 0);
            assert_eq!(row.reach.total() as u64, row.funnel.quic_services);
            // Chain-size quantiles are populated and ordered.
            let (p50, p99) = (
                row.funnel.chain_der.quantile(0.5),
                row.funnel.chain_der.quantile(0.99),
            );
            assert!(p50 > 500.0, "p50 {p50}");
            assert!(p99 >= p50);
        }
        // More population, more services.
        assert!(rows[1].funnel.quic_services > rows[0].funnel.quic_services);
        let rendered = render_population_scale(&rows);
        assert!(rendered.contains("Population scale"));
        assert!(rendered.contains("400"));
    }

    #[test]
    fn scale_row_at_the_campaign_size_matches_the_materialized_scan() {
        // The ladder row whose population equals the campaign's own world
        // must agree exactly with the campaign's cached materialized
        // artifacts — same seed, same records, different memory model.
        let c = campaign();
        let row = scale_row(&c, 1_000);
        let materialized = quicreach::summarize(c.config().default_initial, &c.quicreach_default());
        assert_eq!(row.reach.classes, materialized);
        let report = c.https_scan();
        assert_eq!(row.funnel.tls_reachable as usize, report.observations.len());
        assert_eq!(row.funnel.resolved as usize, report.resolved);
    }
}
