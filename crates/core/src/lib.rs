//! # quicert-core — campaign orchestration
//!
//! Ties the whole workspace together: generate a world, run the scanners,
//! and produce every table and figure of the paper as a typed result with a
//! plain-text rendering. The per-experiment index lives in `DESIGN.md`;
//! paper-vs-measured values are recorded in `EXPERIMENTS.md`.
//!
//! ```no_run
//! use quicert_core::{Campaign, CampaignConfig};
//!
//! let campaign = Campaign::new(CampaignConfig::small());
//! let fig3 = quicert_core::experiments::handshakes::fig3(&campaign);
//! println!("{}", fig3.render());
//! ```

pub mod campaign;
pub mod engine;
pub mod experiments;
pub mod report;
pub mod service;

pub use campaign::{Campaign, CampaignConfig};
pub use engine::{PumpStats, ScanEngine, ScenarioKey, WorkerPumpStats};
pub use report::{full_report, ReportOptions};
pub use service::{CampaignService, ServiceConfig, TickStats};
