//! The full campaign report: every table and figure rendered to text.

use quicert_compress::Algorithm;

use crate::experiments::{
    amplification, certs, chaos, churn, compression, guidance, handshakes, pq, resumption, scale,
};
use crate::Campaign;

/// Tunables for the full report (how much work the expensive experiments
/// do; the defaults scale with the world size).
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// Spoofed probes per hypergiant for Fig 9.
    pub telescope_per_provider: usize,
    /// Repetitions for Fig 11 confidence intervals.
    pub fig11_reps: usize,
    /// Sampling stride for the compression study.
    pub compression_stride: usize,
    /// Include the full Fig 3 sweep (29 sizes × all services) instead of
    /// just the default-size bar.
    pub full_sweep: bool,
    /// Include the §5 client-mitigation and loss experiments (they re-probe
    /// the multi-RTT population).
    pub guidance_mitigation: bool,
    /// Include the network-profile scenario matrix (it re-scans the QUIC
    /// population once per non-ideal [`quicert_netsim::NetworkProfile`]).
    pub network_profiles: bool,
    /// Include the session-resumption section (cold-vs-warm scans per
    /// network profile, the policy axis, and the budget sweep — each warm
    /// scan probes every service twice).
    pub resumption: bool,
    /// Include the post-quantum certificate-era section (it re-scans the
    /// QUIC population once per `(era, profile)` cell and compresses the
    /// sampled chain population once per era).
    pub pq_eras: bool,
    /// Include the population-scale section: the headline measurements
    /// recomputed at growing population sizes through the streaming
    /// (bounded-memory) scan path.
    pub population_scale: bool,
    /// Include the chaos fault-grid section: the [`quicert_netsim::FaultPlan`]
    /// ladder swept per `(era, profile)` cell with its loss-recovery cost
    /// (added round trips, retransmissions, amplification stalls), plus
    /// session resumption re-measured under every rung. Each grid cell
    /// re-scans the QUIC population once.
    pub chaos: bool,
    /// Include the ecosystem-churn section: the resident campaign service
    /// replaying an era-migration timeline with per-tick delta scans
    /// (each tick re-probes only the churned population segments).
    pub churn: bool,
    /// The population ladder for the scale section; `0` entries derive
    /// from the campaign's world size as `[n/2, n, 5n]`. The `repro`
    /// harness passes [`scale::PAPER_SCALE_SIZES`] (10k/100k/1M) here.
    pub scale_sizes: [usize; 3],
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            telescope_per_provider: 10,
            fig11_reps: 3,
            compression_stride: 10,
            full_sweep: true,
            guidance_mitigation: true,
            network_profiles: true,
            resumption: true,
            pq_eras: true,
            population_scale: true,
            chaos: true,
            churn: true,
            scale_sizes: [0, 0, 0],
        }
    }
}

/// One toggleable report section: its enable-flag accessor and its name.
type ToggledSection = (fn(&ReportOptions) -> bool, &'static str);

/// The toggleable report sections, in the order [`full_report`] renders
/// them. [`ReportOptions::skipped`] derives from this table, so the
/// skipped-section list always follows the report's canonical section order
/// no matter how the toggles are declared or queried.
const TOGGLED_SECTIONS: [ToggledSection; 8] = [
    (|o| o.full_sweep, "Fig 3 full Initial-size sweep"),
    (
        |o| o.guidance_mitigation,
        "§5 client mitigation and loss study",
    ),
    (|o| o.network_profiles, "network-profile scenario matrix"),
    (|o| o.resumption, "session-resumption section"),
    (|o| o.pq_eras, "post-quantum certificate-era section"),
    (|o| o.chaos, "chaos fault-grid section"),
    (|o| o.population_scale, "population-scale streaming section"),
    (|o| o.churn, "ecosystem-churn timeline section"),
];

impl ReportOptions {
    /// The names of the report sections these options disable — so callers
    /// can say *what* a partial report omits instead of omitting silently.
    /// The list follows the report's canonical section order.
    pub fn skipped(&self) -> Vec<&'static str> {
        TOGGLED_SECTIONS
            .iter()
            .filter(|(enabled, _)| !enabled(self))
            .map(|&(_, name)| name)
            .collect()
    }
}

/// Produce the full plain-text report reproducing every table and figure.
pub fn full_report(campaign: &Campaign, options: ReportOptions) -> String {
    let mut out = String::new();
    let world = campaign.world();
    out.push_str(&format!(
        "== quicert campaign: {} domains, seed {:#x} ==\n\n",
        world.domains().len(),
        campaign.config().world.seed
    ));

    // §3.1 funnel.
    let https = campaign.https_scan();
    out.push_str(&format!(
        "§3.1 funnel — resolved {} / {}, A records {}, TLS-reachable {}, \
         QUIC services {}\n",
        https.resolved,
        https.total,
        https.a_records,
        https.observations.len(),
        https.quic().count(),
    ));

    // §3.2 QScanner consistency check.
    let qscan = campaign.qscanner();
    let consistency = qscan.1;
    out.push_str(&format!(
        "§3.2 QScanner consistency — {:.1}% of {} QUIC chains match HTTPS \
         ({} rotated, {} other)\n\n",
        consistency.same_rate() * 100.0,
        consistency.total,
        consistency.rotated,
        consistency.other,
    ));

    out.push_str(&certs::fig2b(campaign).render());
    out.push('\n');

    if options.full_sweep {
        out.push_str(&handshakes::fig3(campaign).render());
    } else {
        let results = campaign.quicreach_default();
        let summary =
            quicert_scanner::quicreach::summarize(campaign.config().default_initial, &results);
        out.push_str(&format!(
            "Fig 3 (default size only) — ampl {} / multi {} / retry {} / 1-RTT {}\n",
            summary.amplification, summary.multi_rtt, summary.retry, summary.one_rtt
        ));
    }
    out.push('\n');

    out.push_str(&compression::table1(campaign).render());
    out.push('\n');

    out.push_str(&handshakes::render_fig4(&handshakes::fig4(campaign)));
    out.push_str(&handshakes::fig5(campaign).render());
    out.push('\n');

    out.push_str(&certs::fig6(campaign).render());
    out.push_str(&certs::fig7(campaign, true).render("QUIC services"));
    out.push_str(&certs::fig7(campaign, false).render("HTTPS-only services"));
    out.push_str(&certs::render_fig8(&certs::fig8(campaign)));
    out.push_str(&certs::table2(campaign).render());
    out.push_str(&certs::fig14(campaign).render());
    out.push('\n');

    out.push_str(
        &compression::compression_study(campaign, Algorithm::Brotli, options.compression_stride)
            .render(),
    );
    out.push('\n');

    out.push_str(&amplification::fig9(campaign, options.telescope_per_provider).render());
    out.push_str(&amplification::meta_pop_scan(campaign, false).render());
    out.push_str(&amplification::fig11(campaign, options.fig11_reps).render());
    out.push_str(&amplification::table3(campaign).render());
    out.push('\n');

    out.push_str(&handshakes::render_rank_groups(&handshakes::rank_groups(
        campaign,
    )));
    out.push_str(&handshakes::reachability(campaign).render());
    out.push('\n');

    // §5 guidance, as experiments.
    out.push_str(&guidance::render_server_ablation(
        &guidance::server_ablation(campaign),
    ));
    if options.guidance_mitigation {
        out.push_str(&guidance::client_mitigation(campaign).render());
        out.push_str(&guidance::loss_study(campaign, 0.25, 32).render());
    }

    // Beyond the paper: the same population under adverse link conditions.
    if options.network_profiles {
        out.push('\n');
        out.push_str(&handshakes::render_profile_matrix(
            &handshakes::profile_matrix(campaign),
        ));
    }

    // §5 session resumption: the mitigation that sidesteps the whole
    // certificate/amplification interplay, measured cold-vs-warm.
    if options.resumption {
        out.push('\n');
        out.push_str(&resumption::render_resumption_matrix(
            &resumption::resumption_matrix(campaign),
        ));
        out.push_str(&resumption::render_policy_comparison(
            &resumption::policy_comparison(campaign),
        ));
        out.push_str(&resumption::render_budget_sweep(&resumption::budget_sweep(
            campaign,
            &resumption::BUDGET_SWEEP_SIZES,
        )));
    }

    // Beyond the paper: the same population after the post-quantum PKI
    // migration (ML-DSA / hybrid chains, per Chou & Cao's TTFB study).
    if options.pq_eras {
        out.push('\n');
        out.push_str(&pq::render_era_matrix(&pq::era_matrix(campaign)));
        out.push_str(&pq::render_one_rtt_survivors(&pq::one_rtt_survivors(
            campaign,
        )));
        out.push_str(&pq::render_compression_degradation(
            &pq::compression_degradation(campaign, options.compression_stride),
        ));
    }

    // Beyond the paper: the fault-injection grid — what loss recovery
    // costs once the wire drops, duplicates and corrupts datagrams.
    if options.chaos {
        out.push('\n');
        out.push_str(&chaos::render_fault_grid(&chaos::fault_grid_default(
            campaign,
        )));
        out.push_str(&chaos::render_resumption_under_faults(
            &chaos::resumption_under_faults(campaign),
        ));
    }

    // At scale: the headline measurements at growing population sizes,
    // streamed through the bounded-memory scan path (summaries only).
    if options.population_scale {
        out.push('\n');
        let sizes = scale::resolve_sizes(options.scale_sizes, world.config.domains);
        out.push_str(&scale::render_population_scale(&scale::population_scale(
            campaign, &sizes,
        )));
    }

    // Beyond the paper: the same campaign as a resident service whose
    // population churns along a deterministic era-migration timeline,
    // measured per tick through delta scans.
    if options.churn {
        out.push('\n');
        out.push_str(&churn::render_churn(&churn::churn_timeline(
            campaign,
            REPORT_CHURN_TICKS,
        )));
    }

    out
}

/// Ticks the report's churn section replays — far enough to cover every
/// migration of [`churn::era_migration_config`]'s timeline.
const REPORT_CHURN_TICKS: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignConfig;

    #[test]
    fn full_report_renders_every_section() {
        let campaign = Campaign::new(CampaignConfig::small().with_seed(3).with_domains(1_500));
        let report = full_report(
            &campaign,
            ReportOptions {
                telescope_per_provider: 2,
                fig11_reps: 1,
                compression_stride: 50,
                full_sweep: false,
                guidance_mitigation: false,
                network_profiles: true,
                resumption: true,
                pq_eras: true,
                population_scale: true,
                chaos: true,
                churn: true,
                scale_sizes: [0, 0, 0],
            },
        );
        for needle in [
            "§3.1 funnel",
            "§3.2 QScanner consistency",
            "Fig 2b",
            "Fig 3",
            "Table 1",
            "Fig 4",
            "Fig 5",
            "Fig 6",
            "Fig 7",
            "Fig 8",
            "Table 2",
            "Fig 14",
            "compression study",
            "Fig 9",
            "Meta PoP",
            "Fig 11",
            "Table 3",
            "Figs 12/13",
            "reachability",
            "Network-profile matrix",
            "lossy",
            "long-fat",
            "tunneled",
            "Resumption matrix",
            "Resumption policies",
            "ticket-expired",
            "3x budget",
            "Certificate-era matrix",
            "1-RTT survivorship",
            "brotli dictionary performance",
            "post-quantum",
            "Chaos grid",
            "added RTTs",
            "dup-storm",
            "Resumption under faults",
            "Population scale",
            "Ecosystem churn",
        ] {
            assert!(report.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn every_toggle_is_honored_and_reported_as_skipped() {
        let defaults = ReportOptions::default();
        assert!(defaults.skipped().is_empty(), "defaults skip nothing");

        let partial = ReportOptions {
            full_sweep: false,
            guidance_mitigation: false,
            network_profiles: false,
            resumption: false,
            pq_eras: false,
            population_scale: false,
            chaos: false,
            churn: false,
            ..ReportOptions::default()
        };
        let skipped = partial.skipped();
        assert_eq!(skipped.len(), 8);
        assert!(skipped.iter().any(|s| s.contains("resumption")));

        // A report with everything off renders none of the toggled
        // sections (and still renders the always-on ones).
        let campaign = Campaign::new(CampaignConfig::small().with_seed(3).with_domains(1_200));
        let report = full_report(
            &campaign,
            ReportOptions {
                telescope_per_provider: 2,
                fig11_reps: 1,
                compression_stride: 50,
                ..partial
            },
        );
        assert!(!report.contains("Resumption matrix"));
        assert!(!report.contains("Network-profile matrix"));
        assert!(!report.contains("Certificate-era matrix"));
        assert!(!report.contains("Chaos grid"));
        assert!(!report.contains("Population scale"));
        assert!(!report.contains("Ecosystem churn"));
        assert!(report.contains("§3.1 funnel"));
    }

    #[test]
    fn skipped_sections_follow_the_reports_canonical_order() {
        // Every toggle off: the list is exactly the report's section order,
        // regardless of the order the toggles are declared or flipped in.
        let all_off = ReportOptions {
            full_sweep: false,
            guidance_mitigation: false,
            network_profiles: false,
            resumption: false,
            pq_eras: false,
            population_scale: false,
            chaos: false,
            churn: false,
            ..ReportOptions::default()
        };
        assert_eq!(
            all_off.skipped(),
            vec![
                "Fig 3 full Initial-size sweep",
                "§5 client mitigation and loss study",
                "network-profile scenario matrix",
                "session-resumption section",
                "post-quantum certificate-era section",
                "chaos fault-grid section",
                "population-scale streaming section",
                "ecosystem-churn timeline section",
            ]
        );

        // A subset keeps the same relative order: resumption (rendered
        // later) never precedes the sweep (rendered first), even though it
        // was "turned off first" here.
        let mut subset = ReportOptions {
            resumption: false,
            ..ReportOptions::default()
        };
        subset.full_sweep = false;
        assert_eq!(
            subset.skipped(),
            vec![
                "Fig 3 full Initial-size sweep",
                "session-resumption section"
            ]
        );
    }
}
