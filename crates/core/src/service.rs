//! The resident campaign service: a long-lived campaign whose population
//! churns along a deterministic timeline, serving point-in-time snapshots
//! through **delta scans**.
//!
//! A batch [`crate::Campaign`] scans one frozen world. The
//! [`CampaignService`] instead holds a `quicert_churn::Timeline` and a
//! fixed segmentation of the population:
//!
//! * [`CampaignService::advance_to`] applies churn ticks as pure state
//!   transitions and marks the **segments** containing churned ranks
//!   dirty (an era migration dirties everything — the affected records
//!   are only identifiable after derivation).
//! * [`CampaignService::snapshot_at`] re-derives and re-probes **only the
//!   dirty segments** through the same scanner folds the streaming pump
//!   uses, then merges the per-segment `Merge`-monoid summaries in
//!   segment order. Because every summary merge is exactly associative
//!   and commutative (pinned by the worker/chunk-invariance suite), the
//!   delta scan is **bit-identical to a full rescan** of the churned
//!   world at that tick — the load-bearing invariant, pinned in
//!   `determinism_matrix`.
//! * Snapshots are memoized per ([`ScenarioKey`], tick); requesting a
//!   tick older than the service's clock falls back to a full refold
//!   from the replayed [`ChurnState`].
//!
//! `quicert_obs` counters on the service registry account ticks applied,
//! records churned, and delta-vs-full probe volumes.

use std::collections::HashMap;
use std::sync::Arc;

use quicert_analysis::Merge;
use quicert_churn::{ChurnConfig, ChurnState, Timeline};
use quicert_obs::{Counter, MetricsRegistry};
use quicert_pki::World;
use quicert_scanner::https_scan::{self, HttpsScanShard};
use quicert_scanner::quicreach::{self, ProbeScratch, QuicReachShard};

use crate::campaign::CampaignConfig;
use crate::engine::{host_parallelism, run_sharded, ScenarioKey};

/// Configuration of a resident campaign.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The scan parameters (world, Initial size, workers, profile, era,
    /// fault plan) — same knobs as a batch campaign.
    pub campaign: CampaignConfig,
    /// The churn timeline driving the population between ticks.
    pub churn: ChurnConfig,
    /// Ranks per delta-scan segment: the invalidation granularity. One
    /// churned rank re-probes its whole segment, so smaller segments
    /// probe less per tick but cache more summaries.
    pub segment_size: usize,
}

impl ServiceConfig {
    /// Wrap campaign parameters and a churn timeline with the default
    /// segment size (256 ranks).
    pub fn new(campaign: CampaignConfig, churn: ChurnConfig) -> ServiceConfig {
        ServiceConfig {
            campaign,
            churn,
            segment_size: 256,
        }
    }

    /// Override the delta-scan segment size (builder style).
    pub fn with_segment_size(mut self, segment_size: usize) -> ServiceConfig {
        self.segment_size = segment_size.max(1);
        self
    }
}

/// One point-in-time view of the churned campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The tick this snapshot measures.
    pub tick: u64,
    /// The quicreach summary of the churned population.
    pub reach: QuicReachShard,
    /// The §3.1 funnel and chain-size summary of the churned population.
    pub funnel: HttpsScanShard,
    /// The global session-ticket-key epoch at this tick.
    pub stek_epoch: u32,
}

/// What one scanned tick cost: churn volume and probe accounting for the
/// delta-vs-full comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickStats {
    /// The scanned tick.
    pub tick: u64,
    /// Churn events applied since the previous scanned tick.
    pub events: usize,
    /// Distinct ranks churned since the previous scanned tick.
    pub changed_ranks: usize,
    /// An era migration fired, invalidating every segment.
    pub all_changed: bool,
    /// Segments re-folded by this scan.
    pub dirty_segments: usize,
    /// Total segments in the population.
    pub total_segments: usize,
    /// QUIC services actually re-probed by this scan.
    pub probed: usize,
    /// QUIC services a full rescan would have probed.
    pub full_probe_count: usize,
    /// This scan fell back to a full refold (historical tick or first
    /// scan) instead of a delta.
    pub full_rescan: bool,
}

/// Per-segment cached summaries, valid at the service's last scanned
/// tick for all non-dirty segments.
#[derive(Debug, Clone)]
struct SegmentSummary {
    reach: QuicReachShard,
    funnel: HttpsScanShard,
    probed: usize,
}

/// The service's pre-registered `quicert_obs` instruments.
#[derive(Debug)]
struct ServiceMetrics {
    ticks_applied: Arc<Counter>,
    records_churned: Arc<Counter>,
    delta_probes: Arc<Counter>,
    full_probes: Arc<Counter>,
    delta_scans: Arc<Counter>,
    full_rescans: Arc<Counter>,
}

impl ServiceMetrics {
    fn register(registry: &MetricsRegistry) -> ServiceMetrics {
        ServiceMetrics {
            ticks_applied: registry.counter(
                "quicert_service_ticks_applied_total",
                "Churn ticks applied by the campaign service",
            ),
            records_churned: registry.counter(
                "quicert_service_records_churned_total",
                "Distinct ranks named by per-rank churn events",
            ),
            delta_probes: registry.counter(
                "quicert_service_delta_probes_total",
                "QUIC services re-probed by delta scans",
            ),
            full_probes: registry.counter(
                "quicert_service_full_probes_total",
                "QUIC services probed by full rescans",
            ),
            delta_scans: registry.counter(
                "quicert_service_delta_scans_total",
                "Snapshots served by the delta-scan path",
            ),
            full_rescans: registry.counter(
                "quicert_service_full_rescans_total",
                "Snapshots served by a full refold",
            ),
        }
    }
}

/// A resident campaign: world + churn timeline + segment summary cache +
/// per-tick snapshot store.
#[derive(Debug)]
pub struct CampaignService {
    config: ServiceConfig,
    world: World,
    timeline: Timeline,
    state: ChurnState,
    workers: usize,
    scenario: ScenarioKey,
    segment_size: usize,
    domains: usize,
    /// Cached per-segment summaries; entry `i` covers ranks
    /// `[i*segment_size + 1, (i+1)*segment_size]`.
    segments: Vec<Option<SegmentSummary>>,
    /// Segments churned since their cached fold.
    dirty: Vec<bool>,
    snapshots: HashMap<(ScenarioKey, u64), Arc<Snapshot>>,
    tick_log: Vec<TickStats>,
    /// Events/ranks accumulated since the last scan (folded into the next
    /// scanned tick's stats).
    pending_events: usize,
    pending_ranks: usize,
    pending_all_changed: bool,
    registry: Arc<MetricsRegistry>,
    metrics: ServiceMetrics,
}

impl CampaignService {
    /// Build the service. The world is held in streaming form — segments
    /// re-derive their records on demand, so resident memory is the
    /// segment summaries, never the population.
    pub fn new(config: ServiceConfig) -> CampaignService {
        let world = World::streaming(config.campaign.world.clone());
        let domains = config.campaign.world.domains;
        let segment_size = config.segment_size.max(1);
        let segments = domains.div_ceil(segment_size);
        let workers = match config.campaign.workers {
            0 => host_parallelism(),
            n => n,
        };
        let scenario = ScenarioKey::cold(
            config.campaign.era,
            config.campaign.profile,
            config.campaign.fault_plan,
            config.campaign.default_initial,
        );
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServiceMetrics::register(&registry);
        let timeline = Timeline::new(config.churn.clone());
        CampaignService {
            config,
            world,
            timeline,
            state: ChurnState::initial(),
            workers,
            scenario,
            segment_size,
            domains,
            segments: vec![None; segments],
            dirty: vec![false; segments],
            snapshots: HashMap::new(),
            tick_log: Vec::new(),
            pending_events: 0,
            pending_ranks: 0,
            pending_all_changed: false,
            registry,
            metrics,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The current tick of the service clock.
    pub fn tick(&self) -> u64 {
        self.state.tick
    }

    /// The churn state at the current tick.
    pub fn state(&self) -> &ChurnState {
        &self.state
    }

    /// The scenario every snapshot of this service is keyed under.
    pub fn scenario(&self) -> ScenarioKey {
        self.scenario
    }

    /// The service's metrics registry (tick, churn and probe counters).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Stats of every scanned tick, in scan order.
    pub fn tick_log(&self) -> &[TickStats] {
        &self.tick_log
    }

    /// Advance the service clock to `tick`, applying every intervening
    /// churn tick and marking the churned segments dirty. No scanning
    /// happens until a snapshot is requested. Ticks already applied are
    /// not re-applied (the clock is monotonic).
    pub fn advance_to(&mut self, tick: u64) {
        while self.state.tick < tick {
            let delta = self.state.advance(&self.timeline);
            self.metrics.ticks_applied.inc();
            self.metrics
                .records_churned
                .add(delta.changed_ranks.len() as u64);
            self.pending_events += delta.events;
            self.pending_ranks += delta.changed_ranks.len();
            if delta.all_changed {
                self.pending_all_changed = true;
                for flag in &mut self.dirty {
                    *flag = true;
                }
            } else {
                for &rank in &delta.changed_ranks {
                    let segment = (rank - 1) / self.segment_size;
                    self.dirty[segment] = true;
                }
            }
        }
    }

    /// The snapshot at `tick`, computed on first request and memoized per
    /// ([`ScenarioKey`], tick).
    ///
    /// * `tick >= self.tick()`: the clock advances and the snapshot is a
    ///   **delta scan** — only dirty (or never-folded) segments re-probe.
    /// * `tick < self.tick()` and not memoized: a **full refold** from
    ///   the replayed churn state at that tick, leaving the live segment
    ///   cache untouched.
    pub fn snapshot_at(&mut self, tick: u64) -> Arc<Snapshot> {
        let key = (self.scenario, tick);
        if let Some(snapshot) = self.snapshots.get(&key) {
            return Arc::clone(snapshot);
        }
        let snapshot = if tick < self.state.tick {
            let state = ChurnState::at(&self.timeline, tick);
            Arc::new(self.full_scan_of(&state, tick, true))
        } else {
            self.advance_to(tick);
            Arc::new(self.delta_scan(tick))
        };
        self.snapshots.insert(key, Arc::clone(&snapshot));
        snapshot
    }

    /// A from-scratch full rescan of the churned world at `tick` — the
    /// reference the delta path must match bit-for-bit. Does not consult
    /// or update the segment cache.
    pub fn full_rescan_at(&mut self, tick: u64) -> Snapshot {
        let state = if tick == self.state.tick {
            self.state.clone()
        } else {
            ChurnState::at(&self.timeline, tick)
        };
        self.full_scan_of(&state, tick, false)
    }

    /// Fold every segment of the population under `state` and merge in
    /// segment order. When `log` is set, the scan is recorded in the tick
    /// log and probe counters as a full rescan.
    fn full_scan_of(&mut self, state: &ChurnState, tick: u64, log: bool) -> Snapshot {
        let all: Vec<usize> = (0..self.segments.len()).collect();
        let folded = self.fold_segments(&all, state);
        let probed: usize = folded.iter().map(|s| s.probed).sum();
        let snapshot = Self::merge_segments(tick, state.stek_epoch, folded.iter());
        self.metrics.full_probes.add(probed as u64);
        self.metrics.full_rescans.inc();
        if log {
            self.tick_log.push(TickStats {
                tick,
                events: std::mem::take(&mut self.pending_events),
                changed_ranks: std::mem::take(&mut self.pending_ranks),
                all_changed: std::mem::take(&mut self.pending_all_changed),
                dirty_segments: all.len(),
                total_segments: self.segments.len(),
                probed,
                full_probe_count: probed,
                full_rescan: true,
            });
        }
        snapshot
    }

    /// The delta scan at the current clock: re-fold exactly the dirty (or
    /// never-folded) segments, install them in the cache, and merge all
    /// cached segment summaries in segment order.
    fn delta_scan(&mut self, tick: u64) -> Snapshot {
        debug_assert_eq!(tick, self.state.tick);
        let dirty: Vec<usize> = (0..self.segments.len())
            .filter(|&i| self.dirty[i] || self.segments[i].is_none())
            .collect();
        let state = self.state.clone();
        let folded = self.fold_segments(&dirty, &state);
        let probed: usize = folded.iter().map(|s| s.probed).sum();
        for (&segment, summary) in dirty.iter().zip(folded) {
            self.segments[segment] = Some(summary);
            self.dirty[segment] = false;
        }
        let snapshot = Self::merge_segments(
            tick,
            state.stek_epoch,
            self.segments.iter().map(|s| {
                s.as_ref()
                    .expect("every segment folded at least once by now")
            }),
        );
        let full_probe_count = self
            .segments
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.probed))
            .sum();
        self.metrics.delta_probes.add(probed as u64);
        self.metrics.delta_scans.inc();
        self.tick_log.push(TickStats {
            tick,
            events: std::mem::take(&mut self.pending_events),
            changed_ranks: std::mem::take(&mut self.pending_ranks),
            all_changed: std::mem::take(&mut self.pending_all_changed),
            dirty_segments: dirty.len(),
            total_segments: self.segments.len(),
            probed,
            full_probe_count,
            full_rescan: false,
        });
        snapshot
    }

    /// Re-derive and fold the named segments under `state`, in parallel
    /// across the service's workers. Results come back in input order
    /// ([`run_sharded`] is order-preserving), so callers merge
    /// deterministically.
    fn fold_segments(&self, segments: &[usize], state: &ChurnState) -> Vec<SegmentSummary> {
        run_sharded(segments, self.workers, |shard| {
            let mut scratch = ProbeScratch::with_memo(true);
            shard
                .iter()
                .map(|&segment| self.fold_segment(segment, state, &mut scratch))
                .collect()
        })
    }

    /// Fold one segment: derive its records, overlay the churn state, and
    /// run the same scanner folds the streaming pump uses.
    fn fold_segment(
        &self,
        segment: usize,
        state: &ChurnState,
        scratch: &mut ProbeScratch,
    ) -> SegmentSummary {
        let first_rank = segment * self.segment_size + 1;
        let size = self.segment_size.min(self.domains - first_rank + 1);
        let mut records = self.world.domain_chunk(first_rank, size);
        state.apply_to_records(&mut records);
        let reach = quicreach::fold_records_scratch_chaos(
            &self.world,
            &records,
            self.scenario.initial_size,
            self.scenario.profile,
            self.scenario.era,
            self.scenario.plan,
            scratch,
        );
        let funnel = https_scan::fold_iter(&self.world, records.iter());
        let probed = records.iter().filter(|r| r.has_quic()).count();
        SegmentSummary {
            reach,
            funnel,
            probed,
        }
    }

    /// Merge per-segment summaries (in the iteration order given — always
    /// segment order) into one snapshot.
    fn merge_segments<'a>(
        tick: u64,
        stek_epoch: u32,
        segments: impl Iterator<Item = &'a SegmentSummary>,
    ) -> Snapshot {
        let mut reach = QuicReachShard::identity();
        let mut funnel = HttpsScanShard::seeded();
        for summary in segments {
            reach.merge(&summary.reach);
            funnel.merge(&summary.funnel);
        }
        Snapshot {
            tick,
            reach,
            funnel,
            stek_epoch,
        }
    }

    /// Render a point-in-time report of the snapshot at `tick` (advancing
    /// and scanning as needed).
    pub fn report_at(&mut self, tick: u64) -> String {
        let snapshot = self.snapshot_at(tick);
        crate::experiments::churn::render_snapshot(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::world::Provider;
    use quicert_pki::CertificateEra;

    fn service(workers: usize) -> CampaignService {
        let campaign = CampaignConfig::small()
            .with_domains(600)
            .with_seed(0xC4A7)
            .with_workers(workers);
        let churn = ChurnConfig::new(0x7123, 600).with_migration(
            4,
            Provider::Cloudflare,
            CertificateEra::Hybrid,
        );
        CampaignService::new(ServiceConfig::new(campaign, churn).with_segment_size(64))
    }

    #[test]
    fn tick_zero_snapshot_matches_the_batch_campaign() {
        let mut svc = service(2);
        let snapshot = svc.snapshot_at(0);
        let campaign = crate::Campaign::new(
            CampaignConfig::small()
                .with_domains(600)
                .with_seed(0xC4A7)
                .with_workers(2),
        );
        assert_eq!(snapshot.reach, *campaign.stream_quicreach_default());
        assert_eq!(snapshot.funnel, *campaign.stream_https_scan());
        assert_eq!(snapshot.stek_epoch, 0);
    }

    #[test]
    fn snapshots_are_memoized_per_tick() {
        let mut svc = service(1);
        let a = svc.snapshot_at(2);
        let b = svc.snapshot_at(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(svc.tick_log().len(), 1);
    }

    #[test]
    fn delta_scan_equals_full_rescan_at_each_tick() {
        let mut svc = service(2);
        for tick in [1, 2, 4, 5] {
            let delta = svc.snapshot_at(tick);
            let full = svc.full_rescan_at(tick);
            assert_eq!(*delta, full, "tick {tick}");
        }
    }

    #[test]
    fn delta_scans_probe_fewer_records_on_sparse_ticks() {
        let mut svc = service(2);
        svc.snapshot_at(0);
        svc.snapshot_at(1);
        let stats = svc.tick_log().last().copied().unwrap();
        assert!(!stats.full_rescan);
        assert!(
            stats.probed < stats.full_probe_count,
            "delta probed {} of {}",
            stats.probed,
            stats.full_probe_count
        );
        assert!(stats.dirty_segments < stats.total_segments);
    }

    #[test]
    fn era_migration_dirties_every_segment() {
        let mut svc = service(2);
        svc.snapshot_at(3);
        svc.snapshot_at(4); // migration tick
        let stats = svc.tick_log().last().copied().unwrap();
        assert!(stats.all_changed);
        assert_eq!(stats.dirty_segments, stats.total_segments);
    }

    #[test]
    fn historical_snapshots_replay_without_disturbing_the_clock() {
        let mut svc = service(1);
        let live = svc.snapshot_at(3);
        let historical = svc.snapshot_at(1);
        assert_eq!(svc.tick(), 3);
        assert!(historical.tick == 1 && live.tick == 3);
        // Memoized on re-request.
        assert!(Arc::ptr_eq(&historical, &svc.snapshot_at(1)));
        // And identical to a fresh service that never went past tick 1.
        let mut young = service(1);
        assert_eq!(*young.snapshot_at(1), *historical);
    }

    #[test]
    fn service_counters_account_scans() {
        let mut svc = service(1);
        svc.snapshot_at(2);
        svc.full_rescan_at(2);
        let text = svc.metrics_registry().render_prometheus();
        assert!(text.contains("quicert_service_ticks_applied_total 2"));
        assert!(text.contains("quicert_service_delta_scans_total 1"));
        assert!(text.contains("quicert_service_full_rescans_total 1"));
    }
}
