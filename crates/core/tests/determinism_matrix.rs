//! Cross-axis shard-invariance: every artifact family must be bit-for-bit
//! identical at any worker count across the full `(era × profile × policy)`
//! scenario grid, so no future axis can silently break the engine's
//! determinism guarantee the way a single-cell spot check could miss.

use std::sync::OnceLock;

use proptest::prelude::*;
use quicert_churn::{ChurnConfig, ChurnState, Timeline};
use quicert_core::{CampaignConfig, CampaignService, ScanEngine, ServiceConfig};
use quicert_netsim::{FaultPlan, NetworkProfile};
use quicert_pki::world::Provider;
use quicert_pki::{CertificateEra, World, WorldConfig};
use quicert_scanner::https_scan::HttpsScanShard;
use quicert_scanner::quicreach::{self, ProbeScratch, QuicReachShard};
use quicert_session::ResumptionPolicy;

const INITIAL: usize = 1362;

fn engine(workers: usize) -> ScanEngine {
    // Small on purpose: the grid below multiplies every cell by three
    // worker counts, and each warm cell probes every service twice.
    let world = World::generate(WorldConfig {
        domains: 320,
        seed: 0x9121,
        ..WorldConfig::default()
    });
    ScanEngine::new(world, INITIAL, workers)
}

#[test]
fn quicreach_grid_is_worker_invariant() {
    let reference = engine(1);
    for workers in [2usize, 8] {
        let parallel = engine(workers);
        for era in CertificateEra::ALL {
            for profile in NetworkProfile::ALL {
                assert_eq!(
                    *reference.quicreach_era(era, profile, INITIAL),
                    *parallel.quicreach_era(era, profile, INITIAL),
                    "quicreach {era}/{profile} diverged at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn warm_scan_grid_is_worker_invariant() {
    let reference = engine(1);
    for workers in [2usize, 8] {
        let parallel = engine(workers);
        for era in CertificateEra::ALL {
            for profile in NetworkProfile::ALL {
                for policy in ResumptionPolicy::ALL {
                    assert_eq!(
                        *reference.warm_scan_era(era, profile, policy, INITIAL),
                        *parallel.warm_scan_era(era, profile, policy, INITIAL),
                        "warm {era}/{profile}/{policy} diverged at {workers} workers"
                    );
                }
            }
        }
    }
}

/// The streaming path across the worker × chunk grid: every `stream_*`
/// summary must be bit-for-bit identical at workers {1, 2, 8, 16} and
/// chunk sizes {1, 64, 4096} plus the adaptive default (chunk 0), and
/// identical to the summary derived from the materialized artifacts of
/// the same (paper-scale-model) world.
#[test]
fn streaming_grid_is_worker_and_chunk_invariant() {
    let config = WorldConfig {
        domains: 1_500,
        seed: 0x9121,
        ..WorldConfig::default()
    };
    // The materialized reference: per-record artifacts, folded afterwards.
    let materialized = ScanEngine::new(World::generate(config.clone()), INITIAL, 2);
    let reach_ref = QuicReachShard::from_results(INITIAL, &materialized.quicreach(INITIAL));
    let https_ref = HttpsScanShard::from_report(&materialized.https_scan());
    assert!(reach_ref.total() > 0, "world has QUIC services");

    for workers in [1usize, 2, 8, 16] {
        // Chunk 0 is the adaptive default: claims sized off the remaining
        // population rather than a fixed count.
        for chunk in [0usize, 1, 64, 4096] {
            let engine =
                ScanEngine::streaming(config.clone(), INITIAL, workers).with_stream_chunk(chunk);
            assert_eq!(
                *engine.stream_quicreach(INITIAL),
                reach_ref,
                "stream_quicreach diverged at workers={workers} chunk={chunk}"
            );
            assert_eq!(
                *engine.stream_https_scan(),
                https_ref,
                "stream_https_scan diverged at workers={workers} chunk={chunk}"
            );
        }
    }
}

/// Scenario-class memoization must be invisible in every summary bit:
/// the streaming grid folded with the flyweight forced on equals the grid
/// folded with it forced off — across worker counts, chunkings, eras and
/// profiles (deterministic ones replay cached outcomes, RNG-consuming
/// ones bypass the memo; both must land on the same bits). Engines are
/// separate per setting because the stream cache is keyed on
/// (era, profile, size), not on the memo toggle.
#[test]
fn streaming_grid_is_memoization_invariant() {
    let config = WorldConfig {
        domains: 1_500,
        seed: 0x9121,
        ..WorldConfig::default()
    };
    for (era, profile) in [
        (CertificateEra::Classical, NetworkProfile::Ideal),
        (CertificateEra::Classical, NetworkProfile::Tunneled),
        (CertificateEra::PostQuantum, NetworkProfile::Ideal),
        (CertificateEra::Hybrid, NetworkProfile::Lossy),
        (CertificateEra::Classical, NetworkProfile::LongFat),
    ] {
        let reference = ScanEngine::streaming(config.clone(), INITIAL, 1).with_memoization(false);
        let want = reference.stream_quicreach_era(era, profile, INITIAL);
        let direct_totals = reference.pump_stats().expect("pump ran").totals();
        assert_eq!(direct_totals.memo_hits, 0, "{era}/{profile}");
        assert_eq!(direct_totals.memo_misses, 0, "{era}/{profile}");
        for (workers, chunk) in [(1usize, 0usize), (2, 64), (8, 4096)] {
            let memoized = ScanEngine::streaming(config.clone(), INITIAL, workers)
                .with_stream_chunk(chunk)
                .with_memoization(true);
            assert_eq!(
                *memoized.stream_quicreach_era(era, profile, INITIAL),
                *want,
                "memoized stream {era}/{profile} diverged at workers={workers} chunk={chunk}"
            );
            let totals = memoized.pump_stats().expect("pump ran").totals();
            let probed = want.total() as u64;
            if profile.is_deterministic() {
                // Every probe is accounted a hit or a miss, and some
                // classes must actually be shared at this population.
                assert_eq!(
                    totals.memo_hits + totals.memo_misses,
                    probed,
                    "{era}/{profile} workers={workers} chunk={chunk}"
                );
                assert!(
                    totals.distinct_classes <= totals.memo_misses,
                    "{era}/{profile}"
                );
                // Class *sharing* (hits > 0) only emerges at campaign
                // scale — the 3k-domain scanner unit test and the 1M
                // bench guard pin it; here a small grid world may
                // legitimately see all-distinct classes.
                assert!(totals.distinct_classes > 0, "{era}/{profile}");
            } else {
                // RNG-consuming profiles bypass the memo entirely.
                assert_eq!(totals.memo_hits, 0, "{era}/{profile}");
                assert_eq!(totals.memo_misses, 0, "{era}/{profile}");
                assert_eq!(totals.distinct_classes, 0, "{era}/{profile}");
            }
        }
    }
}

/// The streaming path stays invariant on the non-default scenario axes
/// too (one spot-check cell per axis to keep the grid affordable: the
/// full per-axis grids are covered by the materialized tests above plus
/// the streaming-equals-materialized equivalence).
#[test]
fn streaming_scenario_axes_are_worker_and_chunk_invariant() {
    let config = WorldConfig {
        domains: 320,
        seed: 0x9121,
        ..WorldConfig::default()
    };
    let reference = ScanEngine::streaming(config.clone(), INITIAL, 1).with_stream_chunk(64);
    for (era, profile) in [
        (CertificateEra::PostQuantum, NetworkProfile::Ideal),
        (CertificateEra::Classical, NetworkProfile::Lossy),
        (CertificateEra::Hybrid, NetworkProfile::Tunneled),
    ] {
        let want = reference.stream_quicreach_era(era, profile, INITIAL);
        for (workers, chunk) in [(2usize, 1usize), (8, 4096), (16, 0)] {
            let engine =
                ScanEngine::streaming(config.clone(), INITIAL, workers).with_stream_chunk(chunk);
            assert_eq!(
                *engine.stream_quicreach_era(era, profile, INITIAL),
                *want,
                "stream {era}/{profile} diverged at workers={workers} chunk={chunk}"
            );
        }
    }
}

/// The chaos grid across the worker × chunk × memo matrix: every
/// [`FaultPlan`] rung must fold bit-for-bit identical summaries at
/// workers {1, 2, 8} and chunks {adaptive, 64, 4096}, with memoization
/// forced on and forced off, and must equal the materialized chaos
/// artifact of the same world. Fault wires draw per-probe RNG, so with
/// the memo forced *on* a non-NONE plan must still record zero memo
/// traffic — the plan's own determinism predicate bypasses it, even on
/// the otherwise-deterministic ideal profile.
#[test]
fn chaos_grid_is_worker_chunk_and_memo_invariant() {
    let config = WorldConfig {
        domains: 320,
        seed: 0x9121,
        ..WorldConfig::default()
    };
    let era = CertificateEra::Classical;
    let profile = NetworkProfile::Ideal;
    for plan in [FaultPlan::LIGHT, FaultPlan::HEAVY, FaultPlan::DUP_STORM] {
        let materialized = ScanEngine::new(World::generate(config.clone()), INITIAL, 2);
        let reference = QuicReachShard::from_results(
            INITIAL,
            &materialized.quicreach_chaos(era, profile, plan, INITIAL),
        );
        for (workers, chunk) in [(1usize, 0usize), (2, 64), (8, 4096)] {
            for memo in [true, false] {
                let engine = ScanEngine::streaming(config.clone(), INITIAL, workers)
                    .with_stream_chunk(chunk)
                    .with_memoization(memo);
                assert_eq!(
                    *engine.stream_quicreach_chaos(era, profile, plan, INITIAL),
                    reference,
                    "chaos {plan} diverged at workers={workers} chunk={chunk} memo={memo}"
                );
                let totals = engine.pump_stats().expect("pump ran").totals();
                assert_eq!(
                    (totals.memo_hits, totals.memo_misses, totals.distinct_classes),
                    (0, 0, 0),
                    "chaos {plan} consulted the memo at workers={workers} chunk={chunk} memo={memo}"
                );
            }
        }
    }
}

/// One shared world for the scratch-reuse property: generation is the
/// expensive part and the property only needs its records.
fn prop_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::generate(WorldConfig {
            domains: 240,
            seed: 0x9121,
            ..WorldConfig::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // A pump worker folds many chunks through one reused `ProbeScratch`.
    // Whatever partition, scenario, and Initial size a case draws, every
    // chunk folded through the shared (dirty) scratch must equal the same
    // chunk folded through a fresh one — reuse may never leak probes,
    // outcomes, or ranks from an earlier chunk into a later shard.
    #[test]
    fn probe_scratch_reuse_never_leaks_state(
        chunk_sizes in proptest::collection::vec(1usize..60, 1..7),
        start in 1usize..120,
        era_idx in 0usize..CertificateEra::ALL.len(),
        profile_idx in 0usize..NetworkProfile::ALL.len(),
        initial in 1200usize..1473,
    ) {
        let world = prop_world();
        let era = CertificateEra::ALL[era_idx];
        let profile = NetworkProfile::ALL[profile_idx];
        let mut shared = ProbeScratch::new();
        let mut first_rank = start;
        for chunk_size in chunk_sizes {
            let records = world.domain_chunk(first_rank, chunk_size);
            first_rank += chunk_size;
            if records.is_empty() {
                break;
            }
            let reused =
                quicreach::fold_records_scratch(world, &records, initial, profile, era, &mut shared);
            let fresh = quicreach::fold_records_scratch(
                world,
                &records,
                initial,
                profile,
                era,
                &mut ProbeScratch::new(),
            );
            prop_assert_eq!(
                reused,
                fresh,
                "reused scratch diverged on chunk [{}, +{}) {}/{} initial {}",
                first_rank - chunk_size,
                chunk_size,
                era,
                profile,
                initial
            );
        }
    }

    // Class-keyed replay equals direct per-record simulation: whatever
    // record window, era, deterministic profile and Initial size a case
    // draws, folding through a memoizing scratch — including a second
    // pass over the same records, where every probe is a memo *hit*
    // replayed from the table — must be bit-identical to a memo-less
    // scratch that simulates each record.
    #[test]
    fn memoized_replay_equals_direct_simulation(
        start in 1usize..160,
        len in 1usize..80,
        era_idx in 0usize..CertificateEra::ALL.len(),
        deterministic_idx in 0usize..2,
        initial in 1200usize..1473,
    ) {
        // Exactly the memoizable profiles: the ones whose overlays draw
        // no RNG (pinned by netsim's determinism-predicate test).
        let deterministic = [NetworkProfile::Ideal, NetworkProfile::Tunneled];
        let deterministic_profile = deterministic[deterministic_idx];
        assert!(deterministic_profile.is_deterministic());
        let world = prop_world();
        let era = CertificateEra::ALL[era_idx];
        // `start` stays inside the 240-domain world, so never empty.
        let records = world.domain_chunk(start, len);
        prop_assert!(!records.is_empty());
        let mut memoized = ProbeScratch::new();
        let mut direct = ProbeScratch::with_memo(false);
        let direct_shard = quicreach::fold_records_scratch(
            world, &records, initial, deterministic_profile, era, &mut direct,
        );
        for pass in 0..2 {
            let replayed = quicreach::fold_records_scratch(
                world, &records, initial, deterministic_profile, era, &mut memoized,
            );
            prop_assert_eq!(
                &replayed,
                &direct_shard,
                "replay diverged on pass {} [{}, +{}) {}/{} initial {}",
                pass,
                start,
                len,
                era,
                deterministic_profile,
                initial
            );
        }
        // Second pass over identical records: all hits, no new classes.
        let (hits, misses, _) = memoized.memo_stats();
        prop_assert_eq!(hits + misses, 2 * direct_shard.total() as u64);
        prop_assert!(hits >= direct_shard.total() as u64);
    }
}

/// A resident campaign over a dense multi-event churn timeline: every
/// tick carries rotations, drifts and revocations; the STEK epoch rolls
/// every other tick; and Cloudflare migrates to hybrid at tick 3.
fn churn_service(workers: usize, segment_size: usize) -> CampaignService {
    let campaign = CampaignConfig::small()
        .with_domains(480)
        .with_seed(0x9121)
        .with_workers(workers);
    let mut churn = ChurnConfig::new(0xC1C1, 480)
        .with_rates(6, 4, 2)
        .with_migration(3, Provider::Cloudflare, CertificateEra::Hybrid);
    churn.stek_rollover_every = 2;
    CampaignService::new(ServiceConfig::new(campaign, churn).with_segment_size(segment_size))
}

/// The campaign service's load-bearing invariant across the worker ×
/// segment-size grid: the delta scan at every tick of a multi-event
/// timeline (rotation + drift + revocation + STEK rollover + era
/// migration) is bit-identical to a from-scratch full rescan of the
/// churned world at that tick, and identical across worker counts and
/// segmentations (including one single segment spanning the population).
#[test]
fn churn_delta_scans_equal_full_rescans_across_workers_and_segments() {
    const TICKS: u64 = 4;
    let mut reference = churn_service(1, 64);
    let reference_snapshots: Vec<_> = (0..=TICKS)
        .map(|tick| (*reference.snapshot_at(tick)).clone())
        .collect();
    for workers in [1usize, 2, 8] {
        for segment_size in [16usize, 96, 1024] {
            let mut service = churn_service(workers, segment_size);
            for tick in 0..=TICKS {
                let delta = service.snapshot_at(tick);
                let full = service.full_rescan_at(tick);
                assert_eq!(
                    *delta, full,
                    "delta != full rescan at tick {tick} workers={workers} segment={segment_size}"
                );
                assert_eq!(
                    *delta, reference_snapshots[tick as usize],
                    "snapshot diverged at tick {tick} workers={workers} segment={segment_size}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Churn timelines are pure functions of (seed, tick), and one tick's
    // events commute: applying them forward, reversed, or rotated by any
    // offset lands on the same state, which (tick counter aside) equals
    // the replayed reference. This is what lets the service apply a
    // tick's events in any order and still serve deterministic snapshots.
    #[test]
    fn churn_timeline_is_deterministic_and_order_independent(
        seed in any::<u64>(),
        domains in 1usize..2_000,
        tick in 1u64..32,
        rotations in 0usize..12,
        drifts in 0usize..8,
        revocations in 0usize..6,
        migrate_now in any::<bool>(),
        rotate_by in 0usize..64,
    ) {
        let migration_tick = if migrate_now { tick } else { tick + 1 };
        let config = ChurnConfig::new(seed, domains)
            .with_rates(rotations, drifts, revocations)
            .with_migration(migration_tick, Provider::Google, CertificateEra::Hybrid)
            .with_migration(migration_tick, Provider::Google, CertificateEra::PostQuantum);
        let timeline = Timeline::new(config);

        // Deterministic from (seed, tick): same events, same state, twice.
        let events = timeline.events_at(tick);
        prop_assert_eq!(&events, &timeline.events_at(tick));
        let replayed = ChurnState::at(&timeline, tick);
        prop_assert_eq!(&replayed, &ChurnState::at(&timeline, tick));

        // Order-independent within the tick.
        let base = ChurnState::at(&timeline, tick - 1);
        let mut forward = base.clone();
        for e in &events {
            forward.apply(e);
        }
        let mut backward = base.clone();
        for e in events.iter().rev() {
            backward.apply(e);
        }
        let mut rotated = base.clone();
        let offset = if events.is_empty() { 0 } else { rotate_by % events.len() };
        for e in events[offset..].iter().chain(&events[..offset]) {
            rotated.apply(e);
        }
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &rotated);

        // And any order agrees with the replayed reference once the tick
        // counter (bumped by `advance`, not `apply`) is aligned.
        forward.tick = tick;
        prop_assert_eq!(&forward, &replayed);
    }
}

#[test]
fn compression_study_grid_is_worker_invariant() {
    let reference = engine(1);
    let parallel = engine(8);
    for era in CertificateEra::ALL {
        for algorithm in quicert_compress::Algorithm::ALL {
            let a = reference.compression_study_era(era, algorithm, 4);
            let b = parallel.compression_study_era(era, algorithm, 4);
            assert_eq!(a.len(), b.len(), "{era}/{algorithm}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(
                    (x.original, x.compressed),
                    (y.original, y.compressed),
                    "{era}/{algorithm}"
                );
            }
        }
    }
}
