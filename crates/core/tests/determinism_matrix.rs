//! Cross-axis shard-invariance: every artifact family must be bit-for-bit
//! identical at any worker count across the full `(era × profile × policy)`
//! scenario grid, so no future axis can silently break the engine's
//! determinism guarantee the way a single-cell spot check could miss.

use quicert_core::ScanEngine;
use quicert_netsim::NetworkProfile;
use quicert_pki::{CertificateEra, World, WorldConfig};
use quicert_session::ResumptionPolicy;

const INITIAL: usize = 1362;

fn engine(workers: usize) -> ScanEngine {
    // Small on purpose: the grid below multiplies every cell by three
    // worker counts, and each warm cell probes every service twice.
    let world = World::generate(WorldConfig {
        domains: 320,
        seed: 0x9121,
        ..WorldConfig::default()
    });
    ScanEngine::new(world, INITIAL, workers)
}

#[test]
fn quicreach_grid_is_worker_invariant() {
    let reference = engine(1);
    for workers in [2usize, 8] {
        let parallel = engine(workers);
        for era in CertificateEra::ALL {
            for profile in NetworkProfile::ALL {
                assert_eq!(
                    *reference.quicreach_era(era, profile, INITIAL),
                    *parallel.quicreach_era(era, profile, INITIAL),
                    "quicreach {era}/{profile} diverged at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn warm_scan_grid_is_worker_invariant() {
    let reference = engine(1);
    for workers in [2usize, 8] {
        let parallel = engine(workers);
        for era in CertificateEra::ALL {
            for profile in NetworkProfile::ALL {
                for policy in ResumptionPolicy::ALL {
                    assert_eq!(
                        *reference.warm_scan_era(era, profile, policy, INITIAL),
                        *parallel.warm_scan_era(era, profile, policy, INITIAL),
                        "warm {era}/{profile}/{policy} diverged at {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn compression_study_grid_is_worker_invariant() {
    let reference = engine(1);
    let parallel = engine(8);
    for era in CertificateEra::ALL {
        for algorithm in quicert_compress::Algorithm::ALL {
            let a = reference.compression_study_era(era, algorithm, 4);
            let b = parallel.compression_study_era(era, algorithm, 4);
            assert_eq!(a.len(), b.len(), "{era}/{algorithm}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(
                    (x.original, x.compressed),
                    (y.original, y.compressed),
                    "{era}/{algorithm}"
                );
            }
        }
    }
}
