//! Cross-axis shard-invariance: every artifact family must be bit-for-bit
//! identical at any worker count across the full `(era × profile × policy)`
//! scenario grid, so no future axis can silently break the engine's
//! determinism guarantee the way a single-cell spot check could miss.

use std::sync::OnceLock;

use proptest::prelude::*;
use quicert_core::ScanEngine;
use quicert_netsim::NetworkProfile;
use quicert_pki::{CertificateEra, World, WorldConfig};
use quicert_scanner::https_scan::HttpsScanShard;
use quicert_scanner::quicreach::{self, ProbeScratch, QuicReachShard};
use quicert_session::ResumptionPolicy;

const INITIAL: usize = 1362;

fn engine(workers: usize) -> ScanEngine {
    // Small on purpose: the grid below multiplies every cell by three
    // worker counts, and each warm cell probes every service twice.
    let world = World::generate(WorldConfig {
        domains: 320,
        seed: 0x9121,
        ..WorldConfig::default()
    });
    ScanEngine::new(world, INITIAL, workers)
}

#[test]
fn quicreach_grid_is_worker_invariant() {
    let reference = engine(1);
    for workers in [2usize, 8] {
        let parallel = engine(workers);
        for era in CertificateEra::ALL {
            for profile in NetworkProfile::ALL {
                assert_eq!(
                    *reference.quicreach_era(era, profile, INITIAL),
                    *parallel.quicreach_era(era, profile, INITIAL),
                    "quicreach {era}/{profile} diverged at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn warm_scan_grid_is_worker_invariant() {
    let reference = engine(1);
    for workers in [2usize, 8] {
        let parallel = engine(workers);
        for era in CertificateEra::ALL {
            for profile in NetworkProfile::ALL {
                for policy in ResumptionPolicy::ALL {
                    assert_eq!(
                        *reference.warm_scan_era(era, profile, policy, INITIAL),
                        *parallel.warm_scan_era(era, profile, policy, INITIAL),
                        "warm {era}/{profile}/{policy} diverged at {workers} workers"
                    );
                }
            }
        }
    }
}

/// The streaming path across the worker × chunk grid: every `stream_*`
/// summary must be bit-for-bit identical at workers {1, 2, 8, 16} and
/// chunk sizes {1, 64, 4096} plus the adaptive default (chunk 0), and
/// identical to the summary derived from the materialized artifacts of
/// the same (paper-scale-model) world.
#[test]
fn streaming_grid_is_worker_and_chunk_invariant() {
    let config = WorldConfig {
        domains: 1_500,
        seed: 0x9121,
        ..WorldConfig::default()
    };
    // The materialized reference: per-record artifacts, folded afterwards.
    let materialized = ScanEngine::new(World::generate(config.clone()), INITIAL, 2);
    let reach_ref = QuicReachShard::from_results(INITIAL, &materialized.quicreach(INITIAL));
    let https_ref = HttpsScanShard::from_report(&materialized.https_scan());
    assert!(reach_ref.total() > 0, "world has QUIC services");

    for workers in [1usize, 2, 8, 16] {
        // Chunk 0 is the adaptive default: claims sized off the remaining
        // population rather than a fixed count.
        for chunk in [0usize, 1, 64, 4096] {
            let engine =
                ScanEngine::streaming(config.clone(), INITIAL, workers).with_stream_chunk(chunk);
            assert_eq!(
                *engine.stream_quicreach(INITIAL),
                reach_ref,
                "stream_quicreach diverged at workers={workers} chunk={chunk}"
            );
            assert_eq!(
                *engine.stream_https_scan(),
                https_ref,
                "stream_https_scan diverged at workers={workers} chunk={chunk}"
            );
        }
    }
}

/// The streaming path stays invariant on the non-default scenario axes
/// too (one spot-check cell per axis to keep the grid affordable: the
/// full per-axis grids are covered by the materialized tests above plus
/// the streaming-equals-materialized equivalence).
#[test]
fn streaming_scenario_axes_are_worker_and_chunk_invariant() {
    let config = WorldConfig {
        domains: 320,
        seed: 0x9121,
        ..WorldConfig::default()
    };
    let reference = ScanEngine::streaming(config.clone(), INITIAL, 1).with_stream_chunk(64);
    for (era, profile) in [
        (CertificateEra::PostQuantum, NetworkProfile::Ideal),
        (CertificateEra::Classical, NetworkProfile::Lossy),
        (CertificateEra::Hybrid, NetworkProfile::Tunneled),
    ] {
        let want = reference.stream_quicreach_era(era, profile, INITIAL);
        for (workers, chunk) in [(2usize, 1usize), (8, 4096), (16, 0)] {
            let engine =
                ScanEngine::streaming(config.clone(), INITIAL, workers).with_stream_chunk(chunk);
            assert_eq!(
                *engine.stream_quicreach_era(era, profile, INITIAL),
                *want,
                "stream {era}/{profile} diverged at workers={workers} chunk={chunk}"
            );
        }
    }
}

/// One shared world for the scratch-reuse property: generation is the
/// expensive part and the property only needs its records.
fn prop_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::generate(WorldConfig {
            domains: 240,
            seed: 0x9121,
            ..WorldConfig::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // A pump worker folds many chunks through one reused `ProbeScratch`.
    // Whatever partition, scenario, and Initial size a case draws, every
    // chunk folded through the shared (dirty) scratch must equal the same
    // chunk folded through a fresh one — reuse may never leak probes,
    // outcomes, or ranks from an earlier chunk into a later shard.
    #[test]
    fn probe_scratch_reuse_never_leaks_state(
        chunk_sizes in proptest::collection::vec(1usize..60, 1..7),
        start in 1usize..120,
        era_idx in 0usize..CertificateEra::ALL.len(),
        profile_idx in 0usize..NetworkProfile::ALL.len(),
        initial in 1200usize..1473,
    ) {
        let world = prop_world();
        let era = CertificateEra::ALL[era_idx];
        let profile = NetworkProfile::ALL[profile_idx];
        let mut shared = ProbeScratch::new();
        let mut first_rank = start;
        for chunk_size in chunk_sizes {
            let records = world.domain_chunk(first_rank, chunk_size);
            first_rank += chunk_size;
            if records.is_empty() {
                break;
            }
            let reused =
                quicreach::fold_records_scratch(world, &records, initial, profile, era, &mut shared);
            let fresh = quicreach::fold_records_scratch(
                world,
                &records,
                initial,
                profile,
                era,
                &mut ProbeScratch::new(),
            );
            prop_assert_eq!(
                reused,
                fresh,
                "reused scratch diverged on chunk [{}, +{}) {}/{} initial {}",
                first_rank - chunk_size,
                chunk_size,
                era,
                profile,
                initial
            );
        }
    }
}

#[test]
fn compression_study_grid_is_worker_invariant() {
    let reference = engine(1);
    let parallel = engine(8);
    for era in CertificateEra::ALL {
        for algorithm in quicert_compress::Algorithm::ALL {
            let a = reference.compression_study_era(era, algorithm, 4);
            let b = parallel.compression_study_era(era, algorithm, 4);
            assert_eq!(a.len(), b.len(), "{era}/{algorithm}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(
                    (x.original, x.compressed),
                    (y.original, y.compressed),
                    "{era}/{algorithm}"
                );
            }
        }
    }
}
