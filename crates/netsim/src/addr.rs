//! IPv4 addressing helpers.
//!
//! The simulator uses `std::net::Ipv4Addr` directly for host addresses and
//! adds a small [`Ipv4Net`] prefix type, which is all that the telescope
//! (dark address space) and the per-provider point-of-presence prefixes need.

use std::fmt;
use std::net::Ipv4Addr;

/// Wildcard port used when the port of an endpoint does not matter.
pub const ANY_PORT: u16 = 0;

/// An IPv4 network prefix (`address/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Net {
    base: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Create a prefix. The base address is masked down to the prefix, so
    /// `Ipv4Net::new(10.1.2.3, 8)` is the same network as
    /// `Ipv4Net::new(10.0.0.0, 8)`.
    ///
    /// # Panics
    /// Panics if `prefix_len > 32`.
    pub fn new(base: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "IPv4 prefix length must be <= 32");
        let mask = Self::mask_bits(prefix_len);
        Ipv4Net {
            base: Ipv4Addr::from(u32::from(base) & mask),
            prefix_len,
        }
    }

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// The (masked) network base address.
    pub fn base(&self) -> Ipv4Addr {
        self.base
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len as u32)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask_bits(self.prefix_len)) == u32::from(self.base)
    }

    /// The `i`-th host address in the prefix (0 = network base).
    ///
    /// # Panics
    /// Panics if `i` is outside the prefix.
    pub fn host(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "host index outside prefix");
        Ipv4Addr::from(u32::from(self.base) + i as u32)
    }

    /// Iterate over every address in the prefix. Intended for small prefixes
    /// such as the /24 point-of-presence scans of §4.3.
    pub fn hosts(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.host(i))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_masked() {
        let net = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 8);
        assert_eq!(net.base(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(net.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn contains_is_exact() {
        let net = Ipv4Net::new(Ipv4Addr::new(157, 240, 20, 0), 24);
        assert!(net.contains(Ipv4Addr::new(157, 240, 20, 0)));
        assert!(net.contains(Ipv4Addr::new(157, 240, 20, 255)));
        assert!(!net.contains(Ipv4Addr::new(157, 240, 21, 0)));
        assert!(!net.contains(Ipv4Addr::new(157, 239, 20, 5)));
    }

    #[test]
    fn slash24_has_256_hosts() {
        let net = Ipv4Net::new(Ipv4Addr::new(192, 0, 2, 0), 24);
        assert_eq!(net.size(), 256);
        assert_eq!(net.host(0), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(net.host(35), Ipv4Addr::new(192, 0, 2, 35));
        assert_eq!(net.hosts().count(), 256);
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let net = Ipv4Net::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(net.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(net.contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn slash32_contains_only_itself() {
        let addr = Ipv4Addr::new(8, 8, 8, 8);
        let net = Ipv4Net::new(addr, 32);
        assert_eq!(net.size(), 1);
        assert!(net.contains(addr));
        assert!(!net.contains(Ipv4Addr::new(8, 8, 8, 9)));
    }

    #[test]
    #[should_panic(expected = "host index outside prefix")]
    fn host_outside_prefix_panics() {
        Ipv4Net::new(Ipv4Addr::new(192, 0, 2, 0), 24).host(256);
    }
}
