//! UDP datagrams as seen on the simulated wire.

use std::net::Ipv4Addr;

use crate::time::SimTime;

/// Fixed per-datagram overhead of an IPv4 header (20 bytes, no options) plus
/// a UDP header (8 bytes). The QUIC anti-amplification limit is defined over
/// *UDP payload* bytes, but MTU checks apply to the full IP packet, so both
/// views are needed.
pub const UDP_IPV4_OVERHEAD: usize = 28;

/// A UDP datagram in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Source IP address. For spoofed traffic this is the victim's address.
    pub src: Ipv4Addr,
    /// Destination IP address.
    pub dst: Ipv4Addr,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination UDP port (443 for QUIC in all experiments).
    pub dst_port: u16,
    /// The UDP payload. For QUIC this holds one or more coalesced packets.
    pub payload: Vec<u8>,
    /// When the datagram was handed to the wire.
    pub sent_at: SimTime,
}

impl Datagram {
    /// Convenience constructor.
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Self {
        Datagram {
            src,
            dst,
            src_port,
            dst_port,
            payload,
            sent_at: SimTime::ZERO,
        }
    }

    /// UDP payload length — the byte count that the QUIC anti-amplification
    /// limit (RFC 9000 §8.1) is defined over.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Size of the full IP packet (payload + IPv4/UDP headers); this is what
    /// MTU checks on links apply to.
    pub fn wire_len(&self) -> usize {
        self.payload.len() + UDP_IPV4_OVERHEAD
    }

    /// A reply template: swaps src/dst address and port pairs.
    pub fn reply_with(&self, payload: Vec<u8>) -> Datagram {
        Datagram {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            payload,
            sent_at: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg() -> Datagram {
        Datagram::new(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 7),
            50000,
            443,
            vec![0xAB; 1200],
        )
    }

    #[test]
    fn lengths_account_for_headers() {
        let d = dg();
        assert_eq!(d.payload_len(), 1200);
        assert_eq!(d.wire_len(), 1228);
    }

    #[test]
    fn reply_swaps_endpoints() {
        let d = dg();
        let r = d.reply_with(vec![1, 2, 3]);
        assert_eq!(r.src, d.dst);
        assert_eq!(r.dst, d.src);
        assert_eq!(r.src_port, 443);
        assert_eq!(r.dst_port, 50000);
        assert_eq!(r.payload, vec![1, 2, 3]);
    }
}
