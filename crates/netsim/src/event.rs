//! The endpoint/wire vocabulary of the simulator and the classic
//! two-party [`run_exchange`] entry point.
//!
//! QUIC scans are pairwise (scanner ↔ server): a [`Wire`] with one
//! [`LinkModel`] per direction connects two [`Endpoint`] state machines.
//! Since the `SimNet` refactor the actual scheduling lives in
//! [`crate::simnet::SimNet`], which multiplexes any number of such pairs on
//! one shared event heap; [`run_exchange`] survives as a thin one-session
//! wrapper so existing callers keep their exact semantics (including RNG
//! stream advancement and fault-counter accumulation on the caller's wire).
//!
//! Every datagram offered to the wire is recorded as a [`TraceEvent`], so
//! measurements (amplification factors, handshake byte splits, RTT counts)
//! are taken from the *wire view*, exactly like the paper's passive
//! perspective, and not from what an implementation believes it sent.

use crate::datagram::Datagram;
use crate::fault::FaultInjector;
use crate::link::LinkModel;
use crate::rng::SimRng;
use crate::simnet::SimNet;
use crate::time::{SimDuration, SimTime};

/// Which endpoint sent a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From endpoint A (by convention: the client / scanner).
    AtoB,
    /// From endpoint B (by convention: the server).
    BtoA,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::AtoB => Direction::BtoA,
            Direction::BtoA => Direction::AtoB,
        }
    }
}

/// A state machine attached to one end of a [`Wire`].
///
/// Endpoints are polled synchronously: they receive datagrams and timer
/// callbacks, and push any datagrams they want to transmit into `out`.
pub trait Endpoint {
    /// Called once when the exchange starts; the initiating endpoint should
    /// emit its first flight here.
    fn start(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}

    /// A datagram arrived from the peer.
    fn on_datagram(&mut self, dgram: &Datagram, now: SimTime, out: &mut Vec<Datagram>);

    /// The deadline returned by [`Endpoint::next_timer`] was reached.
    fn on_timer(&mut self, now: SimTime, out: &mut Vec<Datagram>);

    /// The next time this endpoint wants `on_timer` to fire, if any.
    fn next_timer(&self) -> Option<SimTime>;

    /// Whether this endpoint considers its part of the exchange complete.
    fn is_done(&self) -> bool;
}

/// Mutable references are endpoints too, so callers can keep ownership of
/// their state machines while a [`SimNet`] session borrows them (this is
/// what lets [`run_exchange`] wrap a `SimNet` without changing signature).
impl<E: Endpoint + ?Sized> Endpoint for &mut E {
    fn start(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        (**self).start(now, out)
    }
    fn on_datagram(&mut self, dgram: &Datagram, now: SimTime, out: &mut Vec<Datagram>) {
        (**self).on_datagram(dgram, now, out)
    }
    fn on_timer(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        (**self).on_timer(now, out)
    }
    fn next_timer(&self) -> Option<SimTime> {
        (**self).next_timer()
    }
    fn is_done(&self) -> bool {
        (**self).is_done()
    }
}

/// A bidirectional path between two endpoints.
#[derive(Debug, Clone, Default)]
pub struct Wire {
    /// Link model applied to A→B datagrams.
    pub a_to_b: LinkModel,
    /// Link model applied to B→A datagrams.
    pub b_to_a: LinkModel,
    /// Additional fault injection applied to A→B datagrams.
    pub fault_a_to_b: FaultInjector,
    /// Additional fault injection applied to B→A datagrams.
    pub fault_b_to_a: FaultInjector,
}

impl Wire {
    /// A symmetric wire with identical link models in both directions.
    pub fn symmetric(link: LinkModel) -> Self {
        Wire {
            a_to_b: link.clone(),
            b_to_a: link,
            ..Wire::default()
        }
    }

    /// A symmetric ideal wire with the given one-way latency.
    pub fn ideal(latency: SimDuration) -> Self {
        Wire::symmetric(LinkModel::ideal(latency))
    }

    /// The round-trip time of the wire (sum of the base one-way latencies).
    pub fn rtt(&self) -> SimDuration {
        self.a_to_b.latency + self.b_to_a.latency
    }

    /// Whether every component of the wire is RNG-free: both link models
    /// (no loss, no jitter) and both fault injectors (no random drops or
    /// corruption). Sessions over a deterministic wire replay identically
    /// for any seed, which is what makes scenario-class memoization of
    /// whole handshakes sound.
    pub fn is_deterministic(&self) -> bool {
        self.a_to_b.is_deterministic()
            && self.b_to_a.is_deterministic()
            && self.fault_a_to_b.is_deterministic()
            && self.fault_b_to_a.is_deterministic()
    }
}

/// Why a datagram did not arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// Exceeded the path MTU (size after encapsulation).
    Mtu(usize),
    /// Removed by the fault injector.
    Fault,
}

/// One datagram transmission as observed on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the sender handed the datagram to the wire.
    pub sent_at: SimTime,
    /// Transmission direction.
    pub direction: Direction,
    /// UDP payload size in bytes.
    pub payload_len: usize,
    /// Delivery time, or the reason the datagram was dropped.
    pub outcome: Result<SimTime, DropReason>,
}

impl TraceEvent {
    /// Whether the datagram arrived.
    pub fn delivered(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Safety limits for an exchange.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeLimits {
    /// Hard wall-clock (simulated) deadline.
    pub deadline: SimTime,
    /// Maximum number of processed events, as a runaway guard.
    pub max_events: usize,
}

impl Default for ExchangeLimits {
    fn default() -> Self {
        ExchangeLimits {
            deadline: SimTime::ZERO + SimDuration::from_secs(300),
            max_events: 100_000,
        }
    }
}

/// The result of running an exchange to quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeOutcome {
    /// Every datagram offered to the wire, in send order.
    pub trace: Vec<TraceEvent>,
    /// Simulated time when the loop stopped.
    pub finished_at: SimTime,
    /// True if the loop stopped because both endpoints reported done (as
    /// opposed to hitting a limit or running out of events).
    pub quiesced: bool,
    /// Datagrams removed by the wire's [`FaultInjector`]s during *this*
    /// exchange (both directions; counters on a reused wire are deltas).
    pub fault_drops: u64,
    /// Datagrams corrupted by the wire's [`FaultInjector`]s during this
    /// exchange.
    pub fault_corruptions: u64,
    /// Datagrams delivered twice by the wire's [`FaultInjector`]s during
    /// this exchange.
    pub fault_duplications: u64,
}

impl ExchangeOutcome {
    /// Total UDP payload bytes *delivered* in the given direction.
    pub fn delivered_bytes(&self, dir: Direction) -> usize {
        self.trace
            .iter()
            .filter(|e| e.direction == dir && e.delivered())
            .map(|e| e.payload_len)
            .sum()
    }

    /// Total UDP payload bytes *sent* (including dropped datagrams) in the
    /// given direction.
    pub fn sent_bytes(&self, dir: Direction) -> usize {
        self.trace
            .iter()
            .filter(|e| e.direction == dir)
            .map(|e| e.payload_len)
            .sum()
    }

    /// Number of datagrams sent in the given direction.
    pub fn datagrams(&self, dir: Direction) -> usize {
        self.trace.iter().filter(|e| e.direction == dir).count()
    }
}

/// Run an exchange between endpoint `a` (initiator) and endpoint `b` over
/// `wire` until both endpoints are done, nothing remains in flight and no
/// timers are pending — or until `limits` are hit.
///
/// This is a thin one-session wrapper over [`SimNet`], preserved for the
/// many call sites that probe a single pair. The caller's `wire` (fault
/// counters) and `rng` (stream position) are written back afterwards, so
/// the function is bit-for-bit equivalent to the pre-`SimNet` two-endpoint
/// loop — the equivalence test in `tests/` pins this against a verbatim
/// copy of the old implementation.
pub fn run_exchange(
    a: &mut dyn Endpoint,
    b: &mut dyn Endpoint,
    wire: &mut Wire,
    limits: ExchangeLimits,
    rng: &mut SimRng,
) -> ExchangeOutcome {
    let mut net = SimNet::with_capacity(1);
    let id = net.add_session(Box::new(a), Box::new(b), wire.clone(), limits, rng.clone());
    net.run();
    let (outcome, wire_back, rng_back) = net.take_parts(id);
    *wire = wire_back;
    *rng = rng_back;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// Sends `count` pings; expects an echo for each before sending the next.
    struct Pinger {
        remaining: u32,
        awaiting: bool,
    }

    /// Echoes every datagram back.
    struct Echoer;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    impl Endpoint for Pinger {
        fn start(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
            if self.remaining > 0 {
                out.push(Datagram::new(A, B, 1000, 443, vec![1; 100]));
                self.awaiting = true;
            }
        }
        fn on_datagram(&mut self, _d: &Datagram, _now: SimTime, out: &mut Vec<Datagram>) {
            self.remaining -= 1;
            self.awaiting = false;
            if self.remaining > 0 {
                out.push(Datagram::new(A, B, 1000, 443, vec![1; 100]));
                self.awaiting = true;
            }
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            self.remaining == 0
        }
    }

    impl Endpoint for Echoer {
        fn on_datagram(&mut self, d: &Datagram, _now: SimTime, out: &mut Vec<Datagram>) {
            out.push(d.reply_with(d.payload.clone()));
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn ping_pong_runs_to_quiescence() {
        let mut pinger = Pinger {
            remaining: 3,
            awaiting: false,
        };
        let mut echoer = Echoer;
        let mut wire = Wire::ideal(SimDuration::from_millis(10));
        let mut rng = SimRng::new(1);
        let out = run_exchange(
            &mut pinger,
            &mut echoer,
            &mut wire,
            ExchangeLimits::default(),
            &mut rng,
        );
        assert!(out.quiesced);
        assert_eq!(out.datagrams(Direction::AtoB), 3);
        assert_eq!(out.datagrams(Direction::BtoA), 3);
        assert_eq!(out.delivered_bytes(Direction::AtoB), 300);
        // 3 round trips at 20ms RTT.
        assert_eq!(
            out.finished_at,
            SimTime::ZERO + SimDuration::from_millis(60)
        );
    }

    #[test]
    fn lossy_wire_without_timers_stalls_unquiesced() {
        let mut pinger = Pinger {
            remaining: 1,
            awaiting: false,
        };
        let mut echoer = Echoer;
        let mut wire = Wire {
            fault_a_to_b: FaultInjector::dropping(1.0),
            ..Wire::default()
        };
        let mut rng = SimRng::new(2);
        let out = run_exchange(
            &mut pinger,
            &mut echoer,
            &mut wire,
            ExchangeLimits::default(),
            &mut rng,
        );
        assert!(!out.quiesced, "pinger never got its echo");
        assert_eq!(out.sent_bytes(Direction::AtoB), 100);
        assert_eq!(out.delivered_bytes(Direction::AtoB), 0);
        assert_eq!(out.trace[0].outcome, Err(DropReason::Fault));
    }

    #[test]
    fn max_events_guards_against_runaway() {
        let mut pinger = Pinger {
            remaining: u32::MAX,
            awaiting: false,
        };
        let mut echoer = Echoer;
        let mut wire = Wire::ideal(SimDuration::from_nanos(1));
        let mut rng = SimRng::new(3);
        let out = run_exchange(
            &mut pinger,
            &mut echoer,
            &mut wire,
            ExchangeLimits {
                max_events: 100,
                ..ExchangeLimits::default()
            },
            &mut rng,
        );
        assert!(!out.quiesced);
        assert!(out.trace.len() <= 102);
    }

    #[test]
    fn deadline_stops_the_clock() {
        let mut pinger = Pinger {
            remaining: 1000,
            awaiting: false,
        };
        let mut echoer = Echoer;
        let mut wire = Wire::ideal(SimDuration::from_millis(100));
        let mut rng = SimRng::new(4);
        let out = run_exchange(
            &mut pinger,
            &mut echoer,
            &mut wire,
            ExchangeLimits {
                deadline: SimTime::ZERO + SimDuration::from_secs(1),
                ..ExchangeLimits::default()
            },
            &mut rng,
        );
        assert!(out.finished_at <= SimTime::ZERO + SimDuration::from_secs(1));
        assert!(!out.quiesced);
    }

    #[test]
    fn direction_flip_is_involutive() {
        assert_eq!(Direction::AtoB.flip(), Direction::BtoA);
        assert_eq!(Direction::AtoB.flip().flip(), Direction::AtoB);
    }
}
