//! Fault injection for exchanges.
//!
//! Mirrors the fault-injection options that hosted smoltcp examples expose
//! (`--drop-chance`, `--corrupt-chance`, `--size-limit`): independent of the
//! link model, a [`FaultInjector`] can be layered onto an exchange to test
//! how handshake classification behaves under adverse conditions — this
//! drives the loss/resend experiments behind Figure 9.

use crate::datagram::Datagram;
use crate::rng::SimRng;

/// Configurable datagram mangler.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    /// Probability of silently dropping a datagram.
    pub drop_chance: f64,
    /// Probability of flipping one random byte of the payload.
    pub corrupt_chance: f64,
    /// Drop datagrams whose UDP payload exceeds this size (None = no limit).
    pub size_limit: Option<usize>,
    /// Probability of delivering a surviving datagram twice (spurious
    /// retransmission / routing duplication).
    pub duplicate_chance: f64,
    drops: u64,
    corruptions: u64,
    duplications: u64,
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> Self {
        FaultInjector::default()
    }

    /// Whether this injector never draws from the session RNG: both random
    /// fault probabilities are zero. A `size_limit` drop is deterministic
    /// (it depends only on the datagram size) and does not disqualify.
    pub fn is_deterministic(&self) -> bool {
        self.drop_chance == 0.0 && self.corrupt_chance == 0.0 && self.duplicate_chance == 0.0
    }

    /// An injector that drops datagrams with probability `p`.
    pub fn dropping(p: f64) -> Self {
        FaultInjector {
            drop_chance: p,
            ..FaultInjector::default()
        }
    }

    /// An injector that duplicates surviving datagrams with probability
    /// `p`.
    pub fn duplicating(p: f64) -> Self {
        FaultInjector {
            duplicate_chance: p,
            ..FaultInjector::default()
        }
    }

    /// Apply faults to a datagram. Returns `None` when the datagram is
    /// dropped, otherwise the (possibly corrupted) datagram.
    pub fn apply(&mut self, rng: &mut SimRng, mut dgram: Datagram) -> Option<Datagram> {
        if let Some(limit) = self.size_limit {
            if dgram.payload_len() > limit {
                self.drops += 1;
                return None;
            }
        }
        if self.drop_chance > 0.0 && rng.chance(self.drop_chance) {
            self.drops += 1;
            return None;
        }
        if self.corrupt_chance > 0.0 && !dgram.payload.is_empty() && rng.chance(self.corrupt_chance)
        {
            let idx = rng.below(dgram.payload.len() as u64) as usize;
            dgram.payload[idx] ^= 0x20;
            self.corruptions += 1;
        }
        Some(dgram)
    }

    /// Decide whether a datagram that survived [`FaultInjector::apply`]
    /// should additionally be delivered a second time. Draws from the
    /// session RNG only when `duplicate_chance` is nonzero, so existing
    /// profiles stay bit-for-bit unchanged.
    pub fn maybe_duplicate(&mut self, rng: &mut SimRng) -> bool {
        if self.duplicate_chance > 0.0 && rng.chance(self.duplicate_chance) {
            self.duplications += 1;
            true
        } else {
            false
        }
    }

    /// Number of datagrams dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Number of datagrams corrupted so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Number of datagrams duplicated so far.
    pub fn duplications(&self) -> u64 {
        self.duplications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn dg(len: usize) -> Datagram {
        Datagram::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            vec![0x55; len],
        )
    }

    #[test]
    fn none_passes_everything_through() {
        let mut inj = FaultInjector::none();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert!(inj.apply(&mut rng, dg(100)).is_some());
        }
        assert_eq!(inj.drops(), 0);
        assert_eq!(inj.corruptions(), 0);
    }

    #[test]
    fn size_limit_drops_large_datagrams() {
        let mut inj = FaultInjector {
            size_limit: Some(1200),
            ..FaultInjector::none()
        };
        let mut rng = SimRng::new(2);
        assert!(inj.apply(&mut rng, dg(1200)).is_some());
        assert!(inj.apply(&mut rng, dg(1201)).is_none());
        assert_eq!(inj.drops(), 1);
    }

    #[test]
    fn drop_chance_is_statistical() {
        let mut inj = FaultInjector::dropping(0.5);
        let mut rng = SimRng::new(3);
        let survived = (0..10_000)
            .filter(|_| inj.apply(&mut rng, dg(10)).is_some())
            .count();
        let rate = survived as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "survival rate was {rate}");
    }

    #[test]
    fn duplication_counts_and_never_draws_when_disabled() {
        let mut inj = FaultInjector {
            duplicate_chance: 1.0,
            ..FaultInjector::none()
        };
        assert!(!inj.is_deterministic());
        let mut rng = SimRng::new(5);
        assert!(inj.maybe_duplicate(&mut rng));
        assert!(inj.maybe_duplicate(&mut rng));
        assert_eq!(inj.duplications(), 2);

        // A zero chance must not advance the RNG stream at all.
        let mut off = FaultInjector::none();
        assert!(off.is_deterministic());
        let mut a = SimRng::new(6);
        let mut b = SimRng::new(6);
        assert!(!off.maybe_duplicate(&mut a));
        assert_eq!(a.below(1_000_000), b.below(1_000_000));
        assert_eq!(off.duplications(), 0);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let mut inj = FaultInjector {
            corrupt_chance: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SimRng::new(4);
        let original = dg(64);
        let mangled = inj.apply(&mut rng, original.clone()).unwrap();
        let diffs = original
            .payload
            .iter()
            .zip(&mangled.payload)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        assert_eq!(inj.corruptions(), 1);
    }
}
