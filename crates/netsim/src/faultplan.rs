//! [`FaultPlan`]: a named chaos-scenario overlay for campaigns.
//!
//! A [`crate::profile::NetworkProfile`] models one fixed set of path
//! conditions; the chaos axis instead sweeps fault *intensity* as an
//! orthogonal grid: loss × duplication × corruption probabilities packaged
//! as a plan that overlays the wire's [`crate::fault::FaultInjector`]s the
//! same way profiles do. Probabilities are stored in per-mille units so a
//! plan is `Eq + Hash` and can key engine artifact caches directly.
//!
//! [`FaultPlan::NONE`] is the identity: it arms nothing, draws no RNG, and
//! keeps every existing scan byte-for-byte unchanged. Any other plan arms a
//! fault injector, which makes the wire non-deterministic — scenario-class
//! memoization must (and does, via [`Wire::is_deterministic`]) bypass it.

use crate::event::Wire;

/// A chaos scenario: loss × duplication × corruption intensities applied
/// as a wire overlay. Probabilities are per-mille (`30` = 3%), making the
/// plan hashable and exact — no float keys in artifact caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Label used in reports and artifact keys.
    pub name: &'static str,
    /// Per-direction datagram drop probability, per mille.
    pub drop_per_mille: u16,
    /// Probability of a surviving datagram being delivered twice, per
    /// mille (both directions).
    pub duplicate_per_mille: u16,
    /// Server→client payload corruption probability, per mille.
    pub corrupt_per_mille: u16,
}

impl FaultPlan {
    /// The identity plan: no faults, no RNG draws, no behaviour change.
    pub const NONE: FaultPlan = FaultPlan {
        name: "none",
        drop_per_mille: 0,
        duplicate_per_mille: 0,
        corrupt_per_mille: 0,
    };

    /// Light chaos: ~1% loss with occasional duplication and corruption.
    pub const LIGHT: FaultPlan = FaultPlan {
        name: "light",
        drop_per_mille: 10,
        duplicate_per_mille: 5,
        corrupt_per_mille: 2,
    };

    /// Moderate chaos: ~3% loss — the same order as the lossy profile.
    pub const MODERATE: FaultPlan = FaultPlan {
        name: "moderate",
        drop_per_mille: 30,
        duplicate_per_mille: 15,
        corrupt_per_mille: 8,
    };

    /// Heavy chaos: ~8% loss; recovery machinery dominates handshake cost.
    pub const HEAVY: FaultPlan = FaultPlan {
        name: "heavy",
        drop_per_mille: 80,
        duplicate_per_mille: 40,
        corrupt_per_mille: 20,
    };

    /// A duplication-flavoured scenario: no loss at all, but a quarter of
    /// datagrams arrive twice (spurious retransmission / routing
    /// duplication). This is the rung that exercises
    /// [`crate::fault::FaultInjector::duplicating`] outside unit tests.
    pub const DUP_STORM: FaultPlan = FaultPlan {
        name: "dup-storm",
        drop_per_mille: 0,
        duplicate_per_mille: 250,
        corrupt_per_mille: 0,
    };

    /// The intensity ladder swept by the chaos grid, baseline first.
    pub const LADDER: [FaultPlan; 5] = [
        FaultPlan::NONE,
        FaultPlan::LIGHT,
        FaultPlan::MODERATE,
        FaultPlan::HEAVY,
        FaultPlan::DUP_STORM,
    ];

    /// Drop probability as a float chance.
    pub fn drop_chance(self) -> f64 {
        self.drop_per_mille as f64 / 1000.0
    }

    /// Duplication probability as a float chance.
    pub fn duplicate_chance(self) -> f64 {
        self.duplicate_per_mille as f64 / 1000.0
    }

    /// Corruption probability as a float chance.
    pub fn corrupt_chance(self) -> f64 {
        self.corrupt_per_mille as f64 / 1000.0
    }

    /// Whether this plan arms any fault injector at all.
    pub fn is_none(self) -> bool {
        self.drop_per_mille == 0 && self.duplicate_per_mille == 0 && self.corrupt_per_mille == 0
    }

    /// Whether a wire under this plan stays RNG-free. Mirrors
    /// [`crate::fault::FaultInjector::is_deterministic`]: any nonzero
    /// chance draws from the session RNG per datagram, so the handshake
    /// outcome stops being a pure function of its scenario class and the
    /// memoization layer must bypass it.
    pub fn is_deterministic(self) -> bool {
        self.is_none()
    }

    /// Overlay this plan onto a wire, mirroring how
    /// [`crate::profile::NetworkProfile`] overlays merge: `max()`, never
    /// replacement, so a wire that is already worse keeps its own faults
    /// (and its accumulated counters). Drops and duplications apply in
    /// both directions; corruption targets the server→client direction
    /// like the lossy profile.
    pub fn apply(self, wire: &mut Wire) {
        if self.is_none() {
            return;
        }
        let drop = self.drop_chance();
        wire.fault_a_to_b.drop_chance = wire.fault_a_to_b.drop_chance.max(drop);
        wire.fault_b_to_a.drop_chance = wire.fault_b_to_a.drop_chance.max(drop);
        let dup = self.duplicate_chance();
        wire.fault_a_to_b.duplicate_chance = wire.fault_a_to_b.duplicate_chance.max(dup);
        wire.fault_b_to_a.duplicate_chance = wire.fault_b_to_a.duplicate_chance.max(dup);
        wire.fault_b_to_a.corrupt_chance =
            wire.fault_b_to_a.corrupt_chance.max(self.corrupt_chance());
    }

    /// Convenience: a copy of a base wire with this plan overlaid.
    pub fn wire_from(self, base: &Wire) -> Wire {
        let mut wire = base.clone();
        self.apply(&mut wire);
        wire
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn base() -> Wire {
        Wire::ideal(SimDuration::from_millis(20))
    }

    #[test]
    fn none_is_the_identity() {
        let wire = FaultPlan::NONE.wire_from(&base());
        assert_eq!(wire.fault_a_to_b.drop_chance, 0.0);
        assert_eq!(wire.fault_a_to_b.duplicate_chance, 0.0);
        assert_eq!(wire.fault_b_to_a.corrupt_chance, 0.0);
        assert!(wire.is_deterministic());
        assert!(FaultPlan::NONE.is_deterministic());
        assert!(FaultPlan::default().is_none());
    }

    #[test]
    fn ladder_arms_injectors_monotonically() {
        let rungs = [FaultPlan::LIGHT, FaultPlan::MODERATE, FaultPlan::HEAVY];
        let mut prev = 0.0;
        for plan in rungs {
            let wire = plan.wire_from(&base());
            assert!(wire.fault_a_to_b.drop_chance > prev, "{plan}");
            assert_eq!(wire.fault_a_to_b.drop_chance, plan.drop_chance());
            assert_eq!(wire.fault_b_to_a.duplicate_chance, plan.duplicate_chance());
            assert_eq!(wire.fault_b_to_a.corrupt_chance, plan.corrupt_chance());
            prev = wire.fault_a_to_b.drop_chance;
        }
    }

    #[test]
    fn determinism_predicate_matches_the_planned_wire() {
        // Mirror of the NetworkProfile predicate test: the plan-level
        // shortcut must agree with the component-level RNG audit of the
        // wire it produces. In particular a purely *duplicating* wire is
        // non-deterministic, so the memo path can never replay it.
        for plan in FaultPlan::LADDER {
            let wire = plan.wire_from(&base());
            assert_eq!(wire.is_deterministic(), plan.is_deterministic(), "{plan}");
        }
        let dup_wire = FaultPlan::DUP_STORM.wire_from(&base());
        assert_eq!(dup_wire.fault_a_to_b.drop_chance, 0.0);
        assert!(dup_wire.fault_a_to_b.duplicate_chance > 0.0);
        assert!(!dup_wire.is_deterministic());
        assert!(!FaultPlan::DUP_STORM.is_deterministic());
    }

    #[test]
    fn overlay_merges_with_max_not_replacement() {
        let mut heavy = base();
        heavy.fault_a_to_b.drop_chance = 0.5;
        heavy.fault_b_to_a.duplicate_chance = 0.9;
        let wire = FaultPlan::LIGHT.wire_from(&heavy);
        assert_eq!(wire.fault_a_to_b.drop_chance, 0.5);
        assert_eq!(wire.fault_b_to_a.duplicate_chance, 0.9);
        assert_eq!(
            wire.fault_b_to_a.drop_chance,
            FaultPlan::LIGHT.drop_chance()
        );
    }

    #[test]
    fn ladder_names_are_distinct() {
        let mut names: Vec<&str> = FaultPlan::LADDER.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultPlan::LADDER.len());
    }
}
