//! # quicert-netsim — deterministic network simulation substrate
//!
//! This crate provides the "Internet" that the rest of the workspace measures:
//! simulated time, UDP datagrams, link models with latency / loss / MTU
//! constraints, tunnel encapsulation (the load-balancer effect of §4.1 of the
//! paper), a network telescope for observing backscatter from spoofed
//! handshakes (§4.3), named [`NetworkProfile`] link-condition overlays, and
//! [`SimNet`] — a discrete-event scheduler multiplexing any number of
//! endpoint pairs on one shared timeline ([`run_exchange`] remains as its
//! classic two-endpoint wrapper).
//!
//! Everything is deterministic: all randomness flows from a [`SimRng`] seeded
//! with a caller-provided `u64`, so every experiment in the workspace is
//! reproducible bit-for-bit.
//!
//! The design follows the event-driven style of stacks like smoltcp: no
//! threads, no async runtime; endpoints are state machines that consume and
//! produce datagrams when polled.

pub mod addr;
pub mod datagram;
pub mod event;
pub mod fault;
pub mod faultplan;
pub mod link;
pub mod profile;
pub mod rng;
pub mod simnet;
pub mod telescope;
pub mod time;

pub use addr::{Ipv4Net, ANY_PORT};
pub use datagram::{Datagram, UDP_IPV4_OVERHEAD};
pub use event::{run_exchange, Endpoint, ExchangeLimits, ExchangeOutcome, TraceEvent, Wire};
pub use fault::FaultInjector;
pub use faultplan::FaultPlan;
pub use link::{Delivery, LinkModel};
pub use profile::NetworkProfile;
pub use rng::{FastHashBuilder, FastHasher, SimRng};
pub use simnet::{SessionId, SimNet};
pub use telescope::{BackscatterRecord, Telescope};
pub use time::{SimDuration, SimTime};
