//! Link models: latency, jitter, loss, MTU and tunnel encapsulation.
//!
//! A [`LinkModel`] describes one direction of a path. The MTU check models
//! the load-balancer failure mode from §4.1 of the paper: packet tunnelling
//! between a front-end and back-end server adds encapsulation headers, so a
//! client datagram that fits the 1500-byte Ethernet MTU at the edge can
//! exceed the internal MTU once encapsulated, and large client `Initial`s
//! silently vanish.

use crate::datagram::Datagram;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One direction of a network path.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Base one-way delay.
    pub latency: SimDuration,
    /// Uniform jitter added on top of `latency` (0 = deterministic delay).
    pub jitter: SimDuration,
    /// Independent per-datagram loss probability.
    pub loss: f64,
    /// Path MTU in bytes, applied to the full IP packet size
    /// ([`Datagram::wire_len`]) *after* encapsulation overhead is added.
    pub mtu: usize,
    /// Extra bytes added to every packet by tunnel encapsulation (e.g.
    /// IP-in-IP or GUE between a load balancer and its back-ends). Zero for
    /// directly-connected servers.
    pub encapsulation_overhead: usize,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency: SimDuration::from_millis(20),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            mtu: 1500,
            encapsulation_overhead: 0,
        }
    }
}

/// The outcome of offering a datagram to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Will arrive at the far end at the given time.
    Arrives(SimTime),
    /// Dropped by random loss.
    LostRandom,
    /// Dropped because the encapsulated packet exceeded the path MTU.
    /// Carries the effective size that was rejected.
    LostMtu(usize),
}

impl LinkModel {
    /// A perfect link: no loss, fixed delay, standard MTU.
    pub fn ideal(latency: SimDuration) -> Self {
        LinkModel {
            latency,
            ..LinkModel::default()
        }
    }

    /// A link behind a tunnelling load balancer (§4.1): `overhead` bytes of
    /// encapsulation are added before the 1500-byte internal MTU applies.
    pub fn tunneled(latency: SimDuration, overhead: usize) -> Self {
        LinkModel {
            latency,
            encapsulation_overhead: overhead,
            ..LinkModel::default()
        }
    }

    /// Whether deliveries on this link never draw from the session RNG:
    /// no random loss and no jitter. Latency, encapsulation overhead and
    /// MTU drops are all deterministic functions of the datagram.
    pub fn is_deterministic(&self) -> bool {
        self.loss == 0.0 && self.jitter == SimDuration::ZERO
    }

    /// Effective on-path size of a datagram on this link.
    pub fn effective_size(&self, dgram: &Datagram) -> usize {
        dgram.wire_len() + self.encapsulation_overhead
    }

    /// Offer a datagram to the link at time `now`.
    pub fn deliver(&self, rng: &mut SimRng, dgram: &Datagram, now: SimTime) -> Delivery {
        let size = self.effective_size(dgram);
        if size > self.mtu {
            return Delivery::LostMtu(size);
        }
        if self.loss > 0.0 && rng.chance(self.loss) {
            return Delivery::LostRandom;
        }
        let jitter = if self.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.below(self.jitter.as_nanos().max(1)))
        };
        Delivery::Arrives(now + self.latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn dgram(payload: usize) -> Datagram {
        Datagram::new(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 1),
            1111,
            443,
            vec![0; payload],
        )
    }

    #[test]
    fn ideal_link_delivers_with_fixed_delay() {
        let link = LinkModel::ideal(SimDuration::from_millis(10));
        let mut rng = SimRng::new(1);
        let now = SimTime::from_nanos(500);
        match link.deliver(&mut rng, &dgram(1200), now) {
            Delivery::Arrives(at) => assert_eq!(at, now + SimDuration::from_millis(10)),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn mtu_drop_is_deterministic() {
        // 1472 payload + 28 headers = 1500 exactly -> fits.
        let link = LinkModel::ideal(SimDuration::from_millis(1));
        let mut rng = SimRng::new(2);
        assert!(matches!(
            link.deliver(&mut rng, &dgram(1472), SimTime::ZERO),
            Delivery::Arrives(_)
        ));
        // One more byte exceeds the MTU.
        assert_eq!(
            link.deliver(&mut rng, &dgram(1473), SimTime::ZERO),
            Delivery::LostMtu(1501)
        );
    }

    #[test]
    fn tunnel_overhead_shrinks_usable_payload() {
        // With 40 bytes of encapsulation, a 1472-byte payload (fine on a
        // direct path) exceeds the internal MTU: the §4.1 load-balancer bug.
        let link = LinkModel::tunneled(SimDuration::from_millis(1), 40);
        let mut rng = SimRng::new(3);
        assert_eq!(
            link.deliver(&mut rng, &dgram(1472), SimTime::ZERO),
            Delivery::LostMtu(1540)
        );
        // 1432 payload + 28 + 40 = 1500 -> fits.
        assert!(matches!(
            link.deliver(&mut rng, &dgram(1432), SimTime::ZERO),
            Delivery::Arrives(_)
        ));
    }

    #[test]
    fn loss_rate_is_respected() {
        let link = LinkModel {
            loss: 0.3,
            ..LinkModel::ideal(SimDuration::from_millis(1))
        };
        let mut rng = SimRng::new(4);
        let d = dgram(100);
        let lost = (0..20_000)
            .filter(|_| {
                matches!(
                    link.deliver(&mut rng, &d, SimTime::ZERO),
                    Delivery::LostRandom
                )
            })
            .count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "loss rate was {rate}");
    }

    #[test]
    fn jitter_stays_within_bound() {
        let link = LinkModel {
            jitter: SimDuration::from_millis(5),
            ..LinkModel::ideal(SimDuration::from_millis(10))
        };
        let mut rng = SimRng::new(5);
        let d = dgram(100);
        for _ in 0..500 {
            match link.deliver(&mut rng, &d, SimTime::ZERO) {
                Delivery::Arrives(at) => {
                    assert!(at >= SimTime::ZERO + SimDuration::from_millis(10));
                    assert!(at < SimTime::ZERO + SimDuration::from_millis(15));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
