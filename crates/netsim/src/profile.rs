//! Network scenario profiles: named link-condition overlays for scans.
//!
//! The paper's measurements come from the real Internet, where paths are
//! lossy, long, and sometimes tunneled. A [`NetworkProfile`] packages one
//! such condition as an overlay on a base [`Wire`] (built from
//! [`crate::link::LinkModel`] and [`crate::fault::FaultInjector`]
//! settings), giving campaigns a
//! scenario axis orthogonal to the Initial-size sweep: the same service
//! population can be scanned under ideal, lossy, long-fat or tunneled
//! paths and the handshake-class shares compared per profile.
//!
//! [`NetworkProfile::Ideal`] applies no overlay at all, so an ideal-profile
//! campaign reproduces the pre-profile pipeline byte-for-byte.

use crate::event::Wire;
use crate::time::SimDuration;

/// A named link-condition overlay applied on top of a base wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkProfile {
    /// The base wire untouched: fixed latency, no loss, no faults. This is
    /// the pre-profile behaviour and the default for every campaign.
    Ideal,
    /// Independent random datagram drops in both directions plus occasional
    /// payload corruption toward the client — the flaky access-network
    /// case. Drops go through the [`crate::fault::FaultInjector`], so
    /// per-session fault counters surface in scan results.
    Lossy,
    /// A long fat network: one-way latency stretched
    /// [`LONG_FAT_LATENCY_FACTOR`](NetworkProfile::LONG_FAT_LATENCY_FACTOR)×
    /// with a few milliseconds of jitter — the intercontinental path case.
    /// Reachability is unchanged, but the jitter exposes how fragile
    /// timing-based handshake classification is: completion is never at
    /// *exactly* one nominal RTT any more, so the 1-RTT and Amplification
    /// classes collapse into Multi-RTT.
    LongFat,
    /// Every client→server datagram pays tunnel encapsulation overhead
    /// before the 1500-byte internal MTU applies — the §4.1 load-balancer
    /// failure imposed on the whole population, so large Initials vanish.
    Tunneled,
}

impl NetworkProfile {
    /// Every profile, in report order (ideal first).
    pub const ALL: [NetworkProfile; 4] = [
        NetworkProfile::Ideal,
        NetworkProfile::Lossy,
        NetworkProfile::LongFat,
        NetworkProfile::Tunneled,
    ];

    /// Per-direction drop probability of the lossy profile.
    pub const LOSSY_DROP_CHANCE: f64 = 0.03;
    /// Server→client corruption probability of the lossy profile.
    pub const LOSSY_CORRUPT_CHANCE: f64 = 0.01;
    /// Latency multiplier of the long-fat profile.
    pub const LONG_FAT_LATENCY_FACTOR: u32 = 4;
    /// Jitter added by the long-fat profile.
    pub const LONG_FAT_JITTER: SimDuration = SimDuration::from_millis(5);
    /// Encapsulation overhead of the tunneled profile (IP-in-IP + GUE-ish).
    pub const TUNNEL_OVERHEAD: usize = 40;

    /// Label used in reports and artifact keys.
    pub fn name(self) -> &'static str {
        match self {
            NetworkProfile::Ideal => "ideal",
            NetworkProfile::Lossy => "lossy",
            NetworkProfile::LongFat => "long-fat",
            NetworkProfile::Tunneled => "tunneled",
        }
    }

    /// Overlay this profile onto a base wire. [`NetworkProfile::Ideal`] is
    /// the identity, so ideal-profile scans stay bit-for-bit identical to
    /// profile-unaware ones.
    pub fn apply(self, wire: &mut Wire) {
        match self {
            NetworkProfile::Ideal => {}
            NetworkProfile::Lossy => {
                // Overlay, not replacement: a wire with heavier faults (or
                // accumulated counters) keeps them, mirroring Tunneled.
                wire.fault_a_to_b.drop_chance =
                    wire.fault_a_to_b.drop_chance.max(Self::LOSSY_DROP_CHANCE);
                wire.fault_b_to_a.drop_chance =
                    wire.fault_b_to_a.drop_chance.max(Self::LOSSY_DROP_CHANCE);
                wire.fault_b_to_a.corrupt_chance = wire
                    .fault_b_to_a
                    .corrupt_chance
                    .max(Self::LOSSY_CORRUPT_CHANCE);
            }
            NetworkProfile::LongFat => {
                wire.a_to_b.latency = wire
                    .a_to_b
                    .latency
                    .saturating_mul(Self::LONG_FAT_LATENCY_FACTOR);
                wire.b_to_a.latency = wire
                    .b_to_a
                    .latency
                    .saturating_mul(Self::LONG_FAT_LATENCY_FACTOR);
                wire.a_to_b.jitter = Self::LONG_FAT_JITTER;
                wire.b_to_a.jitter = Self::LONG_FAT_JITTER;
            }
            NetworkProfile::Tunneled => {
                wire.a_to_b.encapsulation_overhead = wire
                    .a_to_b
                    .encapsulation_overhead
                    .max(Self::TUNNEL_OVERHEAD);
            }
        }
    }

    /// Convenience: a profiled copy of a base wire.
    pub fn wire_from(self, base: &Wire) -> Wire {
        let mut wire = base.clone();
        self.apply(&mut wire);
        wire
    }

    /// Whether this profile's overlay consumes no randomness: applied to a
    /// deterministic base wire, the profiled wire never draws from the
    /// session RNG, so a handshake outcome is a pure function of its
    /// scenario class.
    ///
    /// [`Ideal`](NetworkProfile::Ideal) is the identity and
    /// [`Tunneled`](NetworkProfile::Tunneled) only adds fixed encapsulation
    /// overhead. [`Lossy`](NetworkProfile::Lossy) arms the fault injectors
    /// and [`LongFat`](NetworkProfile::LongFat) adds jitter — both draw RNG
    /// per datagram, so their outcomes depend on the per-record seed beyond
    /// the class key. Note "fault-free" is not the same thing: long-fat
    /// injects no faults yet is still non-deterministic through jitter.
    pub fn is_deterministic(self) -> bool {
        matches!(self, NetworkProfile::Ideal | NetworkProfile::Tunneled)
    }
}

impl std::fmt::Display for NetworkProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn base() -> Wire {
        Wire::ideal(SimDuration::from_millis(20))
    }

    #[test]
    fn ideal_is_the_identity() {
        let wire = NetworkProfile::Ideal.wire_from(&base());
        let reference = base();
        assert_eq!(wire.a_to_b.latency, reference.a_to_b.latency);
        assert_eq!(wire.a_to_b.loss, reference.a_to_b.loss);
        assert_eq!(wire.a_to_b.encapsulation_overhead, 0);
        assert_eq!(wire.fault_a_to_b.drop_chance, 0.0);
        assert_eq!(wire.fault_b_to_a.corrupt_chance, 0.0);
    }

    #[test]
    fn lossy_arms_the_fault_injectors() {
        let wire = NetworkProfile::Lossy.wire_from(&base());
        assert_eq!(
            wire.fault_a_to_b.drop_chance,
            NetworkProfile::LOSSY_DROP_CHANCE
        );
        assert_eq!(
            wire.fault_b_to_a.corrupt_chance,
            NetworkProfile::LOSSY_CORRUPT_CHANCE
        );
        // Latency untouched: loss is orthogonal to path length.
        assert_eq!(wire.rtt(), base().rtt());
    }

    #[test]
    fn long_fat_stretches_the_path() {
        let wire = NetworkProfile::LongFat.wire_from(&base());
        assert_eq!(
            wire.a_to_b.latency,
            SimDuration::from_millis(20).saturating_mul(4)
        );
        assert_eq!(wire.a_to_b.jitter, NetworkProfile::LONG_FAT_JITTER);
    }

    #[test]
    fn tunneled_adds_overhead_without_shrinking_existing_tunnels() {
        let wire = NetworkProfile::Tunneled.wire_from(&base());
        assert_eq!(
            wire.a_to_b.encapsulation_overhead,
            NetworkProfile::TUNNEL_OVERHEAD
        );
        // A wire already behind a heavier tunnel keeps its own overhead.
        let mut heavy = base();
        heavy.a_to_b.encapsulation_overhead = 64;
        assert_eq!(
            NetworkProfile::Tunneled
                .wire_from(&heavy)
                .a_to_b
                .encapsulation_overhead,
            64
        );
    }

    #[test]
    fn determinism_predicate_matches_the_profiled_wire() {
        // The profile-level shortcut must agree with the component-level
        // RNG audit of the wire it actually produces: overlaying onto a
        // deterministic base wire stays deterministic exactly for the
        // profiles the predicate admits.
        for profile in NetworkProfile::ALL {
            let wire = profile.wire_from(&base());
            assert_eq!(
                wire.is_deterministic(),
                profile.is_deterministic(),
                "{profile}"
            );
        }
        assert!(NetworkProfile::Ideal.is_deterministic());
        assert!(NetworkProfile::Tunneled.is_deterministic());
        assert!(!NetworkProfile::Lossy.is_deterministic());
        assert!(!NetworkProfile::LongFat.is_deterministic());
        // A non-deterministic base wire stays non-deterministic under any
        // profile — the predicate only speaks for the overlay.
        let mut jittery = base();
        jittery.a_to_b.jitter = SimDuration::from_millis(1);
        for profile in NetworkProfile::ALL {
            assert!(!profile.wire_from(&jittery).is_deterministic());
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = NetworkProfile::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NetworkProfile::ALL.len());
    }
}
