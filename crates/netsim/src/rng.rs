//! Deterministic random number generation.
//!
//! The whole workspace derives its randomness from [`SimRng`], a SplitMix64
//! generator. SplitMix64 passes BigCrush, is trivially seedable, and — unlike
//! external crates — guarantees that the byte streams backing certificates,
//! packet loss and population sampling never change underneath us.
//!
//! Two idioms are used throughout the workspace:
//!
//! * a *root* RNG seeded from the experiment seed drives global decisions;
//! * per-entity RNGs are forked via [`SimRng::fork`] with a label hash, so
//!   that generating domain #57 never depends on how many random draws
//!   domain #56 consumed (stable under refactoring).

/// A deterministic SplitMix64 random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including zero) is valid.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Fork an independent generator for a labelled sub-entity.
    ///
    /// The child stream is a pure function of `(parent seed, label)`, so
    /// sibling entities get decorrelated streams and the draw order of one
    /// entity can never perturb another.
    pub fn fork(&self, label: u64) -> SimRng {
        let mut mix = SimRng {
            state: self.state ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Warm the state so that adjacent labels diverge immediately.
        mix.next_u64();
        mix
    }

    /// Fork using a string label, hashed with FNV-1a.
    pub fn fork_str(&self, label: &str) -> SimRng {
        self.fork(fnv1a(label.as_bytes()))
    }

    /// Next raw 64-bit value (SplitMix64 step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection branch: only taken when low < bound; re-check the
            // classic threshold to stay unbiased.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform floating point value in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits of the output give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Choose an index according to non-negative `weights`.
    ///
    /// Returns `None` when all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        self.weighted_index_by(weights.len(), |i| weights[i])
    }

    /// [`SimRng::weighted_index`] over computed weights: chooses an index in
    /// `0..len` according to the non-negative weights produced by `weight`,
    /// without materialising a weight slice.
    ///
    /// Draw-for-draw identical to `weighted_index` over the same weights
    /// (same summation order, same single `f64` consumed), so hot paths can
    /// switch to it without perturbing any seeded stream.
    pub fn weighted_index_by(
        &mut self,
        len: usize,
        weight: impl Fn(usize) -> f64,
    ) -> Option<usize> {
        let mut total = 0.0f64;
        for i in 0..len {
            let w = weight(i);
            if w > 0.0 {
                total += w;
            }
        }
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for i in 0..len {
            let w = weight(i);
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        (0..len).rev().find(|&i| weight(i) > 0.0)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Standard normal draw (Box–Muller transform).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal draw parameterised by the *underlying* normal's mu/sigma.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fill a buffer with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let extra = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&extra[..rem.len()]);
        }
    }

    /// Produce a vector of `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }
}

/// A fast, non-cryptographic [`std::hash::Hasher`] for hot in-process maps.
///
/// `HashMap`'s default SipHash costs more than the rest of a probe on the
/// million-record scan path, where the scenario-class memo performs one
/// lookup per record. This multiply-rotate hasher (the fxhash scheme) is
/// an order of magnitude cheaper and — since the keyed maps live and die
/// inside one process and are never fed attacker-controlled keys — the
/// HashDoS resistance being given up buys nothing here. Use via
/// [`FastHashBuilder`]: `HashMap<K, V, FastHashBuilder>`.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

/// [`std::hash::BuildHasherDefault`] over [`FastHasher`] — the third type
/// parameter for hot `HashMap`s.
pub type FastHashBuilder = std::hash::BuildHasherDefault<FastHasher>;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(0x517C_C1B7_2722_0A9B);
    }
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One SplitMix-style finalizer so low-entropy states still spread
        // across the map's low index bits.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// FNV-1a hash of a byte string, used to derive fork labels from names.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(10);
        let mut c1_again = root.fork(10);
        let mut c2 = root.fork(11);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers_small_bounds() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SimRng::new(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::new(11);
        let hits = (0..50_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(13);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_index_by_matches_slice_version() {
        let weights = [0.0, 2.5, 0.75, 0.0, 4.0, 1e-9];
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..10_000 {
            assert_eq!(
                a.weighted_index(&weights),
                b.weighted_index_by(weights.len(), |i| weights[i])
            );
        }
        // Both consumed exactly the same number of draws.
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(b.weighted_index_by(0, |_| 1.0), None);
        assert_eq!(b.weighted_index_by(3, |_| 0.0), None);
    }

    #[test]
    fn normal_has_expected_moments() {
        let mut rng = SimRng::new(17);
        let n = 50_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "var was {var}");
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = SimRng::new(19);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let v = rng.bytes(len);
            assert_eq!(v.len(), len);
        }
        // Non-trivial buffers should not be all zeros.
        let v = rng.bytes(64);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    fn fnv1a_distinguishes_labels() {
        assert_ne!(fnv1a(b"cloudflare"), fnv1a(b"google"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn fast_hasher_is_stable_and_discriminating() {
        use std::collections::HashMap;
        use std::hash::{Hash, Hasher};

        let hash_of = |key: &(u64, u8, bool)| {
            let mut h = FastHasher::default();
            key.hash(&mut h);
            h.finish()
        };
        let a = (7u64, 3u8, true);
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&(7, 3, false)));
        assert_ne!(hash_of(&a), hash_of(&(8, 3, true)));
        // Nearby small integers — the common key shape — must not collide
        // wholesale, or the memo map degenerates into a scan.
        let mut seen: HashMap<u64, (u64, u8, bool), FastHashBuilder> = HashMap::default();
        for x in 0..1_000u64 {
            for y in 0..4u8 {
                let key = (x, y, false);
                let h = hash_of(&key);
                assert!(seen.insert(h, key).is_none(), "collision at {key:?}");
            }
        }
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut rng = SimRng::new(23);
        let mut vals: Vec<f64> = (0..10_000).map(|_| rng.log_normal(7.0, 0.6)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean > median, "log-normal should be right-skewed");
        // Median of log-normal(mu, sigma) is exp(mu) ≈ 1096.6.
        assert!((median / 7.0f64.exp() - 1.0).abs() < 0.1);
    }
}
