//! [`SimNet`]: a discrete-event network core multiplexing N endpoint pairs
//! on one shared timeline.
//!
//! The original simulator ran one isolated two-endpoint exchange per call,
//! rebuilding its event heap and scratch buffers for every probe. `SimNet`
//! generalises that core: any number of *sessions* — each a pair of
//! [`Endpoint`] state machines joined by its own [`Wire`] — share a single
//! event heap and outbox buffer, so a scanner can batch an entire shard of
//! domain probes onto one network and amortise the per-probe allocation
//! cost. [`crate::event::run_exchange`] is retained as a thin one-session
//! wrapper over this scheduler.
//!
//! ## Determinism and batch-size invariance
//!
//! Sessions never interact: each owns its wire, its fault injectors, its
//! [`SimRng`] stream, its timers and its trace. Events are ordered by
//! `(timestamp, session, deliveries-before-timers, sequence)`, which makes
//! the *per-session* processing order — and therefore every per-session RNG
//! draw — exactly the order the two-endpoint loop used. Consequently a
//! session's [`ExchangeOutcome`] is bit-for-bit identical whether it runs
//! alone, in a batch of ten, or in a batch of ten thousand; the property
//! tests pin this invariance and the equivalence against the pre-`SimNet`
//! loop.
//!
//! ## Timers
//!
//! Endpoint timers are re-polled after every event the endpoint handles.
//! Rather than rebuilding a heap entry per poll, `SimNet` keeps one *live*
//! timer event per endpoint side and lazily discards superseded entries: a
//! queued timer carries the epoch of the (session, side) timer slot at push
//! time, and a pop with a stale epoch is skipped. This preserves the
//! two-endpoint loop's semantics, where `next_timer` was consulted fresh on
//! every iteration.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use quicert_obs::{Counter, MetricsRegistry};

use crate::datagram::Datagram;
use crate::event::{
    Direction, DropReason, Endpoint, ExchangeLimits, ExchangeOutcome, TraceEvent, Wire,
};
use crate::link::{Delivery, LinkModel};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Process-wide event-loop counters on [`MetricsRegistry::global`],
/// batch-flushed once per [`SimNet::run`] so the per-event hot path never
/// touches a shared atomic.
struct NetMetrics {
    events: Arc<Counter>,
    timer_fires: Arc<Counter>,
    drops: Arc<Counter>,
    corruptions: Arc<Counter>,
    duplications: Arc<Counter>,
}

fn net_metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = MetricsRegistry::global();
        NetMetrics {
            events: registry.counter(
                "quicert_netsim_events_total",
                "SimNet events processed (deliveries and timer fires)",
            ),
            timer_fires: registry.counter(
                "quicert_netsim_timer_fires_total",
                "SimNet timer events fired",
            ),
            drops: registry.counter(
                "quicert_netsim_fault_drops_total",
                "Datagrams removed by fault injectors",
            ),
            corruptions: registry.counter(
                "quicert_netsim_fault_corruptions_total",
                "Datagrams corrupted by fault injectors",
            ),
            duplications: registry.counter(
                "quicert_netsim_fault_duplications_total",
                "Datagrams duplicated by fault injectors",
            ),
        }
    })
}

/// Handle to one session on a [`SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

impl SessionId {
    /// The session's index, in `add_session` order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which endpoint of a session a timer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

impl Side {
    fn idx(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// What a queued event does when it fires.
enum EventKind {
    /// A datagram arriving at the session's far endpoint.
    Delivery {
        seq: u64,
        direction: Direction,
        dgram: Datagram,
    },
    /// A timer callback on one endpoint; `epoch` validates it against the
    /// session's current timer slot (stale epochs are discarded).
    Timer { side: Side, epoch: u64 },
}

struct QueuedEvent {
    at: SimTime,
    session: usize,
    kind: EventKind,
}

impl QueuedEvent {
    /// Total ordering key. Within a session at one timestamp, deliveries
    /// fire before timers (an endpoint sees input before its co-scheduled
    /// timeout, matching real stacks), deliveries order by send sequence,
    /// and timer A fires before timer B — exactly the tie-breaks of the
    /// original two-endpoint loop.
    fn key(&self) -> (SimTime, usize, u8, u64, u64) {
        match &self.kind {
            EventKind::Delivery { seq, .. } => (self.at, self.session, 0, *seq, 0),
            EventKind::Timer { side, epoch } => {
                (self.at, self.session, 1, side.idx() as u64, *epoch)
            }
        }
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// One endpoint pair and all of its private state.
struct Session<'e> {
    a: Box<dyn Endpoint + 'e>,
    b: Box<dyn Endpoint + 'e>,
    wire: Wire,
    limits: ExchangeLimits,
    rng: SimRng,
    trace: Vec<TraceEvent>,
    /// Simulated time of the session's last processed event.
    now: SimTime,
    /// Per-session datagram sequence counter (delivery tie-break).
    seq: u64,
    /// Processed events, checked against `limits.max_events`.
    events: usize,
    /// Deliveries currently queued for this session.
    pending_deliveries: usize,
    /// Last `next_timer()` answer pushed per side; `None` = no live event.
    timer_target: [Option<SimTime>; 2],
    /// Epoch of each side's timer slot; queued timers with older epochs are
    /// stale and skipped on pop.
    timer_epoch: [u64; 2],
    /// Fault-injector counters (drops, corruptions, duplications) at
    /// session creation, so outcomes report the faults of *this* exchange
    /// even on a reused wire.
    faults_before: (u64, u64, u64),
    /// Whether this session's fault deltas were already flushed to the
    /// global metrics registry (guards against double-counting if `run` is
    /// called again).
    metrics_flushed: bool,
    finished: bool,
    quiesced: bool,
}

impl Session<'_> {
    fn both_done(&self) -> bool {
        self.a.is_done() && self.b.is_done()
    }

    fn fault_drops(&self) -> u64 {
        self.wire.fault_a_to_b.drops() + self.wire.fault_b_to_a.drops() - self.faults_before.0
    }

    fn fault_corruptions(&self) -> u64 {
        self.wire.fault_a_to_b.corruptions() + self.wire.fault_b_to_a.corruptions()
            - self.faults_before.1
    }

    fn fault_duplications(&self) -> u64 {
        self.wire.fault_a_to_b.duplications() + self.wire.fault_b_to_a.duplications()
            - self.faults_before.2
    }
}

/// A batch of independent two-endpoint sessions scheduled on one event heap.
///
/// ```
/// use quicert_netsim::{SimNet, SimRng, Wire, ExchangeLimits, SimDuration};
/// # use quicert_netsim::{Datagram, Endpoint, SimTime};
/// # struct Quiet;
/// # impl Endpoint for Quiet {
/// #     fn on_datagram(&mut self, _: &Datagram, _: SimTime, _: &mut Vec<Datagram>) {}
/// #     fn on_timer(&mut self, _: SimTime, _: &mut Vec<Datagram>) {}
/// #     fn next_timer(&self) -> Option<SimTime> { None }
/// #     fn is_done(&self) -> bool { true }
/// # }
/// let mut net = SimNet::new();
/// let id = net.add_session(
///     Box::new(Quiet),
///     Box::new(Quiet),
///     Wire::ideal(SimDuration::from_millis(10)),
///     ExchangeLimits::default(),
///     SimRng::new(1),
/// );
/// net.run();
/// assert!(net.take_outcome(id).quiesced);
/// ```
#[derive(Default)]
pub struct SimNet<'e> {
    sessions: Vec<Session<'e>>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    /// Shared scratch buffer endpoints write their transmissions into.
    outbox: Vec<Datagram>,
}

impl fmt::Debug for SimNet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("sessions", &self.sessions.len())
            .field("queued_events", &self.queue.len())
            .finish()
    }
}

impl<'e> SimNet<'e> {
    /// An empty network.
    pub fn new() -> Self {
        SimNet::default()
    }

    /// An empty network with room for `sessions` endpoint pairs.
    pub fn with_capacity(sessions: usize) -> Self {
        SimNet {
            sessions: Vec::with_capacity(sessions),
            queue: BinaryHeap::new(),
            outbox: Vec::new(),
        }
    }

    /// Number of sessions added so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the network has no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Add one session: endpoint `a` initiates toward endpoint `b` over
    /// `wire`. Both `start` hooks run immediately at `SimTime::ZERO` — every
    /// session lives on its own virtual timeline starting at zero,
    /// regardless of when it is added or how the batch interleaves.
    pub fn add_session(
        &mut self,
        a: Box<dyn Endpoint + 'e>,
        b: Box<dyn Endpoint + 'e>,
        wire: Wire,
        limits: ExchangeLimits,
        rng: SimRng,
    ) -> SessionId {
        let idx = self.sessions.len();
        let faults_before = (
            wire.fault_a_to_b.drops() + wire.fault_b_to_a.drops(),
            wire.fault_a_to_b.corruptions() + wire.fault_b_to_a.corruptions(),
            wire.fault_a_to_b.duplications() + wire.fault_b_to_a.duplications(),
        );
        let mut sess = Session {
            a,
            b,
            wire,
            limits,
            rng,
            trace: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            events: 0,
            pending_deliveries: 0,
            timer_target: [None, None],
            timer_epoch: [0, 0],
            faults_before,
            metrics_flushed: false,
            finished: false,
            quiesced: false,
        };
        sess.a.start(SimTime::ZERO, &mut self.outbox);
        enqueue_outbox(
            &mut sess,
            idx,
            Direction::AtoB,
            SimTime::ZERO,
            &mut self.outbox,
            &mut self.queue,
        );
        sess.b.start(SimTime::ZERO, &mut self.outbox);
        enqueue_outbox(
            &mut sess,
            idx,
            Direction::BtoA,
            SimTime::ZERO,
            &mut self.outbox,
            &mut self.queue,
        );
        sync_timers_and_check(&mut sess, idx, &mut self.queue);
        self.sessions.push(sess);
        SessionId(idx)
    }

    /// Whether a session has finished (quiesced or hit a limit).
    pub fn is_finished(&self, id: SessionId) -> bool {
        self.sessions[id.0].finished
    }

    /// The session's wire (fault-injector counters live here).
    pub fn wire(&self, id: SessionId) -> &Wire {
        &self.sessions[id.0].wire
    }

    /// Drive every session until it quiesces or hits its limits.
    ///
    /// Events across sessions interleave in global timestamp order, but
    /// since sessions share no state, each session's outcome is identical
    /// to running it alone.
    pub fn run(&mut self) {
        let mut events_processed = 0u64;
        let mut timer_events = 0u64;
        while let Some(Reverse(ev)) = self.queue.pop() {
            let s = ev.session;
            let sess = &mut self.sessions[s];
            if sess.finished {
                continue;
            }
            if let EventKind::Timer { side, epoch } = ev.kind {
                if sess.timer_epoch[side.idx()] != epoch {
                    continue;
                }
            }
            // The first live event of a session is its earliest pending
            // activity; past the deadline the session stops un-advanced,
            // exactly like the two-endpoint loop.
            if ev.at > sess.limits.deadline {
                sess.quiesced = sess.both_done();
                sess.finished = true;
                continue;
            }
            sess.now = ev.at;
            sess.events += 1;
            events_processed += 1;
            if matches!(ev.kind, EventKind::Timer { .. }) {
                timer_events += 1;
            }
            match ev.kind {
                EventKind::Delivery {
                    direction, dgram, ..
                } => {
                    sess.pending_deliveries -= 1;
                    let reply_dir = match direction {
                        Direction::AtoB => {
                            sess.b.on_datagram(&dgram, ev.at, &mut self.outbox);
                            Direction::BtoA
                        }
                        Direction::BtoA => {
                            sess.a.on_datagram(&dgram, ev.at, &mut self.outbox);
                            Direction::AtoB
                        }
                    };
                    enqueue_outbox(sess, s, reply_dir, ev.at, &mut self.outbox, &mut self.queue);
                }
                EventKind::Timer { side, .. } => {
                    // This slot's event is consumed: clear the target so a
                    // re-armed deadline (even an identical one) gets a
                    // fresh queue entry.
                    sess.timer_target[side.idx()] = None;
                    sess.timer_epoch[side.idx()] += 1;
                    let direction = match side {
                        Side::A => {
                            sess.a.on_timer(ev.at, &mut self.outbox);
                            Direction::AtoB
                        }
                        Side::B => {
                            sess.b.on_timer(ev.at, &mut self.outbox);
                            Direction::BtoA
                        }
                    };
                    enqueue_outbox(sess, s, direction, ev.at, &mut self.outbox, &mut self.queue);
                }
            }
            sync_timers_and_check(sess, s, &mut self.queue);
        }
        debug_assert!(
            self.sessions.iter().all(|s| s.finished),
            "event heap drained with unfinished sessions"
        );
        // One batched flush to the global registry per run: the per-event
        // path above only touches locals.
        let (mut drops, mut corruptions, mut duplications) = (0u64, 0u64, 0u64);
        for sess in &mut self.sessions {
            if !sess.metrics_flushed {
                drops += sess.fault_drops();
                corruptions += sess.fault_corruptions();
                duplications += sess.fault_duplications();
                sess.metrics_flushed = true;
            }
        }
        let metrics = net_metrics();
        metrics.events.add(events_processed);
        metrics.timer_fires.add(timer_events);
        metrics.drops.add(drops);
        metrics.corruptions.add(corruptions);
        metrics.duplications.add(duplications);
    }

    /// Take a finished session's outcome (trace moves out; a second take
    /// returns an empty trace).
    pub fn take_outcome(&mut self, id: SessionId) -> ExchangeOutcome {
        let sess = &mut self.sessions[id.0];
        ExchangeOutcome {
            trace: std::mem::take(&mut sess.trace),
            finished_at: sess.now,
            quiesced: sess.quiesced,
            fault_drops: sess.fault_drops(),
            fault_corruptions: sess.fault_corruptions(),
            fault_duplications: sess.fault_duplications(),
        }
    }

    /// Take a finished session's outcome together with its wire and RNG —
    /// what the [`crate::event::run_exchange`] wrapper writes back to its
    /// caller so counters and RNG streams advance exactly as before.
    pub fn take_parts(&mut self, id: SessionId) -> (ExchangeOutcome, Wire, SimRng) {
        let outcome = self.take_outcome(id);
        let sess = &mut self.sessions[id.0];
        let wire = std::mem::take(&mut sess.wire);
        let rng = std::mem::replace(&mut sess.rng, SimRng::new(0));
        (outcome, wire, rng)
    }

    /// Consume the network, returning every session's outcome in
    /// `add_session` order.
    pub fn into_outcomes(mut self) -> Vec<ExchangeOutcome> {
        (0..self.sessions.len())
            .map(|i| self.take_outcome(SessionId(i)))
            .collect()
    }
}

/// Offer every datagram in `outbox` to the session's wire: apply the fault
/// injector, then the link model, queueing deliveries and recording one
/// [`TraceEvent`] per datagram. RNG draw order matches the pre-`SimNet`
/// loop exactly (fault first, then link).
fn enqueue_outbox(
    sess: &mut Session<'_>,
    session_idx: usize,
    direction: Direction,
    now: SimTime,
    outbox: &mut Vec<Datagram>,
    queue: &mut BinaryHeap<Reverse<QueuedEvent>>,
) {
    for mut dgram in outbox.drain(..) {
        dgram.sent_at = now;
        let (link, fault) = match direction {
            Direction::AtoB => (&sess.wire.a_to_b, &mut sess.wire.fault_a_to_b),
            Direction::BtoA => (&sess.wire.b_to_a, &mut sess.wire.fault_b_to_a),
        };
        let payload_len = dgram.payload_len();

        // RNG draw order: fault first, then (optional) duplication, then
        // one link draw per copy — injectors with every chance at zero
        // leave the stream untouched, exactly as before.
        let survived = fault.apply(&mut sess.rng, dgram);
        let duplicate = match &survived {
            Some(dgram) => fault.maybe_duplicate(&mut sess.rng).then(|| dgram.clone()),
            None => None,
        };
        let outcome = match survived {
            None => Err(DropReason::Fault),
            Some(dgram) => deliver_via_link(
                link,
                &mut sess.rng,
                &mut sess.seq,
                &mut sess.pending_deliveries,
                queue,
                session_idx,
                direction,
                now,
                dgram,
            ),
        };
        sess.trace.push(TraceEvent {
            sent_at: now,
            direction,
            payload_len,
            outcome,
        });
        if let Some(dgram) = duplicate {
            let payload_len = dgram.payload_len();
            let outcome = deliver_via_link(
                link,
                &mut sess.rng,
                &mut sess.seq,
                &mut sess.pending_deliveries,
                queue,
                session_idx,
                direction,
                now,
                dgram,
            );
            sess.trace.push(TraceEvent {
                sent_at: now,
                direction,
                payload_len,
                outcome,
            });
        }
    }
}

/// Offer one surviving datagram to the link model, queueing its delivery
/// on arrival. Shared by the primary and the duplicated copy so both take
/// identical scheduling (and RNG) paths.
#[allow(clippy::too_many_arguments)]
fn deliver_via_link(
    link: &LinkModel,
    rng: &mut SimRng,
    seq: &mut u64,
    pending_deliveries: &mut usize,
    queue: &mut BinaryHeap<Reverse<QueuedEvent>>,
    session_idx: usize,
    direction: Direction,
    now: SimTime,
    dgram: Datagram,
) -> Result<SimTime, DropReason> {
    match link.deliver(rng, &dgram, now) {
        Delivery::Arrives(at) => {
            *seq += 1;
            queue.push(Reverse(QueuedEvent {
                at,
                session: session_idx,
                kind: EventKind::Delivery {
                    seq: *seq,
                    direction,
                    dgram,
                },
            }));
            *pending_deliveries += 1;
            Ok(at)
        }
        Delivery::LostRandom => Err(DropReason::Loss),
        Delivery::LostMtu(size) => Err(DropReason::Mtu(size)),
    }
}

/// Re-poll both endpoints' timers (pushing fresh events for changed
/// deadlines) and apply the session termination rules: the event budget
/// first — exhausting `max_events` reports `quiesced: false` exactly like
/// the old loop's runaway guard — then quiescence when nothing is in
/// flight and no timer is armed.
fn sync_timers_and_check(
    sess: &mut Session<'_>,
    session_idx: usize,
    queue: &mut BinaryHeap<Reverse<QueuedEvent>>,
) {
    for (i, side) in [Side::A, Side::B].into_iter().enumerate() {
        let next = match side {
            Side::A => sess.a.next_timer(),
            Side::B => sess.b.next_timer(),
        };
        if sess.timer_target[i] != next {
            sess.timer_target[i] = next;
            sess.timer_epoch[i] += 1;
            if let Some(at) = next {
                queue.push(Reverse(QueuedEvent {
                    at,
                    session: session_idx,
                    kind: EventKind::Timer {
                        side,
                        epoch: sess.timer_epoch[i],
                    },
                }));
            }
        }
    }
    if sess.events >= sess.limits.max_events {
        sess.quiesced = false;
        sess.finished = true;
    } else if sess.pending_deliveries == 0 && sess.timer_target == [None, None] {
        sess.quiesced = sess.both_done();
        sess.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use crate::link::LinkModel;
    use crate::time::SimDuration;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Sends `count` pings; expects an echo for each before the next.
    struct Pinger {
        remaining: u32,
        payload: usize,
    }

    struct Echoer;

    impl Endpoint for Pinger {
        fn start(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
            if self.remaining > 0 {
                out.push(Datagram::new(A, B, 1000, 443, vec![1; self.payload]));
            }
        }
        fn on_datagram(&mut self, _d: &Datagram, _now: SimTime, out: &mut Vec<Datagram>) {
            self.remaining -= 1;
            if self.remaining > 0 {
                out.push(Datagram::new(A, B, 1000, 443, vec![1; self.payload]));
            }
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            self.remaining == 0
        }
    }

    impl Endpoint for Echoer {
        fn on_datagram(&mut self, d: &Datagram, _now: SimTime, out: &mut Vec<Datagram>) {
            out.push(d.reply_with(d.payload.clone()));
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    /// A burst sender: emits `n` datagrams at once so several deliveries
    /// share one arrival timestamp.
    struct Burst {
        n: usize,
    }

    impl Endpoint for Burst {
        fn start(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
            for i in 0..self.n {
                out.push(Datagram::new(A, B, 1000, 443, vec![i as u8; 10 + i]));
            }
        }
        fn on_datagram(&mut self, _d: &Datagram, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    /// Records the payload sizes it receives, in arrival order.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<usize>,
    }

    impl Endpoint for Recorder {
        fn on_datagram(&mut self, d: &Datagram, _now: SimTime, _out: &mut Vec<Datagram>) {
            self.seen.push(d.payload_len());
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    fn lossy_wire(latency_ms: u64, loss: f64, jitter_ms: u64) -> Wire {
        Wire::symmetric(LinkModel {
            latency: SimDuration::from_millis(latency_ms),
            jitter: SimDuration::from_millis(jitter_ms),
            loss,
            ..LinkModel::default()
        })
    }

    #[test]
    fn single_session_ping_pong_quiesces() {
        let mut net = SimNet::new();
        let id = net.add_session(
            Box::new(Pinger {
                remaining: 3,
                payload: 100,
            }),
            Box::new(Echoer),
            Wire::ideal(SimDuration::from_millis(10)),
            ExchangeLimits::default(),
            SimRng::new(1),
        );
        net.run();
        let out = net.take_outcome(id);
        assert!(out.quiesced);
        assert_eq!(out.datagrams(Direction::AtoB), 3);
        assert_eq!(
            out.finished_at,
            SimTime::ZERO + SimDuration::from_millis(60)
        );
    }

    #[test]
    fn equal_timestamp_deliveries_arrive_in_send_order() {
        // A burst of datagrams over a zero-jitter wire all arrive at the
        // same instant; the recorder must see them in send (seq) order.
        let mut recorder = Recorder::default();
        let mut net = SimNet::new();
        let id = net.add_session(
            Box::new(Burst { n: 8 }),
            Box::new(&mut recorder),
            Wire::ideal(SimDuration::from_millis(5)),
            ExchangeLimits::default(),
            SimRng::new(2),
        );
        net.run();
        assert!(net.take_outcome(id).quiesced);
        drop(net);
        assert_eq!(recorder.seen, (0..8).map(|i| 10 + i).collect::<Vec<_>>());
    }

    #[test]
    fn batched_sessions_match_solo_runs_bit_for_bit() {
        // 12 sessions with jittery, lossy wires and distinct RNG streams:
        // the outcome of each must be identical run alone or batched.
        let seeds: Vec<u64> = (0..12).collect();
        let solo: Vec<ExchangeOutcome> = seeds
            .iter()
            .map(|&seed| {
                let mut net = SimNet::new();
                let id = net.add_session(
                    Box::new(Pinger {
                        remaining: 5,
                        payload: 50 + seed as usize,
                    }),
                    Box::new(Echoer),
                    lossy_wire(1 + seed % 7, 0.2, 3),
                    ExchangeLimits::default(),
                    SimRng::new(seed ^ 0xBA7C),
                );
                net.run();
                net.take_outcome(id)
            })
            .collect();

        let mut net = SimNet::with_capacity(seeds.len());
        let ids: Vec<SessionId> = seeds
            .iter()
            .map(|&seed| {
                net.add_session(
                    Box::new(Pinger {
                        remaining: 5,
                        payload: 50 + seed as usize,
                    }),
                    Box::new(Echoer),
                    lossy_wire(1 + seed % 7, 0.2, 3),
                    ExchangeLimits::default(),
                    SimRng::new(seed ^ 0xBA7C),
                )
            })
            .collect();
        net.run();
        for (id, reference) in ids.into_iter().zip(&solo) {
            let batched = net.take_outcome(id);
            assert_eq!(batched.trace, reference.trace, "session {}", id.index());
            assert_eq!(batched.finished_at, reference.finished_at);
            assert_eq!(batched.quiesced, reference.quiesced);
        }
    }

    #[test]
    fn outcome_surfaces_fault_counters() {
        let mut wire = Wire::ideal(SimDuration::from_millis(1));
        wire.fault_a_to_b = FaultInjector::dropping(1.0);
        let mut net = SimNet::new();
        let id = net.add_session(
            Box::new(Pinger {
                remaining: 1,
                payload: 64,
            }),
            Box::new(Echoer),
            wire,
            ExchangeLimits::default(),
            SimRng::new(3),
        );
        net.run();
        let out = net.take_outcome(id);
        assert!(!out.quiesced);
        assert_eq!(out.fault_drops, 1);
        assert_eq!(out.fault_corruptions, 0);
        assert_eq!(out.fault_duplications, 0);
    }

    #[test]
    fn duplicating_injector_delivers_every_datagram_twice() {
        let mut recorder = Recorder::default();
        let mut wire = Wire::ideal(SimDuration::from_millis(5));
        wire.fault_a_to_b = FaultInjector::duplicating(1.0);
        let mut net = SimNet::new();
        let id = net.add_session(
            Box::new(Burst { n: 4 }),
            Box::new(&mut recorder),
            wire,
            ExchangeLimits::default(),
            SimRng::new(7),
        );
        net.run();
        let out = net.take_outcome(id);
        assert!(out.quiesced);
        // One trace event per copy, no drops, and the duplication count
        // surfaces on the outcome itself (not just the wire).
        assert_eq!(out.datagrams(Direction::AtoB), 8);
        assert_eq!(out.fault_drops, 0);
        assert_eq!(out.fault_duplications, 4);
        assert_eq!(net.wire(id).fault_a_to_b.duplications(), 4);
        drop(net);
        // Each payload arrives twice, copies adjacent in send order.
        assert_eq!(recorder.seen, vec![10, 10, 11, 11, 12, 12, 13, 13]);
    }

    #[test]
    fn max_events_zero_finishes_immediately_unquiesced() {
        let mut net = SimNet::new();
        let id = net.add_session(
            Box::new(Pinger {
                remaining: 1,
                payload: 10,
            }),
            Box::new(Echoer),
            Wire::ideal(SimDuration::from_millis(1)),
            ExchangeLimits {
                max_events: 0,
                ..ExchangeLimits::default()
            },
            SimRng::new(4),
        );
        assert!(net.is_finished(id));
        net.run();
        assert!(!net.take_outcome(id).quiesced);
    }

    #[test]
    fn sessions_added_with_nothing_to_do_quiesce_at_zero() {
        let mut net = SimNet::new();
        let id = net.add_session(
            Box::new(Pinger {
                remaining: 0,
                payload: 0,
            }),
            Box::new(Echoer),
            Wire::ideal(SimDuration::from_millis(1)),
            ExchangeLimits::default(),
            SimRng::new(5),
        );
        assert!(net.is_finished(id));
        net.run();
        let out = net.take_outcome(id);
        assert!(out.quiesced);
        assert_eq!(out.finished_at, SimTime::ZERO);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn into_outcomes_returns_sessions_in_add_order() {
        let mut net = SimNet::new();
        for i in 0..3u32 {
            net.add_session(
                Box::new(Pinger {
                    remaining: i,
                    payload: 10,
                }),
                Box::new(Echoer),
                Wire::ideal(SimDuration::from_millis(1)),
                ExchangeLimits::default(),
                SimRng::new(i as u64),
            );
        }
        net.run();
        let outcomes = net.into_outcomes();
        assert_eq!(outcomes.len(), 3);
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(out.datagrams(Direction::AtoB), i);
        }
    }
}
