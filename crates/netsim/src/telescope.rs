//! Network telescope: a dark address space that records backscatter.
//!
//! The paper's §4.3 observes QUIC server behaviour toward *unverified*
//! clients by watching a telescope: when an attacker initiates handshakes
//! with source addresses spoofed into dark space, every server response and
//! retransmission arrives at the telescope. Grouping the observed bytes by
//! source connection ID (SCID) yields per-session amplification factors —
//! Figure 9 of the paper.

use std::net::Ipv4Addr;

use crate::addr::Ipv4Net;
use crate::datagram::Datagram;
use crate::time::SimTime;

/// A single observed backscatter datagram.
#[derive(Debug, Clone)]
pub struct BackscatterRecord {
    /// Arrival time at the telescope.
    pub at: SimTime,
    /// The server that emitted the datagram.
    pub server: Ipv4Addr,
    /// The spoofed victim address inside the telescope.
    pub victim: Ipv4Addr,
    /// UDP payload size.
    pub payload_len: usize,
    /// Source connection ID extracted from the QUIC long header, if the
    /// collector could parse one. Sessions are grouped by this value.
    pub scid: Option<Vec<u8>>,
}

/// A passive telescope covering a dark prefix.
#[derive(Debug, Clone)]
pub struct Telescope {
    prefix: Ipv4Net,
    records: Vec<BackscatterRecord>,
}

impl Telescope {
    /// Create a telescope observing `prefix`.
    pub fn new(prefix: Ipv4Net) -> Self {
        Telescope {
            prefix,
            records: Vec::new(),
        }
    }

    /// The observed dark prefix.
    pub fn prefix(&self) -> Ipv4Net {
        self.prefix
    }

    /// Whether the telescope would capture traffic sent to `addr`.
    pub fn covers(&self, addr: Ipv4Addr) -> bool {
        self.prefix.contains(addr)
    }

    /// Offer a datagram to the telescope; it is recorded when its
    /// destination falls into the dark prefix. `scid` is the connection ID
    /// the collector parsed out of the payload (done by the scanner layer,
    /// which understands QUIC headers).
    pub fn observe(&mut self, dgram: &Datagram, at: SimTime, scid: Option<Vec<u8>>) -> bool {
        if !self.covers(dgram.dst) {
            return false;
        }
        self.records.push(BackscatterRecord {
            at,
            server: dgram.src,
            victim: dgram.dst,
            payload_len: dgram.payload_len(),
            scid,
        });
        true
    }

    /// All recorded backscatter.
    pub fn records(&self) -> &[BackscatterRecord] {
        &self.records
    }

    /// Total observed UDP payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.payload_len).sum()
    }

    /// Drain the records, leaving the telescope empty.
    pub fn take_records(&mut self) -> Vec<BackscatterRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dark() -> Ipv4Net {
        Ipv4Net::new(Ipv4Addr::new(44, 0, 0, 0), 8)
    }

    fn dgram_to(dst: Ipv4Addr, len: usize) -> Datagram {
        Datagram::new(
            Ipv4Addr::new(157, 240, 1, 35),
            dst,
            443,
            50000,
            vec![0; len],
        )
    }

    #[test]
    fn records_only_dark_traffic() {
        let mut t = Telescope::new(dark());
        assert!(t.observe(
            &dgram_to(Ipv4Addr::new(44, 1, 2, 3), 1200),
            SimTime::ZERO,
            None
        ));
        assert!(!t.observe(
            &dgram_to(Ipv4Addr::new(45, 1, 2, 3), 1200),
            SimTime::ZERO,
            None
        ));
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.total_bytes(), 1200);
    }

    #[test]
    fn keeps_scid_and_session_metadata() {
        let mut t = Telescope::new(dark());
        let victim = Ipv4Addr::new(44, 9, 9, 9);
        t.observe(
            &dgram_to(victim, 900),
            SimTime::from_nanos(5),
            Some(vec![0xAA, 0xBB]),
        );
        let rec = &t.records()[0];
        assert_eq!(rec.victim, victim);
        assert_eq!(rec.server, Ipv4Addr::new(157, 240, 1, 35));
        assert_eq!(rec.scid.as_deref(), Some(&[0xAA, 0xBB][..]));
        assert_eq!(rec.at, SimTime::from_nanos(5));
    }

    #[test]
    fn take_records_drains() {
        let mut t = Telescope::new(dark());
        t.observe(
            &dgram_to(Ipv4Addr::new(44, 0, 0, 1), 10),
            SimTime::ZERO,
            None,
        );
        let recs = t.take_records();
        assert_eq!(recs.len(), 1);
        assert!(t.records().is_empty());
        assert_eq!(t.total_bytes(), 0);
    }
}
