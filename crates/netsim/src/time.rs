//! Simulated time.
//!
//! Time is a monotonically increasing nanosecond counter. Durations are plain
//! nanosecond spans. Both are thin wrappers over `u64` with the arithmetic
//! the simulator needs; they intentionally do not interoperate with
//! `std::time` so wall-clock time can never leak into an experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, measured in nanoseconds since the start of the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero point of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any simulated experiment, used as an "infinite"
    /// deadline sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a floating point value (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor (used for exponential
    /// retransmission backoff).
    pub fn saturating_mul(self, factor: u32) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor as u64))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u32> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u32) -> SimDuration {
        SimDuration(self.0 * rhs as u64)
    }
}

impl Div<u32> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u32) -> SimDuration {
        SimDuration(self.0 / rhs as u64)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(100);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early).as_nanos(), 90);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn backoff_multiplication() {
        let pto = SimDuration::from_millis(250);
        assert_eq!(pto.saturating_mul(4), SimDuration::from_secs(1));
        assert_eq!(pto * 2, SimDuration::from_millis(500));
        assert_eq!(pto / 5, SimDuration::from_millis(50));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
    }

    #[test]
    fn far_future_is_ordered_after_everything() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_nanos(u64::MAX - 1));
        assert_eq!(
            SimTime::FAR_FUTURE.saturating_add(SimDuration::from_secs(1)),
            SimTime::FAR_FUTURE
        );
    }
}
