//! Pins the `run_exchange` wrapper bit-for-bit against the pre-`SimNet`
//! two-endpoint event loop.
//!
//! `reference_run_exchange` below is a verbatim copy of the implementation
//! that shipped before the `SimNet` refactor (modulo the two fault-counter
//! fields that did not exist then). Every scenario — ideal ping-pong,
//! lossy jittery wires, retransmission timers, fault injection, MTU drops,
//! deadlines and event budgets — must produce an identical trace, finish
//! time, quiescence flag and RNG stream position through both paths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

use quicert_netsim::event::{Direction, DropReason};
use quicert_netsim::link::Delivery;
use quicert_netsim::{
    run_exchange, Datagram, Endpoint, ExchangeLimits, FaultInjector, LinkModel, SimDuration,
    SimRng, SimTime, TraceEvent, Wire,
};

// ------------------------------------------------- the reference loop --

#[derive(Debug)]
struct PendingDelivery {
    at: SimTime,
    seq: u64,
    direction: Direction,
    dgram: Datagram,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pre-refactor outcome shape (no fault counters).
struct ReferenceOutcome {
    trace: Vec<TraceEvent>,
    finished_at: SimTime,
    quiesced: bool,
}

/// Verbatim copy of the pre-`SimNet` `run_exchange`.
fn reference_run_exchange(
    a: &mut dyn Endpoint,
    b: &mut dyn Endpoint,
    wire: &mut Wire,
    limits: ExchangeLimits,
    rng: &mut SimRng,
) -> ReferenceOutcome {
    let mut queue: BinaryHeap<Reverse<PendingDelivery>> = BinaryHeap::new();
    let mut trace = Vec::new();
    let mut now = SimTime::ZERO;
    let mut seq: u64 = 0;
    let mut outbox = Vec::new();

    a.start(now, &mut outbox);
    enqueue_all(
        &mut outbox,
        Direction::AtoB,
        now,
        wire,
        rng,
        &mut queue,
        &mut trace,
        &mut seq,
    );
    b.start(now, &mut outbox);
    enqueue_all(
        &mut outbox,
        Direction::BtoA,
        now,
        wire,
        rng,
        &mut queue,
        &mut trace,
        &mut seq,
    );

    let mut events = 0usize;
    loop {
        if events >= limits.max_events {
            return ReferenceOutcome {
                trace,
                finished_at: now,
                quiesced: false,
            };
        }
        events += 1;

        let next_delivery = queue.peek().map(|Reverse(p)| p.at);
        let next_timer_a = a.next_timer();
        let next_timer_b = b.next_timer();
        let candidates = [next_delivery, next_timer_a, next_timer_b];
        let next_at = candidates.iter().flatten().min().copied();

        let Some(at) = next_at else {
            let quiesced = a.is_done() && b.is_done();
            return ReferenceOutcome {
                trace,
                finished_at: now,
                quiesced,
            };
        };
        if at > limits.deadline {
            return ReferenceOutcome {
                trace,
                finished_at: now,
                quiesced: a.is_done() && b.is_done(),
            };
        }
        now = at;

        if next_delivery == Some(at) {
            let Reverse(pending) = queue.pop().expect("peeked delivery must exist");
            let reply_dir = match pending.direction {
                Direction::AtoB => {
                    b.on_datagram(&pending.dgram, now, &mut outbox);
                    Direction::BtoA
                }
                Direction::BtoA => {
                    a.on_datagram(&pending.dgram, now, &mut outbox);
                    Direction::AtoB
                }
            };
            enqueue_all(
                &mut outbox,
                reply_dir,
                now,
                wire,
                rng,
                &mut queue,
                &mut trace,
                &mut seq,
            );
        } else if next_timer_a == Some(at) {
            a.on_timer(now, &mut outbox);
            enqueue_all(
                &mut outbox,
                Direction::AtoB,
                now,
                wire,
                rng,
                &mut queue,
                &mut trace,
                &mut seq,
            );
        } else {
            b.on_timer(now, &mut outbox);
            enqueue_all(
                &mut outbox,
                Direction::BtoA,
                now,
                wire,
                rng,
                &mut queue,
                &mut trace,
                &mut seq,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn enqueue_all(
    outbox: &mut Vec<Datagram>,
    direction: Direction,
    now: SimTime,
    wire: &mut Wire,
    rng: &mut SimRng,
    queue: &mut BinaryHeap<Reverse<PendingDelivery>>,
    trace: &mut Vec<TraceEvent>,
    seq: &mut u64,
) {
    for mut dgram in outbox.drain(..) {
        dgram.sent_at = now;
        let (link, fault) = match direction {
            Direction::AtoB => (&wire.a_to_b, &mut wire.fault_a_to_b),
            Direction::BtoA => (&wire.b_to_a, &mut wire.fault_b_to_a),
        };
        let payload_len = dgram.payload_len();

        let outcome = match fault.apply(rng, dgram) {
            None => Err(DropReason::Fault),
            Some(dgram) => match link.deliver(rng, &dgram, now) {
                Delivery::Arrives(at) => {
                    *seq += 1;
                    queue.push(Reverse(PendingDelivery {
                        at,
                        seq: *seq,
                        direction,
                        dgram,
                    }));
                    Ok(at)
                }
                Delivery::LostRandom => Err(DropReason::Loss),
                Delivery::LostMtu(size) => Err(DropReason::Mtu(size)),
            },
        };
        trace.push(TraceEvent {
            sent_at: now,
            direction,
            payload_len,
            outcome,
        });
    }
}

// ------------------------------------------------------ test endpoints --

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A pinger with a retransmission timer: resends its ping after `pto` if
/// no echo arrived, up to `max_sends` total transmissions. Exercises every
/// timer path of the scheduler (arm, fire, re-arm, cancel).
#[derive(Clone)]
struct RetryPinger {
    remaining: u32,
    payload: usize,
    pto: SimDuration,
    max_sends: u32,
    sends: u32,
    deadline: Option<SimTime>,
}

impl RetryPinger {
    fn new(remaining: u32, payload: usize, pto_ms: u64, max_sends: u32) -> Self {
        RetryPinger {
            remaining,
            payload,
            pto: SimDuration::from_millis(pto_ms),
            max_sends,
            sends: 0,
            deadline: None,
        }
    }

    fn ping(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        out.push(Datagram::new(A, B, 1000, 443, vec![7; self.payload]));
        self.sends += 1;
        self.deadline = Some(now + self.pto);
    }
}

impl Endpoint for RetryPinger {
    fn start(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        if self.remaining > 0 {
            self.ping(now, out);
        }
    }
    fn on_datagram(&mut self, _d: &Datagram, now: SimTime, out: &mut Vec<Datagram>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.sends = 0;
        self.deadline = None;
        if self.remaining > 0 {
            self.ping(now, out);
        }
    }
    fn on_timer(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        self.deadline = None;
        if self.remaining > 0 && self.sends < self.max_sends {
            self.ping(now, out);
        }
    }
    fn next_timer(&self) -> Option<SimTime> {
        self.deadline
    }
    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// Echoes datagrams back after a think delay driven by its own timer.
#[derive(Clone)]
struct DelayedEchoer {
    think: SimDuration,
    queued: Vec<Datagram>,
    deadline: Option<SimTime>,
}

impl DelayedEchoer {
    fn new(think_ms: u64) -> Self {
        DelayedEchoer {
            think: SimDuration::from_millis(think_ms),
            queued: Vec::new(),
            deadline: None,
        }
    }
}

impl Endpoint for DelayedEchoer {
    fn on_datagram(&mut self, d: &Datagram, now: SimTime, _out: &mut Vec<Datagram>) {
        self.queued.push(d.reply_with(d.payload.clone()));
        if self.deadline.is_none() {
            self.deadline = Some(now + self.think);
        }
    }
    fn on_timer(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
        self.deadline = None;
        out.append(&mut self.queued);
    }
    fn next_timer(&self) -> Option<SimTime> {
        self.deadline
    }
    fn is_done(&self) -> bool {
        self.queued.is_empty()
    }
}

// ------------------------------------------------------------ scenarios --

struct Scenario {
    name: &'static str,
    pinger: RetryPinger,
    echoer: DelayedEchoer,
    wire: Wire,
    limits: ExchangeLimits,
    seed: u64,
}

fn scenarios() -> Vec<Scenario> {
    let mut faulty = Wire::ideal(SimDuration::from_millis(5));
    faulty.fault_a_to_b = FaultInjector::dropping(0.3);
    let mut corrupting = FaultInjector::dropping(0.1);
    corrupting.corrupt_chance = 0.5;
    faulty.fault_b_to_a = corrupting;

    let mut tunneled = Wire::ideal(SimDuration::from_millis(8));
    tunneled.a_to_b = LinkModel::tunneled(SimDuration::from_millis(8), 40);

    vec![
        Scenario {
            name: "ideal ping-pong, no timers fire",
            pinger: RetryPinger::new(4, 100, 1_000, 2),
            echoer: DelayedEchoer::new(0),
            wire: Wire::ideal(SimDuration::from_millis(10)),
            limits: ExchangeLimits::default(),
            seed: 1,
        },
        Scenario {
            name: "lossy jittery wire with retransmissions",
            pinger: RetryPinger::new(6, 64, 40, 5),
            echoer: DelayedEchoer::new(3),
            wire: Wire::symmetric(LinkModel {
                latency: SimDuration::from_millis(15),
                jitter: SimDuration::from_millis(4),
                loss: 0.25,
                ..LinkModel::default()
            }),
            limits: ExchangeLimits::default(),
            seed: 2,
        },
        Scenario {
            name: "fault injectors on both directions",
            pinger: RetryPinger::new(5, 200, 30, 4),
            echoer: DelayedEchoer::new(1),
            wire: faulty,
            limits: ExchangeLimits::default(),
            seed: 3,
        },
        Scenario {
            name: "MTU drops through a tunnel",
            pinger: RetryPinger::new(3, 1_460, 25, 3),
            echoer: DelayedEchoer::new(0),
            wire: tunneled,
            limits: ExchangeLimits::default(),
            seed: 4,
        },
        Scenario {
            name: "deadline cuts the exchange short",
            pinger: RetryPinger::new(1_000, 50, 20, 1_000),
            echoer: DelayedEchoer::new(2),
            wire: Wire::ideal(SimDuration::from_millis(30)),
            limits: ExchangeLimits {
                deadline: SimTime::ZERO + SimDuration::from_millis(500),
                ..ExchangeLimits::default()
            },
            seed: 5,
        },
        Scenario {
            name: "event budget runaway guard",
            pinger: RetryPinger::new(u32::MAX, 20, 10, u32::MAX),
            echoer: DelayedEchoer::new(0),
            wire: Wire::ideal(SimDuration::from_micros(10)),
            limits: ExchangeLimits {
                max_events: 73,
                ..ExchangeLimits::default()
            },
            seed: 6,
        },
        Scenario {
            name: "nothing to do at all",
            pinger: RetryPinger::new(0, 0, 10, 1),
            echoer: DelayedEchoer::new(0),
            wire: Wire::ideal(SimDuration::from_millis(1)),
            limits: ExchangeLimits::default(),
            seed: 7,
        },
    ]
}

#[test]
fn wrapper_reproduces_the_pre_refactor_loop_bit_for_bit() {
    for scenario in scenarios() {
        let mut ref_pinger = scenario.pinger.clone();
        let mut ref_echoer = scenario.echoer.clone();
        let mut ref_wire = scenario.wire.clone();
        let mut ref_rng = SimRng::new(scenario.seed);
        let reference = reference_run_exchange(
            &mut ref_pinger,
            &mut ref_echoer,
            &mut ref_wire,
            scenario.limits,
            &mut ref_rng,
        );

        let mut pinger = scenario.pinger.clone();
        let mut echoer = scenario.echoer.clone();
        let mut wire = scenario.wire.clone();
        let mut rng = SimRng::new(scenario.seed);
        let outcome = run_exchange(
            &mut pinger,
            &mut echoer,
            &mut wire,
            scenario.limits,
            &mut rng,
        );

        assert_eq!(outcome.trace, reference.trace, "trace: {}", scenario.name);
        assert_eq!(
            outcome.finished_at, reference.finished_at,
            "finished_at: {}",
            scenario.name
        );
        assert_eq!(
            outcome.quiesced, reference.quiesced,
            "quiesced: {}",
            scenario.name
        );
        // The caller-visible side effects match too: RNG stream position…
        assert_eq!(
            rng.next_u64(),
            ref_rng.next_u64(),
            "rng stream: {}",
            scenario.name
        );
        // …endpoint state…
        assert_eq!(
            pinger.remaining, ref_pinger.remaining,
            "pinger state: {}",
            scenario.name
        );
        // …and fault counters accumulated on the caller's wire.
        assert_eq!(
            wire.fault_a_to_b.drops() + wire.fault_b_to_a.drops(),
            ref_wire.fault_a_to_b.drops() + ref_wire.fault_b_to_a.drops(),
            "fault drops: {}",
            scenario.name
        );
        assert_eq!(
            wire.fault_b_to_a.corruptions(),
            ref_wire.fault_b_to_a.corruptions(),
            "fault corruptions: {}",
            scenario.name
        );
    }
}

#[test]
fn wrapper_equivalence_holds_across_many_seeds() {
    // A randomised sweep over the nastiest scenario shape: loss + jitter +
    // faults + timers, 64 different RNG streams.
    for seed in 0..64u64 {
        let mut wire = Wire::symmetric(LinkModel {
            latency: SimDuration::from_millis(1 + seed % 23),
            jitter: SimDuration::from_millis(seed % 7),
            loss: (seed % 5) as f64 * 0.08,
            ..LinkModel::default()
        });
        wire.fault_a_to_b = FaultInjector::dropping((seed % 3) as f64 * 0.1);

        let make_pinger = || RetryPinger::new(3 + (seed % 5) as u32, 60, 15 + seed % 30, 4);
        let make_echoer = || DelayedEchoer::new(seed % 4);

        let mut ref_wire = wire.clone();
        let mut ref_rng = SimRng::new(seed.wrapping_mul(0x9E37));
        let reference = reference_run_exchange(
            &mut make_pinger(),
            &mut make_echoer(),
            &mut ref_wire,
            ExchangeLimits::default(),
            &mut ref_rng,
        );

        let mut rng = SimRng::new(seed.wrapping_mul(0x9E37));
        let outcome = run_exchange(
            &mut make_pinger(),
            &mut make_echoer(),
            &mut wire,
            ExchangeLimits::default(),
            &mut rng,
        );

        assert_eq!(outcome.trace, reference.trace, "seed {seed}");
        assert_eq!(outcome.finished_at, reference.finished_at, "seed {seed}");
        assert_eq!(outcome.quiesced, reference.quiesced, "seed {seed}");
        assert_eq!(rng.next_u64(), ref_rng.next_u64(), "seed {seed}");
    }
}
