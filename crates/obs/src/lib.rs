//! Campaign telemetry: lock-free metric primitives, a deterministic
//! Prometheus-text registry, and handshake phase timelines.
//!
//! The crate is a dependency *leaf* — every other crate in the workspace
//! (netsim, pki, quic, scanner, core, bench) can instrument itself against
//! it without cycles. Three primitives cover the stack's needs:
//!
//! * [`Counter`] — a monotonically increasing `u64` (relaxed atomics);
//! * [`Gauge`] — an `f64` cell with atomic set/add (CAS on the bit
//!   pattern), for wall-clock accumulators and last-value readings;
//! * [`Histogram`] — fixed equal-width bins with dedicated underflow and
//!   overflow buckets, mirroring the `HistogramSketch` bin discipline of
//!   the analysis crate so exposition and report sketches bucket alike.
//!
//! Handles live behind a [`MetricsRegistry`]: registration takes a mutex
//! once and returns an `Arc` handle; the hot path then touches only
//! relaxed atomics. [`MetricsRegistry::render_prometheus`] walks the
//! name-sorted map, so exposition is deterministic — the integration
//! suite pins a golden snapshot of it.
//!
//! [`HandshakeTimeline`] records the per-phase timestamps of one simulated
//! QUIC handshake (Initial sent, amplification stall begin/end,
//! certificate flight complete, handshake done) as plain nanosecond
//! offsets, keeping this crate free of simulator types. Its
//! [`phases`](HandshakeTimeline::phases) derivation clamps cumulatively,
//! so the four phase durations always sum exactly to the total handshake
//! time — the property the phase-duration histograms rely on.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event counter.
///
/// All operations are relaxed atomics: increments never synchronise with
/// each other or with readers, which is exactly right for statistics that
/// are only *summed* — a render may observe a value mid-burst, but every
/// increment lands.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An `f64` cell with atomic set and add.
///
/// The value is stored as its IEEE-754 bit pattern in an `AtomicU64`;
/// [`Gauge::add`] runs a compare-and-swap loop, so concurrent adds never
/// lose updates. Used both for last-value readings (distinct memo classes)
/// and floating-point accumulators (wall-clock fold seconds).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` to the value (lock-free CAS loop).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bin histogram over per-bin relaxed atomics.
///
/// The bin discipline mirrors the analysis crate's `HistogramSketch`
/// exactly: `bins` equal-width buckets spanning `[lo, hi)`, a dedicated
/// underflow bucket for `x < lo`, and an overflow bucket for everything at
/// or past `hi`. NaN observations are dropped. `count` and `sum` are
/// tracked exactly (the sum via the same CAS loop as [`Gauge::add`]).
///
/// Counters may tear *between* fields under concurrent observation — a
/// render can see a count one ahead of the bins — which is acceptable for
/// statistics and avoided entirely in this workspace by rendering only
/// after the instrumented run completes.
#[derive(Debug)]
pub struct Histogram {
    lo: f64,
    bin_width: f64,
    bins: Box<[AtomicU64]>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// An empty histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// When `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "histogram needs hi > lo");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            bin_width: (hi - lo) / bins as f64,
            bins: (0..bins).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Record one observation. NaN is dropped.
    pub fn observe(&self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if x < self.lo {
            self.underflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = ((x - self.lo) / self.bin_width) as usize;
        match self.bins.get(idx) {
            Some(bin) => bin.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Lower edge of the first bin.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Number of equal-width bins (underflow/overflow excluded).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow.load(Ordering::Relaxed)
    }

    /// Observations at or past the last bin's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Per-bin counts, in bin order.
    pub fn bin_counts(&self) -> Vec<u64> {
        self.bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// One registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct RegistryEntry {
    help: String,
    metric: Metric,
}

/// A name-sorted registry of metric handles with deterministic text
/// exposition.
///
/// Registration (`counter`, `gauge`, `histogram` and their `labeled_*`
/// variants) takes the registry mutex once and hands back an `Arc` handle;
/// re-registering the same `(name, labels)` pair returns the *same*
/// handle, so call sites can register lazily without coordination.
/// Handles stay valid for the registry's lifetime and update via relaxed
/// atomics — the hot path never touches the mutex.
///
/// Keys are `(metric name, rendered label pairs)`; the backing `BTreeMap`
/// iterates in sorted order, which makes [`render_prometheus`] and
/// [`render_json`] byte-deterministic for a given sequence of recorded
/// values.
///
/// [`render_prometheus`]: MetricsRegistry::render_prometheus
/// [`render_json`]: MetricsRegistry::render_json
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<(String, String), RegistryEntry>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

/// Escape a string for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON-safe number (non-finite values become `0`,
/// which never arises for the workspace's metrics but keeps the output
/// parseable no matter what a caller records).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry shared by crates without a natural owner
    /// for their counters (netsim event loops, PKI world generation).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], help: &str, make: Metric) -> Metric {
        let key = (name.to_string(), render_labels(labels));
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.entry(key).or_insert_with(|| RegistryEntry {
            help: help.to_string(),
            metric: make,
        });
        entry.metric.clone()
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.labeled_counter(name, &[], help)
    }

    /// Register (or look up) a counter with the given label pairs.
    ///
    /// # Panics
    /// When `(name, labels)` is already registered as a different kind.
    pub fn labeled_counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(
            name,
            labels,
            help,
            Metric::Counter(Arc::new(Counter::new())),
        ) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.labeled_gauge(name, &[], help)
    }

    /// Register (or look up) a gauge with the given label pairs.
    ///
    /// # Panics
    /// When `(name, labels)` is already registered as a different kind.
    pub fn labeled_gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or look up) an unlabeled fixed-bin histogram over
    /// `[lo, hi)`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Arc<Histogram> {
        self.labeled_histogram(name, &[], help, lo, hi, bins)
    }

    /// Register (or look up) a labeled fixed-bin histogram over `[lo, hi)`.
    ///
    /// The bin layout of the *first* registration wins; later lookups of
    /// the same key return the existing handle unchanged.
    ///
    /// # Panics
    /// When `(name, labels)` is already registered as a different kind.
    pub fn labeled_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Arc<Histogram> {
        match self.register(
            name,
            labels,
            help,
            Metric::Histogram(Arc::new(Histogram::new(lo, hi, bins))),
        ) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Render every registered metric in Prometheus text exposition
    /// format, sorted by `(name, labels)` — byte-deterministic for a given
    /// sequence of recorded values.
    ///
    /// Histograms render cumulative `_bucket{le=...}` series (the
    /// underflow bucket becomes the first `le`, the overflow lands in
    /// `le="+Inf"`), plus exact `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), entry) in inner.iter() {
            if last_name != Some(name.as_str()) {
                out.push_str(&format!("# HELP {name} {}\n", entry.help));
                out.push_str(&format!("# TYPE {name} {}\n", entry.metric.kind()));
                last_name = Some(name.as_str());
            }
            let with = |extra: &str| -> String {
                match (labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{labels}}}"),
                    (false, false) => format!("{{{labels},{extra}}}"),
                }
            };
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name}{} {}\n", with(""), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name}{} {}\n", with(""), json_f64(g.get())));
                }
                Metric::Histogram(h) => {
                    let mut cumulative = h.underflow();
                    out.push_str(&format!(
                        "{name}_bucket{} {cumulative}\n",
                        with(&format!("le=\"{}\"", h.lo()))
                    ));
                    for (i, bin) in h.bin_counts().into_iter().enumerate() {
                        cumulative += bin;
                        let le = h.lo() + h.bin_width() * (i + 1) as f64;
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            with(&format!("le=\"{le}\""))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{} {}\n",
                        with("le=\"+Inf\""),
                        h.count()
                    ));
                    out.push_str(&format!("{name}_sum{} {}\n", with(""), json_f64(h.sum())));
                    out.push_str(&format!("{name}_count{} {}\n", with(""), h.count()));
                }
            }
        }
        out
    }

    /// Render every registered metric as one compact JSON object mapping
    /// `"name{labels}"` to its value: counters as integers, gauges as
    /// numbers, histograms as `{"count", "sum", "underflow", "overflow",
    /// "bins"}` objects. Keys are sorted, so the output is deterministic
    /// for a given sequence of recorded values.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{");
        for (i, ((name, labels), entry)) in inner.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let key = if labels.is_empty() {
                name.clone()
            } else {
                format!("{name}{{{labels}}}")
            };
            out.push_str(&format!("\"{}\":", json_escape(&key)));
            match &entry.metric {
                Metric::Counter(c) => out.push_str(&format!("{}", c.get())),
                Metric::Gauge(g) => out.push_str(&json_f64(g.get())),
                Metric::Histogram(h) => {
                    let bins: Vec<String> =
                        h.bin_counts().into_iter().map(|b| b.to_string()).collect();
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"underflow\":{},\"overflow\":{},\"bins\":[{}]}}",
                        h.count(),
                        json_f64(h.sum()),
                        h.underflow(),
                        h.overflow(),
                        bins.join(",")
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// The four phases a handshake's wall time divides into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Client Initial sent until the server first stalls on its
    /// amplification budget (or, if it never stalls, until the certificate
    /// flight completes).
    InitialFlight,
    /// Server blocked on the anti-amplification limit, waiting for the
    /// client's address-validating datagram.
    AmplificationStall,
    /// Remaining certificate/handshake flight after the stall cleared,
    /// until the client has the full certificate chain verified.
    CertificateFlight,
    /// Finished exchange: client Finished until handshake completion.
    Finish,
}

impl Phase {
    /// Every phase, in handshake order.
    pub const ALL: [Phase; 4] = [
        Phase::InitialFlight,
        Phase::AmplificationStall,
        Phase::CertificateFlight,
        Phase::Finish,
    ];

    /// Stable snake_case label for metric label values.
    pub fn label(self) -> &'static str {
        match self {
            Phase::InitialFlight => "initial_flight",
            Phase::AmplificationStall => "amplification_stall",
            Phase::CertificateFlight => "certificate_flight",
            Phase::Finish => "finish",
        }
    }

    /// Index into [`Phase::ALL`].
    pub fn index(self) -> usize {
        match self {
            Phase::InitialFlight => 0,
            Phase::AmplificationStall => 1,
            Phase::CertificateFlight => 2,
            Phase::Finish => 3,
        }
    }
}

/// Per-phase timestamps of one simulated handshake, as nanosecond offsets
/// from session start.
///
/// Produced by the QUIC handshake runner from endpoint state; stored as
/// plain integers so this crate stays a dependency leaf. Any timestamp may
/// be absent (a 1-RTT handshake never stalls; an unreachable service never
/// completes) — [`HandshakeTimeline::phases`] clamps the present ones into
/// a consistent, exactly-summing partition of the total time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandshakeTimeline {
    /// When the client's first Initial left (always 0 in this simulator:
    /// every session starts its own timeline at zero).
    pub initial_sent_ns: u64,
    /// When the server first blocked on its anti-amplification budget.
    pub stall_begin_ns: Option<u64>,
    /// When the server resumed sending after a stall.
    pub stall_end_ns: Option<u64>,
    /// When the client had the full certificate flight verified.
    pub cert_flight_ns: Option<u64>,
    /// When the client completed the handshake.
    pub done_ns: Option<u64>,
}

impl HandshakeTimeline {
    /// Total handshake duration, when the handshake completed.
    pub fn total_ns(&self) -> Option<u64> {
        self.done_ns
            .map(|done| done.saturating_sub(self.initial_sent_ns))
    }

    /// Split a completed handshake's duration into the four [`Phase`]s.
    ///
    /// Returns `None` for incomplete handshakes. Boundaries are clamped
    /// cumulatively (`initial_sent <= stall_begin <= stall_end <=
    /// cert_flight <= done`, with absent timestamps collapsing to the
    /// previous boundary or to `done`), so the returned durations always
    /// sum to exactly [`total_ns`](HandshakeTimeline::total_ns).
    pub fn phases(&self) -> Option<[(Phase, u64); 4]> {
        let t0 = self.initial_sent_ns;
        let done = self.done_ns?.max(t0);
        let b = self.stall_begin_ns.unwrap_or(done).clamp(t0, done);
        let e = self.stall_end_ns.unwrap_or(b).clamp(b, done);
        let c = self.cert_flight_ns.unwrap_or(done).clamp(e, done);
        Some([
            (Phase::InitialFlight, b - t0),
            (Phase::AmplificationStall, e - b),
            (Phase::CertificateFlight, c - e),
            (Phase::Finish, done - c),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_survives_a_thread_hammer() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("hammer_total", "hammered");
        let hist = registry.histogram("hammer_obs", "observations", 0.0, 10.0, 10);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let counter = Arc::clone(&counter);
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..25_000u64 {
                        counter.inc();
                        hist.observe((t * 25_000 + i) as f64 % 12.0 - 1.0);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 200_000);
        assert_eq!(hist.count(), 200_000);
        let binned: u64 = hist.bin_counts().iter().sum();
        assert_eq!(binned + hist.underflow() + hist.overflow(), hist.count());
        assert!(hist.underflow() > 0, "the -1.0 observations land below lo");
        assert!(hist.overflow() > 0, "the 10.x observations land past hi");
    }

    #[test]
    fn gauge_concurrent_adds_never_lose_updates() {
        let gauge = Arc::new(Gauge::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let gauge = Arc::clone(&gauge);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        gauge.add(0.5);
                    }
                });
            }
        });
        assert_eq!(gauge.get(), 40_000.0);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = MetricsRegistry::new();
        let a = registry.labeled_counter("shared_total", &[("k", "v")], "help");
        let b = registry.labeled_counter("shared_total", &[("k", "v")], "ignored");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
        // A different label set is a different series.
        let c = registry.labeled_counter("shared_total", &[("k", "w")], "help");
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("mixed", "as a counter");
        registry.gauge("mixed", "as a gauge");
    }

    #[test]
    fn prometheus_render_is_deterministic_and_sorted() {
        let build = || {
            let registry = MetricsRegistry::new();
            registry.counter("zz_total", "last by name").add(2);
            registry
                .labeled_counter("aa_total", &[("era", "classical")], "first by name")
                .add(5);
            registry
                .labeled_counter("aa_total", &[("era", "hybrid")], "first by name")
                .add(1);
            registry.gauge("mid_gauge", "a gauge").set(1.5);
            let h = registry.histogram("lat_seconds", "latencies", 0.0, 1.0, 2);
            h.observe(0.25);
            h.observe(0.25);
            h.observe(0.75);
            h.observe(2.0);
            registry.render_prometheus()
        };
        let text = build();
        assert_eq!(text, build(), "same operations must render identically");
        let expected = "\
# HELP aa_total first by name
# TYPE aa_total counter
aa_total{era=\"classical\"} 5
aa_total{era=\"hybrid\"} 1
# HELP lat_seconds latencies
# TYPE lat_seconds histogram
lat_seconds_bucket{le=\"0\"} 0
lat_seconds_bucket{le=\"0.5\"} 2
lat_seconds_bucket{le=\"1\"} 3
lat_seconds_bucket{le=\"+Inf\"} 4
lat_seconds_sum 3.25
lat_seconds_count 4
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge 1.5
# HELP zz_total last by name
# TYPE zz_total counter
zz_total 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_render_is_valid_and_sorted() {
        let registry = MetricsRegistry::new();
        registry
            .labeled_counter("b_total", &[("family", "https")], "b")
            .add(9);
        registry.gauge("a_gauge", "a").set(0.5);
        let h = registry.histogram("h_seconds", "h", 0.0, 1.0, 2);
        h.observe(0.1);
        let json = registry.render_json();
        assert_eq!(
            json,
            "{\"a_gauge\":0.5,\
             \"b_total{family=\\\"https\\\"}\":9,\
             \"h_seconds\":{\"count\":1,\"sum\":0.1,\"underflow\":0,\"overflow\":0,\"bins\":[1,0]}}"
        );
    }

    #[test]
    fn timeline_phases_sum_to_total() {
        let cases = [
            // Full timeline: every boundary present.
            HandshakeTimeline {
                initial_sent_ns: 0,
                stall_begin_ns: Some(20),
                stall_end_ns: Some(60),
                cert_flight_ns: Some(90),
                done_ns: Some(100),
            },
            // No stall (1-RTT handshake).
            HandshakeTimeline {
                initial_sent_ns: 0,
                stall_begin_ns: None,
                stall_end_ns: None,
                cert_flight_ns: Some(40),
                done_ns: Some(40),
            },
            // Stall began but its end was never observed.
            HandshakeTimeline {
                initial_sent_ns: 0,
                stall_begin_ns: Some(30),
                stall_end_ns: None,
                cert_flight_ns: None,
                done_ns: Some(70),
            },
            // Out-of-order timestamps are clamped, never underflow.
            HandshakeTimeline {
                initial_sent_ns: 10,
                stall_begin_ns: Some(5),
                stall_end_ns: Some(200),
                cert_flight_ns: Some(50),
                done_ns: Some(100),
            },
        ];
        for timeline in cases {
            let phases = timeline.phases().expect("completed");
            let sum: u64 = phases.iter().map(|(_, d)| d).sum();
            assert_eq!(
                Some(sum),
                timeline.total_ns(),
                "phases must sum exactly: {timeline:?}"
            );
        }
        // Incomplete handshakes have no phase split.
        assert_eq!(HandshakeTimeline::default().phases(), None);
        assert_eq!(HandshakeTimeline::default().total_ns(), None);
    }
}
