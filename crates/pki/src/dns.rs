//! Simulated DNS resolution (§3.1 funnel).
//!
//! The paper resolves 1M names via 8.8.8.8: 976k "resolve" (no error), 13k
//! SERVFAIL, 9k NXDOMAIN, the rest time out or are REFUSED; 866k of the
//! resolving names return an A record. These rates are encoded here.

use std::net::Ipv4Addr;

/// Outcome of resolving one domain name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsOutcome {
    /// An A record pointing at the serving address.
    A(Ipv4Addr),
    /// The name resolved but returned no A record (e.g. only AAAA/CNAME
    /// dead ends).
    NoARecord,
    /// SERVFAIL from the authoritative side.
    ServFail,
    /// NXDOMAIN.
    NxDomain,
    /// The query timed out (10 s in the paper's setup).
    Timeout,
    /// REFUSED.
    Refused,
}

impl DnsOutcome {
    /// Whether an address was obtained.
    pub fn address(&self) -> Option<Ipv4Addr> {
        match self {
            DnsOutcome::A(addr) => Some(*addr),
            _ => None,
        }
    }

    /// Whether the query got *an* answer (the paper's 976k "resolved").
    pub fn resolved(&self) -> bool {
        matches!(self, DnsOutcome::A(_) | DnsOutcome::NoARecord)
    }
}

/// Per-mille rates of each failure mode, calibrated to §3.1
/// (13k SERVFAIL, 9k NXDOMAIN, ~2k timeout/refused, 110k without A records
/// out of 1M).
#[derive(Debug, Clone, Copy)]
pub struct DnsRates {
    /// SERVFAIL probability.
    pub servfail: f64,
    /// NXDOMAIN probability.
    pub nxdomain: f64,
    /// Timeout probability.
    pub timeout: f64,
    /// REFUSED probability.
    pub refused: f64,
    /// P(no A record | resolved).
    pub no_a_given_resolved: f64,
}

impl Default for DnsRates {
    fn default() -> Self {
        DnsRates {
            servfail: 0.013,
            nxdomain: 0.009,
            timeout: 0.0015,
            refused: 0.0005,
            // 976k resolved, 866k with A → ~11.3% of resolved lack an A.
            no_a_given_resolved: 0.113,
        }
    }
}

/// Resolve a domain given a uniform draw in [0,1) and its serving address.
pub fn resolve(rates: &DnsRates, draw: f64, second_draw: f64, addr: Ipv4Addr) -> DnsOutcome {
    let mut threshold = rates.servfail;
    if draw < threshold {
        return DnsOutcome::ServFail;
    }
    threshold += rates.nxdomain;
    if draw < threshold {
        return DnsOutcome::NxDomain;
    }
    threshold += rates.timeout;
    if draw < threshold {
        return DnsOutcome::Timeout;
    }
    threshold += rates.refused;
    if draw < threshold {
        return DnsOutcome::Refused;
    }
    if second_draw < rates.no_a_given_resolved {
        return DnsOutcome::NoARecord;
    }
    DnsOutcome::A(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_netsim::SimRng;

    #[test]
    fn rates_land_near_paper_funnel() {
        let rates = DnsRates::default();
        let mut rng = SimRng::new(11);
        let n = 200_000;
        let mut resolved = 0usize;
        let mut a_records = 0usize;
        let mut servfail = 0usize;
        for _ in 0..n {
            let out = resolve(
                &rates,
                rng.f64(),
                rng.f64(),
                std::net::Ipv4Addr::new(198, 51, 100, 1),
            );
            if out.resolved() {
                resolved += 1;
            }
            if out.address().is_some() {
                a_records += 1;
            }
            if out == DnsOutcome::ServFail {
                servfail += 1;
            }
        }
        let resolved_rate = resolved as f64 / n as f64;
        let a_rate = a_records as f64 / n as f64;
        let servfail_rate = servfail as f64 / n as f64;
        // Paper: 97.6% resolve, 86.6% return an A record, 1.3% SERVFAIL.
        assert!(
            (resolved_rate - 0.976).abs() < 0.005,
            "resolved {resolved_rate}"
        );
        assert!((a_rate - 0.866).abs() < 0.01, "a-records {a_rate}");
        assert!(
            (servfail_rate - 0.013).abs() < 0.003,
            "servfail {servfail_rate}"
        );
    }

    #[test]
    fn outcome_helpers() {
        let addr = std::net::Ipv4Addr::new(192, 0, 2, 1);
        assert_eq!(DnsOutcome::A(addr).address(), Some(addr));
        assert!(DnsOutcome::A(addr).resolved());
        assert!(DnsOutcome::NoARecord.resolved());
        assert!(!DnsOutcome::NxDomain.resolved());
        assert_eq!(DnsOutcome::Timeout.address(), None);
    }
}
