//! The CA ecosystem of Fig 7: named parent chains as real certificates.
//!
//! Since the certificate-era axis the catalog exists once per
//! [`CertificateEra`]: the classical catalog is byte-for-byte the pre-era
//! one, and the hybrid / post-quantum catalogs rebuild every chain with the
//! same topology, names, seeds and validity but era-mapped keys and
//! signatures (ML-DSA-44/65 and ECDSA+ML-DSA composites).

use std::sync::{Arc, OnceLock};

use crate::era::CertificateEra;
use quicert_netsim::SimRng;
use quicert_x509::ext::KeyUsageFlags;
use quicert_x509::oid;
use quicert_x509::{
    Certificate, CertificateBuilder, CertificateChain, DistinguishedName, Extension, KeyAlgorithm,
    SignatureAlgorithm, SubjectPublicKeyInfo, Time, Validity,
};

/// Identifier of a parent chain in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChainId {
    /// Let's Encrypt R3 alone (short chain; the dominant QUIC chain, ①).
    LeR3Short,
    /// Let's Encrypt R3 + ISRG Root X1 cross-signed by DST Root CA X3 (the
    /// default "long" chain, ②; the cross-sign waste discussed in §4.2).
    LeR3X1Cross,
    /// Let's Encrypt R3 + self-signed ISRG Root X1 (row ⑥ variant).
    LeR3X1Self,
    /// Let's Encrypt E1 alone (compact ECDSA chain, ③).
    LeE1Short,
    /// Let's Encrypt E1 + ISRG Root X2 cross-signed by X1 (marginal size).
    LeE1X2Cross,
    /// Google Trust Services 1C3 + GTS Root R1 (cross-signed), ④.
    Gts1C3,
    /// Google Trust Services 1D4 + GTS Root R1, ⑦.
    Gts1D4,
    /// Google Trust Services 1P5 + GTS Root R1.
    Gts1P5,
    /// Cloudflare Inc ECC CA-3 (single compact intermediate), ⑤/⑩.
    CloudflareEcc,
    /// Sectigo RSA DV + USERTRUST RSA, ⑧.
    SectigoUserTrust,
    /// cPanel + USERTRUST + superfluously included Comodo AAA root, ⑨.
    CPanelComodoRoot,
    /// GlobalSign Atlas R3 DV.
    GlobalSignAtlas,
    /// DigiCert TLS RSA SHA256 2020 CA1.
    DigiCertTls,
    /// DigiCert SHA2 Secure Server CA + DigiCert Global Root (incl. root).
    DigiCertSha2WithRoot,
    /// Amazon RSA 2048 M01 + Amazon Root CA 1.
    AmazonRsa,
    /// GoDaddy Secure CA G2.
    GoDaddyG2,
    /// Starfield Secure CA G2.
    StarfieldG2,
    /// A pathological enterprise chain: several RSA-4096 intermediates
    /// (drives the 18–38 kB tail of Fig 6).
    EnterpriseHuge,
}

impl ChainId {
    /// All catalogued chains.
    pub const ALL: [ChainId; 18] = [
        ChainId::LeR3Short,
        ChainId::LeR3X1Cross,
        ChainId::LeR3X1Self,
        ChainId::LeE1Short,
        ChainId::LeE1X2Cross,
        ChainId::Gts1C3,
        ChainId::Gts1D4,
        ChainId::Gts1P5,
        ChainId::CloudflareEcc,
        ChainId::SectigoUserTrust,
        ChainId::CPanelComodoRoot,
        ChainId::GlobalSignAtlas,
        ChainId::DigiCertTls,
        ChainId::DigiCertSha2WithRoot,
        ChainId::AmazonRsa,
        ChainId::GoDaddyG2,
        ChainId::StarfieldG2,
        ChainId::EnterpriseHuge,
    ];

    /// Display label matching Fig 7's annotations.
    pub fn label(self) -> &'static str {
        match self {
            ChainId::LeR3Short => "Let's Enc. R3",
            ChainId::LeR3X1Cross => "Let's Enc. R3 + X1 (DST cross)",
            ChainId::LeR3X1Self => "Let's Enc. R3 + X1 (self-signed)",
            ChainId::LeE1Short => "Let's Enc. E1",
            ChainId::LeE1X2Cross => "Let's Enc. E1 + X2 (cross)",
            ChainId::Gts1C3 => "Google 1C3",
            ChainId::Gts1D4 => "Google 1D4",
            ChainId::Gts1P5 => "Google 1P5",
            ChainId::CloudflareEcc => "Cloudflare",
            ChainId::SectigoUserTrust => "Sectigo + USERTRUST",
            ChainId::CPanelComodoRoot => "cPanel + USERTRUST + root",
            ChainId::GlobalSignAtlas => "GlobalSign",
            ChainId::DigiCertTls => "DigiCert TLS CA1",
            ChainId::DigiCertSha2WithRoot => "DigiCert SHA2 + root",
            ChainId::AmazonRsa => "Amazon",
            ChainId::GoDaddyG2 => "GoDaddy",
            ChainId::StarfieldG2 => "Starfield",
            ChainId::EnterpriseHuge => "Enterprise (huge)",
        }
    }
}

/// Parameters for issuing one leaf certificate.
#[derive(Debug, Clone)]
pub struct LeafParams {
    /// Subject common name (also the first SAN).
    pub common_name: String,
    /// Additional SAN entries beyond the CN-derived pair.
    pub extra_sans: Vec<String>,
    /// Key algorithm (Table 2 distribution).
    pub key: KeyAlgorithm,
    /// Number of embedded SCTs (browsers require 2; some CAs embed 3).
    pub scts: u8,
    /// Deterministic seed.
    pub seed: u64,
}

/// One catalogued parent chain: the intermediates a server sends above the
/// leaf, ordered leaf-issuer first.
#[derive(Debug, Clone)]
pub struct ParentChain {
    /// Catalog id.
    pub id: ChainId,
    /// The issuing (leaf-signing) CA's distinguished name.
    pub issuer_dn: DistinguishedName,
    /// The issuing CA's signature algorithm over leaves.
    pub leaf_sig: SignatureAlgorithm,
    /// Intermediate certificates, leaf-issuer first. Shared: every leaf
    /// issued under this chain points at the same allocation, so issuing a
    /// million leaves never re-copies the cached intermediate DER.
    pub intermediates: Arc<Vec<Certificate>>,
}

impl ParentChain {
    /// Total DER bytes of the parent (non-leaf) part.
    pub fn parent_der_len(&self) -> usize {
        self.intermediates.iter().map(|c| c.der_len()).sum()
    }
}

/// The full CA ecosystem: every catalogued chain, built deterministically —
/// once per [`CertificateEra`]. The classical catalog is built eagerly
/// (every campaign uses it); the hybrid and post-quantum catalogs — whose
/// certificates carry multi-kilobyte ML-DSA keys and signatures — are built
/// on first use, so era-unaware campaigns pay nothing for the axis.
#[derive(Debug)]
pub struct Ecosystem {
    seed: u64,
    chains: Vec<ParentChain>,
    hybrid: OnceLock<Vec<ParentChain>>,
    post_quantum: OnceLock<Vec<ParentChain>>,
    /// Precomputed AIA URLs (`issue_era` stamps them into every leaf; a
    /// million-record scan must not re-`format!` them per record).
    aia_ocsp_url: String,
    aia_ca_issuers_url: String,
}

impl Ecosystem {
    /// Build the ecosystem from a seed.
    pub fn new(seed: u64) -> Self {
        let ocsp_host = "o.example-ca.test";
        Ecosystem {
            seed,
            chains: Self::catalog(seed, CertificateEra::Classical),
            hybrid: OnceLock::new(),
            post_quantum: OnceLock::new(),
            aia_ocsp_url: format!("http://{ocsp_host}"),
            aia_ca_issuers_url: format!("http://c.{ocsp_host}/issuer.der"),
        }
    }

    /// Build one era's catalog — a pure function of `(seed, era)`, so the
    /// lazily-built era catalogs are exactly what an eager build would have
    /// produced.
    fn catalog(seed: u64, era: CertificateEra) -> Vec<ParentChain> {
        let mut rng = SimRng::new(seed ^ 0xEC05_75E3);
        let b = Builder { rng: &mut rng, era };
        ChainId::ALL.iter().map(|&id| b.build_chain(id)).collect()
    }

    /// Look up a parent chain (classical era).
    pub fn chain(&self, id: ChainId) -> &ParentChain {
        self.chain_era(id, CertificateEra::Classical)
    }

    /// Look up a parent chain in one era's catalog.
    pub fn chain_era(&self, id: ChainId, era: CertificateEra) -> &ParentChain {
        self.chains_era(era)
            .iter()
            .find(|c| c.id == id)
            .expect("all catalogued chains are built")
    }

    /// All chains (classical era).
    pub fn chains(&self) -> &[ParentChain] {
        &self.chains
    }

    /// All chains of one era (hybrid / post-quantum catalogs are built on
    /// first request).
    pub fn chains_era(&self, era: CertificateEra) -> &[ParentChain] {
        match era {
            CertificateEra::Classical => &self.chains,
            CertificateEra::Hybrid => self
                .hybrid
                .get_or_init(|| Self::catalog(self.seed, CertificateEra::Hybrid)),
            CertificateEra::PostQuantum => self
                .post_quantum
                .get_or_init(|| Self::catalog(self.seed, CertificateEra::PostQuantum)),
        }
    }

    /// Issue a leaf under `chain_id` and return the full served chain
    /// (classical era — byte-for-byte the pre-era pipeline).
    pub fn issue(&self, chain_id: ChainId, params: &LeafParams) -> CertificateChain {
        self.issue_era(chain_id, CertificateEra::Classical, params)
    }

    /// Issue a leaf under `chain_id` in one era: identical name, SANs,
    /// seeds and extensions, with the leaf key mapped through
    /// [`CertificateEra::key`] and the era catalog's parent chain above it.
    pub fn issue_era(
        &self,
        chain_id: ChainId,
        era: CertificateEra,
        params: &LeafParams,
    ) -> CertificateChain {
        let parent = self.chain_era(chain_id, era);
        let mut sans = Vec::with_capacity(2 + params.extra_sans.len());
        sans.push(params.common_name.clone());
        if !params.common_name.starts_with("*.") {
            sans.push(format!("www.{}", params.common_name));
        }
        sans.extend(params.extra_sans.iter().cloned());

        let issuer_seed = chain_seed(chain_id);
        let leaf = CertificateBuilder::new(
            parent.issuer_dn.clone(),
            DistinguishedName::cn(&params.common_name),
            SubjectPublicKeyInfo::new(era.key(params.key), params.seed),
            parent.leaf_sig,
        )
        .validity(Validity::days(Time::date(2022, 7, 1), 90))
        .extension(Extension::BasicConstraints {
            ca: false,
            path_len: None,
        })
        .extension(Extension::KeyUsage(KeyUsageFlags::leaf()))
        .extension(Extension::ExtKeyUsage(vec![
            oid::KP_SERVER_AUTH,
            oid::KP_CLIENT_AUTH,
        ]))
        .extension(Extension::SubjectKeyId { seed: params.seed })
        .extension(Extension::AuthorityKeyId { seed: issuer_seed })
        .extension(Extension::SubjectAltNames(sans))
        .extension(Extension::AuthorityInfoAccess {
            ocsp: Some(self.aia_ocsp_url.clone()),
            ca_issuers: Some(self.aia_ca_issuers_url.clone()),
        })
        .extension(Extension::CertificatePolicies(vec![
            oid::CP_DOMAIN_VALIDATED,
        ]))
        .extension(Extension::SctList {
            count: params.scts,
            seed: params.seed ^ 0x5C7,
        })
        .build();

        CertificateChain::new_shared(leaf, Arc::clone(&parent.intermediates))
    }
}

fn chain_seed(id: ChainId) -> u64 {
    // Stable per-chain seed for key identifiers.
    (id as u64 + 1).wrapping_mul(0x0BAD_CA5E_0001)
}

struct Builder<'a> {
    #[allow(dead_code)]
    rng: &'a mut SimRng,
    /// The era this builder's catalog belongs to: every key and signature
    /// is mapped through it ([`CertificateEra::Classical`] is the
    /// identity, so the classical catalog stays byte-for-byte).
    era: CertificateEra,
}

impl Builder<'_> {
    fn ca_cert(
        &self,
        issuer: DistinguishedName,
        subject: DistinguishedName,
        key: KeyAlgorithm,
        sig: SignatureAlgorithm,
        seed: u64,
        extra: Vec<Extension>,
    ) -> Certificate {
        let mut builder = CertificateBuilder::new(
            issuer,
            subject,
            SubjectPublicKeyInfo::new(self.era.key(key), seed),
            self.era.signature(sig),
        )
        .validity(Validity::days(Time::date(2020, 9, 4), 365 * 5))
        .extension(Extension::BasicConstraints {
            ca: true,
            path_len: Some(0),
        })
        .extension(Extension::KeyUsage(KeyUsageFlags::ca()))
        .extension(Extension::SubjectKeyId { seed })
        .extension(Extension::AuthorityKeyId { seed: seed ^ 0xA17 });
        for e in extra {
            builder = builder.extension(e);
        }
        builder.build()
    }

    /// Extensions typical of real intermediates (AIA + CRL + policies) —
    /// these are what make real intermediates 1.2–1.9 kB.
    fn intermediate_extras(&self, ca_host: &str) -> Vec<Extension> {
        vec![
            Extension::AuthorityInfoAccess {
                ocsp: Some(format!("http://ocsp.rootca1.{ca_host}")),
                ca_issuers: Some(format!(
                    "http://certificates.{ca_host}/repository/rootca1.der"
                )),
            },
            Extension::CrlDistributionPoints(vec![
                format!("http://crl3.{ca_host}/certification-authority/rootca1.crl"),
                format!("http://crl4.{ca_host}/certification-authority/rootca1.crl"),
            ]),
            Extension::CertificatePolicies(vec![
                oid::CP_ANY_POLICY,
                oid::CP_DOMAIN_VALIDATED,
                oid::CP_ORG_VALIDATED,
            ]),
            Extension::ExtKeyUsage(vec![oid::KP_SERVER_AUTH, oid::KP_CLIENT_AUTH]),
        ]
    }

    fn build_chain(&self, id: ChainId) -> ParentChain {
        use KeyAlgorithm::*;
        use SignatureAlgorithm::*;

        let isrg = DistinguishedName::ca("US", "Internet Security Research Group", "ISRG Root X1");
        let isrg_x2 =
            DistinguishedName::ca("US", "Internet Security Research Group", "ISRG Root X2");
        let dst = DistinguishedName::ca("US", "Digital Signature Trust Co.", "DST Root CA X3");
        let le_r3 = DistinguishedName::ca("US", "Let's Encrypt", "R3");
        let le_e1 = DistinguishedName::ca("US", "Let's Encrypt", "E1");
        let gts_r1 = DistinguishedName::ca("US", "Google Trust Services LLC", "GTS Root R1");
        let globalsign_root = DistinguishedName::ca("BE", "GlobalSign nv-sa", "GlobalSign Root CA");
        let usertrust = DistinguishedName::ca(
            "US",
            "The USERTRUST Network",
            "USERTrust RSA Certification Authority",
        );
        let comodo = DistinguishedName::ca("GB", "Comodo CA Limited", "AAA Certificate Services");
        let digicert_root = DistinguishedName::ca("US", "DigiCert Inc", "DigiCert Global Root CA");
        let baltimore = DistinguishedName::ca("IE", "Baltimore", "Baltimore CyberTrust Root");
        let amazon_root = DistinguishedName::ca("US", "Amazon", "Amazon Root CA 1");
        let godaddy_root = DistinguishedName::ca(
            "US",
            "GoDaddy.com, Inc.",
            "Go Daddy Root Certificate Authority - G2",
        );
        let starfield_root = DistinguishedName::ca(
            "US",
            "Starfield Technologies, Inc.",
            "Starfield Root Certificate Authority - G2",
        );

        let seed = chain_seed(id);
        let mk_r3 = || {
            self.ca_cert(
                isrg.clone(),
                le_r3.clone(),
                Rsa2048,
                Sha256WithRsa2048,
                seed ^ 0x01,
                self.intermediate_extras("lencr.org"),
            )
        };
        let mk_e1 = || {
            self.ca_cert(
                isrg_x2.clone(),
                le_e1.clone(),
                EcdsaP384,
                EcdsaSha384,
                seed ^ 0x02,
                self.intermediate_extras("lencr.org"),
            )
        };

        let (issuer_dn, leaf_sig, intermediates): (
            DistinguishedName,
            SignatureAlgorithm,
            Vec<Certificate>,
        ) = match id {
            ChainId::LeR3Short => (le_r3.clone(), Sha256WithRsa2048, vec![mk_r3()]),
            ChainId::LeR3X1Cross => {
                // ISRG Root X1 cross-signed by DST Root CA X3: a big
                // RSA-4096 cert that is pure dead weight for modern clients.
                let x1_cross = self.ca_cert(
                    dst.clone(),
                    isrg.clone(),
                    Rsa4096,
                    Sha256WithRsa2048,
                    seed ^ 0x03,
                    self.intermediate_extras("identrust.com"),
                );
                (le_r3.clone(), Sha256WithRsa2048, vec![mk_r3(), x1_cross])
            }
            ChainId::LeR3X1Self => {
                let x1_self = self.ca_cert(
                    isrg.clone(),
                    isrg.clone(),
                    Rsa4096,
                    Sha384WithRsa4096,
                    seed ^ 0x04,
                    vec![],
                );
                (le_r3.clone(), Sha256WithRsa2048, vec![mk_r3(), x1_self])
            }
            ChainId::LeE1Short => (le_e1.clone(), EcdsaSha384, vec![mk_e1()]),
            ChainId::LeE1X2Cross => {
                let x2_cross = self.ca_cert(
                    isrg.clone(),
                    isrg_x2.clone(),
                    EcdsaP384,
                    Sha256WithRsa2048,
                    seed ^ 0x05,
                    self.intermediate_extras("letsencrypt.org"),
                );
                (le_e1.clone(), EcdsaSha384, vec![mk_e1(), x2_cross])
            }
            ChainId::Gts1C3 | ChainId::Gts1D4 | ChainId::Gts1P5 => {
                let cn = match id {
                    ChainId::Gts1C3 => "GTS CA 1C3",
                    ChainId::Gts1D4 => "GTS CA 1D4",
                    _ => "GTS CA 1P5",
                };
                let gts_ca = DistinguishedName::ca("US", "Google Trust Services LLC", cn);
                let inter = self.ca_cert(
                    gts_r1.clone(),
                    gts_ca.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x06,
                    self.intermediate_extras("pki.goog"),
                );
                // GTS Root R1 cross-signed by GlobalSign (sent by default).
                let r1_cross = self.ca_cert(
                    globalsign_root.clone(),
                    gts_r1.clone(),
                    Rsa4096,
                    Sha384WithRsa4096,
                    seed ^ 0x07,
                    self.intermediate_extras("pki.goog"),
                );
                (gts_ca, Sha256WithRsa2048, vec![inter, r1_cross])
            }
            ChainId::CloudflareEcc => {
                let cf = DistinguishedName::ca("US", "Cloudflare, Inc.", "Cloudflare Inc ECC CA-3");
                let inter = self.ca_cert(
                    baltimore.clone(),
                    cf.clone(),
                    EcdsaP256,
                    Sha256WithRsa2048,
                    seed ^ 0x08,
                    self.intermediate_extras("digicert.com"),
                );
                (cf, EcdsaSha256, vec![inter])
            }
            ChainId::SectigoUserTrust => {
                let sectigo = DistinguishedName::ca(
                    "GB",
                    "Sectigo Limited",
                    "Sectigo RSA Domain Validation Secure Server CA",
                );
                let inter = self.ca_cert(
                    usertrust.clone(),
                    sectigo.clone(),
                    Rsa2048,
                    Sha384WithRsa4096,
                    seed ^ 0x09,
                    self.intermediate_extras("sectigo.com"),
                );
                let ut = self.ca_cert(
                    comodo.clone(),
                    usertrust.clone(),
                    Rsa4096,
                    Sha384WithRsa4096,
                    seed ^ 0x0A,
                    self.intermediate_extras("usertrust.com"),
                );
                (sectigo, Sha256WithRsa2048, vec![inter, ut])
            }
            ChainId::CPanelComodoRoot => {
                let cpanel = DistinguishedName::ca(
                    "US",
                    "cPanel, Inc.",
                    "cPanel, Inc. Certification Authority",
                );
                let inter = self.ca_cert(
                    usertrust.clone(),
                    cpanel.clone(),
                    Rsa2048,
                    Sha384WithRsa4096,
                    seed ^ 0x0B,
                    self.intermediate_extras("cpanel.net"),
                );
                let ut = self.ca_cert(
                    comodo.clone(),
                    usertrust.clone(),
                    Rsa4096,
                    Sha384WithRsa4096,
                    seed ^ 0x0C,
                    self.intermediate_extras("usertrust.com"),
                );
                // The superfluously included self-signed trust anchor
                // (§4.2, Fig 7b row ⑨).
                let root = self.ca_cert(
                    comodo.clone(),
                    comodo.clone(),
                    Rsa4096,
                    Sha384WithRsa4096,
                    seed ^ 0x0D,
                    vec![],
                );
                (cpanel, Sha256WithRsa2048, vec![inter, ut, root])
            }
            ChainId::GlobalSignAtlas => {
                let atlas = DistinguishedName::ca(
                    "BE",
                    "GlobalSign nv-sa",
                    "GlobalSign Atlas R3 DV TLS CA H2 2021",
                );
                let inter = self.ca_cert(
                    globalsign_root.clone(),
                    atlas.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x0E,
                    self.intermediate_extras("globalsign.com"),
                );
                (atlas, Sha256WithRsa2048, vec![inter])
            }
            ChainId::DigiCertTls => {
                let dc =
                    DistinguishedName::ca("US", "DigiCert Inc", "DigiCert TLS RSA SHA256 2020 CA1");
                let inter = self.ca_cert(
                    digicert_root.clone(),
                    dc.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x0F,
                    self.intermediate_extras("digicert.com"),
                );
                (dc, Sha256WithRsa2048, vec![inter])
            }
            ChainId::DigiCertSha2WithRoot => {
                let dc =
                    DistinguishedName::ca("US", "DigiCert Inc", "DigiCert SHA2 Secure Server CA");
                let inter = self.ca_cert(
                    digicert_root.clone(),
                    dc.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x10,
                    self.intermediate_extras("digicert.com"),
                );
                let root = self.ca_cert(
                    digicert_root.clone(),
                    digicert_root.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x11,
                    vec![],
                );
                (dc, Sha256WithRsa2048, vec![inter, root])
            }
            ChainId::AmazonRsa => {
                let am = DistinguishedName::ca("US", "Amazon", "Amazon RSA 2048 M01");
                let inter = self.ca_cert(
                    amazon_root.clone(),
                    am.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x12,
                    self.intermediate_extras("amazontrust.com"),
                );
                let root = self.ca_cert(
                    starfield_root.clone(),
                    amazon_root.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x13,
                    self.intermediate_extras("amazontrust.com"),
                );
                (am, Sha256WithRsa2048, vec![inter, root])
            }
            ChainId::GoDaddyG2 => {
                let gd = DistinguishedName::ca(
                    "US",
                    "GoDaddy.com, Inc.",
                    "Go Daddy Secure Certificate Authority - G2",
                );
                let inter = self.ca_cert(
                    godaddy_root.clone(),
                    gd.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x14,
                    self.intermediate_extras("godaddy.com"),
                );
                // GoDaddy bundles commonly ship the root alongside the
                // issuing CA (3-certificate chains in the wild).
                let root = self.ca_cert(
                    godaddy_root.clone(),
                    godaddy_root.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x16,
                    vec![],
                );
                (gd, Sha256WithRsa2048, vec![inter, root])
            }
            ChainId::StarfieldG2 => {
                let sf = DistinguishedName::ca(
                    "US",
                    "Starfield Technologies, Inc.",
                    "Starfield Secure Certificate Authority - G2",
                );
                let inter = self.ca_cert(
                    starfield_root.clone(),
                    sf.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x15,
                    self.intermediate_extras("starfieldtech.com"),
                );
                let root = self.ca_cert(
                    starfield_root.clone(),
                    starfield_root.clone(),
                    Rsa2048,
                    Sha256WithRsa2048,
                    seed ^ 0x17,
                    vec![],
                );
                (sf, Sha256WithRsa2048, vec![inter, root])
            }
            ChainId::EnterpriseHuge => {
                // A deep corporate PKI with RSA-4096 everywhere: policy CA,
                // issuing CA, two regional CAs and the root, all shipped.
                let org = "Worldwide Enterprise Holdings Corporation";
                let root_dn = DistinguishedName::ca("US", org, "Enterprise Global Root Authority");
                let mut dns = vec![root_dn.clone()];
                for name in [
                    "Enterprise Policy Certification Authority",
                    "Enterprise Regional Certification Authority - Americas",
                    "Enterprise Regional Certification Authority - EMEA",
                    "Enterprise TLS Issuing Authority 07",
                ] {
                    dns.push(DistinguishedName::ca("US", org, name));
                }
                let mut certs = Vec::new();
                // Root (self-signed, superfluously included).
                certs.push(self.ca_cert(
                    root_dn.clone(),
                    root_dn.clone(),
                    Rsa4096,
                    Sha384WithRsa4096,
                    seed ^ 0x20,
                    vec![],
                ));
                for i in 1..dns.len() {
                    certs.push(self.ca_cert(
                        dns[i - 1].clone(),
                        dns[i].clone(),
                        Rsa4096,
                        Sha384WithRsa4096,
                        seed ^ (0x21 + i as u64),
                        self.intermediate_extras("enterprise.example"),
                    ));
                }
                // Served leaf-issuer first: issuing CA ... root.
                certs.reverse();
                let issuing = dns.last().unwrap().clone();
                (issuing, Sha384WithRsa4096, certs)
            }
        };

        ParentChain {
            id,
            issuer_dn,
            // The issuing CA signs leaves with its era-mapped algorithm.
            leaf_sig: self.era.signature(leaf_sig),
            intermediates: Arc::new(intermediates),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eco() -> Ecosystem {
        Ecosystem::new(42)
    }

    fn leaf_params(key: KeyAlgorithm) -> LeafParams {
        LeafParams {
            common_name: "shop.example.org".into(),
            extra_sans: vec![],
            key,
            scts: 2,
            seed: 99,
        }
    }

    #[test]
    fn ecosystem_is_deterministic() {
        let a = Ecosystem::new(7);
        let b = Ecosystem::new(7);
        for id in ChainId::ALL {
            assert_eq!(
                a.chain(id).parent_der_len(),
                b.chain(id).parent_der_len(),
                "{id:?}"
            );
        }
    }

    #[test]
    fn parent_chain_sizes_are_realistic() {
        let eco = eco();
        // Reference ballparks from the real certificates (crt.sh).
        let expect: [(ChainId, std::ops::Range<usize>); 6] = [
            (ChainId::LeR3Short, 950..1700),
            (ChainId::LeR3X1Cross, 2100..4200),
            (ChainId::LeE1Short, 700..1300),
            (ChainId::Gts1C3, 2100..4000),
            (ChainId::CloudflareEcc, 900..1500),
            (ChainId::CPanelComodoRoot, 3400..6500),
        ];
        for (id, range) in expect {
            let len = eco.chain(id).parent_der_len();
            assert!(range.contains(&len), "{id:?}: {len} not in {range:?}");
        }
        // The enterprise chain drives the heavy tail.
        assert!(eco.chain(ChainId::EnterpriseHuge).parent_der_len() > 7000);
    }

    #[test]
    fn issued_chains_are_ordered_and_realistic() {
        let eco = eco();
        for id in ChainId::ALL {
            let chain = eco.issue(id, &leaf_params(KeyAlgorithm::EcdsaP256));
            assert!(chain.correctly_ordered(), "{id:?} must chain by DN");
            assert!(chain.depth() >= 2);
            let leaf = &chain.leaf;
            assert!(
                (700..1500).contains(&leaf.der_len()),
                "{id:?} leaf size {}",
                leaf.der_len()
            );
            assert!(leaf.san_count() >= 2);
        }
    }

    #[test]
    fn cross_sign_waste_is_visible() {
        let eco = eco();
        let short = eco.issue(ChainId::LeR3Short, &leaf_params(KeyAlgorithm::EcdsaP256));
        let long = eco.issue(ChainId::LeR3X1Cross, &leaf_params(KeyAlgorithm::EcdsaP256));
        assert!(long.total_der_len() > short.total_der_len() + 1000);
    }

    #[test]
    fn superfluous_roots_are_detected() {
        let eco = eco();
        let with_root = eco.issue(
            ChainId::CPanelComodoRoot,
            &leaf_params(KeyAlgorithm::Rsa2048),
        );
        assert!(with_root.includes_trust_anchor());
        let without = eco.issue(
            ChainId::SectigoUserTrust,
            &leaf_params(KeyAlgorithm::Rsa2048),
        );
        assert!(!without.includes_trust_anchor());
    }

    #[test]
    fn rsa_leaves_are_bigger_than_ecdsa() {
        let eco = eco();
        let ec = eco.issue(ChainId::LeR3Short, &leaf_params(KeyAlgorithm::EcdsaP256));
        let rsa = eco.issue(ChainId::LeR3Short, &leaf_params(KeyAlgorithm::Rsa2048));
        assert!(rsa.leaf.der_len() > ec.leaf.der_len() + 180);
    }

    #[test]
    fn era_catalogs_multiply_chain_sizes() {
        let eco = eco();
        for id in ChainId::ALL {
            let classical = eco
                .chain_era(id, CertificateEra::Classical)
                .parent_der_len();
            let pq = eco
                .chain_era(id, CertificateEra::PostQuantum)
                .parent_der_len();
            let hybrid = eco.chain_era(id, CertificateEra::Hybrid).parent_der_len();
            // Chou & Cao: ML-DSA chains are several times the classical
            // size; hybrids carry both components and are bigger still.
            assert!(
                pq > 2 * classical,
                "{id:?}: pq {pq} vs classical {classical}"
            );
            assert!(hybrid > pq, "{id:?}: hybrid {hybrid} vs pq {pq}");
        }
    }

    #[test]
    fn classical_era_is_byte_for_byte_the_default_catalog() {
        let eco = eco();
        for id in ChainId::ALL {
            let via_default = eco.issue(id, &leaf_params(KeyAlgorithm::EcdsaP256));
            let via_era = eco.issue_era(
                id,
                CertificateEra::Classical,
                &leaf_params(KeyAlgorithm::EcdsaP256),
            );
            assert_eq!(
                via_default.concatenated_der(),
                via_era.concatenated_der(),
                "{id:?}"
            );
        }
    }

    #[test]
    fn era_issued_chains_stay_ordered_with_pq_leaves() {
        let eco = eco();
        for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
            for id in [ChainId::LeR3Short, ChainId::Gts1C3, ChainId::EnterpriseHuge] {
                let chain = eco.issue_era(id, era, &leaf_params(KeyAlgorithm::EcdsaP256));
                assert!(chain.correctly_ordered(), "{era}: {id:?}");
                assert!(chain.leaf.tbs.spki.algorithm.is_post_quantum(), "{era}");
                // The leaf and every intermediate carry era signatures.
                for cert in chain.certs() {
                    assert!(cert.signature_alg.is_post_quantum(), "{era}: {id:?}");
                }
            }
        }
    }

    #[test]
    fn era_catalogs_are_deterministic() {
        let a = Ecosystem::new(7);
        let b = Ecosystem::new(7);
        for era in CertificateEra::ALL {
            for id in ChainId::ALL {
                let x = a.chain_era(id, era);
                let y = b.chain_era(id, era);
                assert_eq!(x.parent_der_len(), y.parent_der_len(), "{era}: {id:?}");
                for (cx, cy) in x.intermediates.iter().zip(y.intermediates.iter()) {
                    assert_eq!(cx.der(), cy.der(), "{era}: {id:?}");
                }
            }
        }
    }

    #[test]
    fn cruise_liner_leaves_blow_up_san_share() {
        let eco = eco();
        let mut params = leaf_params(KeyAlgorithm::Rsa2048);
        params.extra_sans = (0..150)
            .map(|i| format!("customer-site-{i:03}.hosting.example"))
            .collect();
        let chain = eco.issue(ChainId::CPanelComodoRoot, &params);
        let leaf = &chain.leaf;
        let share = leaf.san_bytes() as f64 / leaf.der_len() as f64;
        assert!(share > 0.5, "SAN share {share}");
        assert!(leaf.der_len() > 5000);
    }
}
