//! The certificate-era scenario axis: what the measured world looks like
//! before, during and after the post-quantum PKI migration.
//!
//! The paper's 2022 scan is frozen in the classical era — RSA and ECDSA
//! everywhere. "Network Impact of Post-Quantum Certificate Chain sizes on
//! Time to First Byte in TLS Deployments" (Chou & Cao) shows that ML-DSA
//! and hybrid chains multiply exactly the certificate sizes the paper's
//! figures hinge on. [`CertificateEra`] replays the same population —
//! identical ranks, providers, chain topologies and SAN distributions —
//! with every key and signature swapped to its era-appropriate algorithm,
//! so the 1-RTT→multi-RTT shift and amplification-budget pressure of the
//! migration become measurable on the reproduction's own scanners.
//!
//! [`CertificateEra::Classical`] is the identity mapping: every chain it
//! produces is byte-for-byte the chain the pre-era pipeline produced, so
//! era-unaware campaigns are untouched.

use quicert_x509::{KeyAlgorithm, SignatureAlgorithm};

/// Which PKI generation the world's certificates belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CertificateEra {
    /// The 2022 status quo: RSA-2048/4096 and ECDSA P-256/P-384 (the
    /// default; byte-for-byte the pre-era pipeline).
    Classical,
    /// The migration period: composite ECDSA+ML-DSA keys and signatures on
    /// every certificate (draft-ietf-lamps-pq-composite-sigs).
    Hybrid,
    /// The end state: pure ML-DSA-44/65 keys and signatures (FIPS 204).
    PostQuantum,
}

impl CertificateEra {
    /// All eras, in migration order.
    pub const ALL: [CertificateEra; 3] = [
        CertificateEra::Classical,
        CertificateEra::Hybrid,
        CertificateEra::PostQuantum,
    ];

    /// Stable lowercase name for reports and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            CertificateEra::Classical => "classical",
            CertificateEra::Hybrid => "hybrid",
            CertificateEra::PostQuantum => "post-quantum",
        }
    }

    /// Map a key algorithm to this era's replacement. The security tier is
    /// preserved: level-1 keys (RSA-2048, P-256) move to ML-DSA-44-class
    /// algorithms, level-3+ keys (RSA-4096, P-384) to ML-DSA-65-class
    /// ones. Inputs are *normalised* to the era's algorithm family — a
    /// pure-ML-DSA key fed to the hybrid era becomes the same-tier hybrid
    /// and vice versa; only inputs already in the era's family pass
    /// through unchanged.
    pub fn key(self, classical: KeyAlgorithm) -> KeyAlgorithm {
        use KeyAlgorithm::*;
        match self {
            CertificateEra::Classical => classical,
            CertificateEra::Hybrid => match classical {
                Rsa2048 | EcdsaP256 | MlDsa44 => HybridP256MlDsa44,
                Rsa4096 | EcdsaP384 | MlDsa65 => HybridP384MlDsa65,
                hybrid @ (HybridP256MlDsa44 | HybridP384MlDsa65) => hybrid,
            },
            CertificateEra::PostQuantum => match classical {
                Rsa2048 | EcdsaP256 | HybridP256MlDsa44 => MlDsa44,
                Rsa4096 | EcdsaP384 | HybridP384MlDsa65 => MlDsa65,
                pq @ (MlDsa44 | MlDsa65) => pq,
            },
        }
    }

    /// Map a classical signature algorithm to this era's replacement,
    /// consistently with [`CertificateEra::key`] (a CA whose key maps to X
    /// signs with X's signature algorithm).
    pub fn signature(self, classical: SignatureAlgorithm) -> SignatureAlgorithm {
        use SignatureAlgorithm::*;
        match self {
            CertificateEra::Classical => classical,
            CertificateEra::Hybrid => match classical {
                Sha256WithRsa2048 | EcdsaSha256 | MlDsa44 => CompositeP256MlDsa44,
                Sha384WithRsa4096 | EcdsaSha384 | MlDsa65 => CompositeP384MlDsa65,
                composite @ (CompositeP256MlDsa44 | CompositeP384MlDsa65) => composite,
            },
            CertificateEra::PostQuantum => match classical {
                Sha256WithRsa2048 | EcdsaSha256 | CompositeP256MlDsa44 => MlDsa44,
                Sha384WithRsa4096 | EcdsaSha384 | CompositeP384MlDsa65 => MlDsa65,
                pq @ (MlDsa44 | MlDsa65) => pq,
            },
        }
    }
}

impl std::fmt::Display for CertificateEra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_is_the_identity() {
        for key in KeyAlgorithm::ALL_ERAS {
            assert_eq!(CertificateEra::Classical.key(key), key);
        }
        for sig in [
            SignatureAlgorithm::Sha256WithRsa2048,
            SignatureAlgorithm::EcdsaSha384,
            SignatureAlgorithm::MlDsa44,
        ] {
            assert_eq!(CertificateEra::Classical.signature(sig), sig);
        }
    }

    #[test]
    fn eras_preserve_the_security_tier() {
        use KeyAlgorithm::*;
        assert_eq!(CertificateEra::Hybrid.key(Rsa2048), HybridP256MlDsa44);
        assert_eq!(CertificateEra::Hybrid.key(EcdsaP256), HybridP256MlDsa44);
        assert_eq!(CertificateEra::Hybrid.key(Rsa4096), HybridP384MlDsa65);
        assert_eq!(CertificateEra::Hybrid.key(EcdsaP384), HybridP384MlDsa65);
        assert_eq!(CertificateEra::PostQuantum.key(Rsa2048), MlDsa44);
        assert_eq!(CertificateEra::PostQuantum.key(Rsa4096), MlDsa65);
    }

    #[test]
    fn every_mapped_key_is_post_quantum_outside_classical() {
        for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
            for key in KeyAlgorithm::ALL {
                assert!(era.key(key).is_post_quantum(), "{era}: {key:?}");
                assert!(era.signature(key.signature_algorithm()).is_post_quantum());
            }
        }
    }

    #[test]
    fn key_and_signature_mappings_are_consistent() {
        for era in CertificateEra::ALL {
            for key in KeyAlgorithm::ALL_ERAS {
                assert_eq!(
                    era.key(key).signature_algorithm(),
                    era.signature(key.signature_algorithm()),
                    "{era}: {key:?}"
                );
            }
        }
    }

    #[test]
    fn names_and_order() {
        assert_eq!(CertificateEra::ALL.len(), 3);
        assert_eq!(CertificateEra::Classical.to_string(), "classical");
        assert_eq!(CertificateEra::Hybrid.name(), "hybrid");
        assert_eq!(CertificateEra::PostQuantum.name(), "post-quantum");
        assert!(CertificateEra::Classical < CertificateEra::PostQuantum);
    }
}
