//! # quicert-pki — synthetic CA ecosystem and web population
//!
//! This crate is the *measured world*: a deterministic stand-in for the 1M
//! Tranco domains the paper scans. It has two layers:
//!
//! * [`ecosystem`] builds the CA hierarchy observed in Fig 7 — Let's
//!   Encrypt R3/E1 with the ISRG X1/X2 roots (including the DST-cross-signed
//!   X1 variant), Google Trust Services 1C3/1D4/1P5 under GTS R1, Cloudflare
//!   ECC, Sectigo/USERTRUST/Comodo, DigiCert, GlobalSign, GoDaddy,
//!   Starfield, Amazon and cPanel — as real DER certificates, and issues
//!   leaf certificates under any of its named parent chains.
//!
//! * [`world`] generates a ranked domain population whose deployment
//!   distributions (DNS failures, HTTPS/QUIC adoption, provider and chain
//!   mix, leaf key algorithms, SAN counts, load-balancer tunneling) are
//!   calibrated to the paper's §3/§4 observations. Every derived figure is
//!   then *measured* from this world by the scanner crate.
//!
//! Calibration constants live in [`world::PopulationModel`] with references
//! to the paper sections they encode.

pub mod dns;
pub mod ecosystem;
pub mod era;
pub mod world;

pub use dns::DnsOutcome;
pub use ecosystem::{ChainId, Ecosystem, LeafParams};
pub use era::CertificateEra;
pub use world::{
    DomainChunks, DomainRecord, HttpsDeployment, PopulationModel, Provider, QuicDeployment, World,
    WorldConfig,
};
