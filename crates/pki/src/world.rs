//! The ranked web population the scanners measure.
//!
//! [`World::generate`] builds a deterministic, Tranco-like list of ranked
//! domains. Each domain gets a DNS outcome, an HTTPS deployment (chain +
//! leaf parameters per the Fig 7(b)/Table 2 distributions) and — for ~21%
//! of domains, flat across rank groups (Fig 12) — a QUIC deployment drawn
//! from [`PopulationModel`], which encodes the §4.1 population: ~60%
//! Cloudflare-behaviour services with small chains, a large compliant
//! population with oversized chains (multi-RTT), a sliver of true 1-RTT
//! deployments, rare Retry, and Meta's mvfst PoPs.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, OnceLock, RwLock};

use quicert_compress::Algorithm;
use quicert_netsim::rng::fnv1a;
use quicert_netsim::SimRng;
use quicert_obs::{Counter, MetricsRegistry};
use quicert_x509::{CertificateBuilder, CertificateChain, KeyAlgorithm};

use crate::dns::{self, DnsOutcome, DnsRates};
use crate::ecosystem::{ChainId, Ecosystem, LeafParams};
use crate::era::CertificateEra;

/// Who operates a QUIC service (steers behaviour profile and addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// Cloudflare edge (missing coalescence, uncounted padding).
    Cloudflare,
    /// Google front-ends (compliant, large GTS chains).
    Google,
    /// Meta PoPs running mvfst (resend amplification).
    Meta,
    /// Everyone else: self-hosted or minor CDNs, RFC-compliant stacks.
    SelfHosted,
}

/// The server behaviour family of a deployment (mapped to a concrete
/// `quicert_quic::ServerBehavior` by the scanner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorKind {
    /// RFC 9000/9002-compliant.
    RfcCompliant,
    /// Cloudflare-like: separate padded ACK datagram, uncounted padding.
    CloudflareLike,
    /// mvfst-like before the disclosure (many uncharged resends).
    MvfstPreDisclosure,
    /// mvfst-like after the disclosure (few resends, still over limit).
    MvfstPostDisclosure,
    /// Always-on Retry.
    RetryFirst,
}

/// An HTTPS (TLS-over-TCP) deployment of a domain.
#[derive(Debug, Clone)]
pub struct HttpsDeployment {
    /// Parent chain served.
    pub chain_id: ChainId,
    /// Leaf key algorithm.
    pub leaf_key: KeyAlgorithm,
    /// Number of SANs beyond the CN-derived pair.
    pub extra_sans: u16,
    /// HTTP→HTTPS redirect hops observed before the final host (0–2).
    pub redirect_hops: u8,
}

/// A QUIC deployment of a domain.
#[derive(Debug, Clone)]
pub struct QuicDeployment {
    /// Operator.
    pub provider: Provider,
    /// Server behaviour family.
    pub behavior: BehaviorKind,
    /// Parent chain served over QUIC (= the HTTPS chain unless rotated).
    pub chain_id: ChainId,
    /// Leaf key algorithm.
    pub leaf_key: KeyAlgorithm,
    /// RFC 8879 algorithms the server supports.
    pub compression_support: Vec<Algorithm>,
    /// Tunnelling load balancer in front (adds encapsulation overhead and
    /// breaks large client Initials, §4.1).
    pub behind_lb: bool,
    /// Encapsulation overhead bytes when behind a load balancer.
    pub lb_overhead: usize,
    /// The certificate was rotated between the HTTPS and QUIC scans
    /// (the 2.8% consistency gap of §3.2).
    pub rotated_cert: bool,
    /// How many times the certificate has been reissued since the world
    /// was generated (churn timeline rotations/revocations). Generation 0
    /// is the as-generated certificate, byte-for-byte.
    pub cert_generation: u32,
    /// Churn-timeline era migration: when set, this deployment serves
    /// chains from this era regardless of the campaign's scan era.
    pub era_override: Option<CertificateEra>,
}

impl QuicDeployment {
    /// Leaf-seed perturbation encoding both the §3.2 rotation gap and the
    /// churn generation, so every reissue yields fresh certificate bytes
    /// while generation 0 reproduces the pre-churn chain exactly.
    pub fn cert_seed_shift(&self) -> u64 {
        let rotation = if self.rotated_cert { 0x5EED_0001 } else { 0 };
        rotation ^ (self.cert_generation as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The era this deployment actually serves under a campaign scanning
    /// at `scan_era`: the churn override when a provider migration has
    /// fired, the scan era otherwise.
    pub fn effective_era(&self, scan_era: CertificateEra) -> CertificateEra {
        self.era_override.unwrap_or(scan_era)
    }
}

/// One ranked domain.
#[derive(Debug, Clone)]
pub struct DomainRecord {
    /// Tranco-style rank, 1-based.
    pub rank: usize,
    /// Domain name.
    pub name: String,
    /// DNS resolution outcome.
    pub dns: DnsOutcome,
    /// HTTPS deployment (None = no TLS service).
    pub https: Option<HttpsDeployment>,
    /// QUIC deployment (None = HTTPS only or unreachable).
    pub quic: Option<QuicDeployment>,
    /// Per-domain deterministic seed.
    pub seed: u64,
}

impl DomainRecord {
    /// Whether the domain serves HTTPS (certificate collected).
    pub fn has_https(&self) -> bool {
        self.https.is_some() && self.dns.address().is_some()
    }

    /// Whether the domain is a QUIC service.
    pub fn has_quic(&self) -> bool {
        self.has_https() && self.quic.is_some()
    }

    /// The Tranco 100k rank-group index of this domain.
    pub fn rank_group(&self) -> usize {
        (self.rank - 1) / 100_000
    }
}

/// Calibrated population weights. Each field cites the paper signal it
/// reproduces; weights are relative (normalised at draw time).
#[derive(Debug, Clone)]
pub struct PopulationModel {
    /// P(QUIC | HTTPS-reachable); calibrated so ~21% of *all* domains in
    /// each rank group are QUIC services (Fig 12), given the DNS/HTTPS
    /// funnel ahead of it.
    pub quic_share: f64,
    /// P(HTTPS reachable | A record); Fig 12: QUIC + HTTPS-only ≈ 80%.
    pub https_share: f64,
    /// QUIC deployment group weights, in percent of QUIC services:
    /// (group, weight). Together they reproduce Fig 3's ~61% amplification,
    /// ~38% multi-RTT, 0.75% 1-RTT, 0.07% Retry at Initial = 1362.
    pub quic_groups: Vec<(QuicGroup, f64)>,
    /// 1-RTT share boost for the top-100k ranks (Fig 13: 3.02% vs <1%).
    pub top_rank_one_rtt_share: f64,
    /// P(behind tunnelling LB) for ranks ≤1k / ≤10k / rest (§4.1: −25%,
    /// −12%, −1.2% reachability for large Initials).
    pub lb_share_top1k: f64,
    /// See `lb_share_top1k`.
    pub lb_share_top10k: f64,
    /// See `lb_share_top1k`.
    pub lb_share_rest: f64,
    /// P(brotli support) for non-hypergiant QUIC services (Table 1: 96%
    /// aggregate support).
    pub brotli_support_other: f64,
    /// P(cert rotated between scans) (§3.2: 2.8%).
    pub rotation_rate: f64,
}

/// The QUIC deployment groups of §4.1 as modelled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuicGroup {
    /// Cloudflare with the dominant short Let's Encrypt R3 chain.
    CfLeR3,
    /// Cloudflare with Let's Encrypt E1.
    CfLeE1,
    /// Cloudflare with its own ECC chain.
    CfEcc,
    /// Cloudflare fronting customer-uploaded big chains.
    CfCustomBig,
    /// Self-hosted with the default long Let's Encrypt chain.
    SelfLeLong,
    /// Google front-ends (GTS chains).
    GoogleGts,
    /// Corporate / legacy CAs with heavy chains.
    CorpBig,
    /// Self-hosted Let's Encrypt E1 with the marginal-size cross chain.
    SelfE1Marginal,
    /// Truly optimal 1-RTT deployments (small chain, compliant server).
    OneRttSmall,
    /// Always-on Retry deployments.
    RetryOn,
    /// Meta PoPs (mvfst).
    MetaMvfst,
}

impl Default for PopulationModel {
    fn default() -> Self {
        PopulationModel {
            quic_share: 0.26,
            https_share: 0.925,
            quic_groups: vec![
                (QuicGroup::CfLeR3, 54.0),
                (QuicGroup::CfLeE1, 4.5),
                (QuicGroup::CfEcc, 1.5),
                (QuicGroup::CfCustomBig, 7.0),
                (QuicGroup::SelfLeLong, 15.5),
                (QuicGroup::GoogleGts, 5.0),
                (QuicGroup::CorpBig, 10.2),
                (QuicGroup::SelfE1Marginal, 1.1),
                (QuicGroup::OneRttSmall, 0.75),
                (QuicGroup::RetryOn, 0.07),
                (QuicGroup::MetaMvfst, 0.38),
            ],
            top_rank_one_rtt_share: 3.0,
            lb_share_top1k: 0.25,
            lb_share_top10k: 0.12,
            lb_share_rest: 0.010,
            brotli_support_other: 0.90,
            rotation_rate: 0.028,
        }
    }
}

/// World generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranked domains (the paper scans 1M; default 1:50 scale).
    pub domains: usize,
    /// Master seed.
    pub seed: u64,
    /// Use the post-disclosure Meta behaviour (Fig 11(b)) instead of the
    /// pre-disclosure one (Fig 11(a)).
    pub meta_post_disclosure: bool,
    /// Population calibration.
    pub population: PopulationModel,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            domains: 20_000,
            seed: 0xC04E_2022,
            meta_post_disclosure: false,
            population: PopulationModel::default(),
        }
    }
}

/// Cache key for [`World::quic_chain_der_len_era`]: everything that can
/// change a byte length anywhere in an issued chain. Parent certificates
/// are fixed per `(chain_id, era)`; the leaf varies with the key
/// algorithm, the CN byte length (SANs derive from it), the extra-SAN
/// count, and the encoded serial length (the single seed-dependent DER
/// length — see [`CertificateBuilder::serial_der_len`]).
type ChainLenKey = (ChainId, CertificateEra, KeyAlgorithm, u16, u16, u8);

/// Process-wide world-generation counters on [`MetricsRegistry::global`].
/// Record generation is batched (one `add` per chunk) so the streaming
/// pump's per-record path never touches an atomic it doesn't already own.
struct WorldMetrics {
    records_generated: Arc<Counter>,
    chain_len_cache_hits: Arc<Counter>,
}

fn world_metrics() -> &'static WorldMetrics {
    static METRICS: OnceLock<WorldMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = MetricsRegistry::global();
        WorldMetrics {
            records_generated: reg.counter(
                "quicert_pki_records_generated_total",
                "Domain records derived from world configurations",
            ),
            chain_len_cache_hits: reg.counter(
                "quicert_pki_chain_len_cache_hits_total",
                "Chain-length lookups answered from the per-world class cache",
            ),
        }
    })
}

/// The generated world.
#[derive(Debug)]
pub struct World {
    /// Configuration used.
    pub config: WorldConfig,
    /// The CA ecosystem.
    pub ecosystem: Ecosystem,
    domains: Vec<DomainRecord>,
    materialized: bool,
    chain_len_cache: RwLock<HashMap<ChainLenKey, u32, quicert_netsim::FastHashBuilder>>,
}

const TLDS: [(&str, f64); 8] = [
    ("com", 0.52),
    ("org", 0.09),
    ("net", 0.07),
    ("de", 0.06),
    ("io", 0.05),
    ("co.uk", 0.04),
    ("fr", 0.04),
    ("app", 0.03),
];

const NAME_STEMS: [&str; 16] = [
    "shop", "news", "cloud", "media", "play", "data", "mail", "portal", "store", "tech", "blog",
    "app", "api", "cdn", "travel", "bank",
];

impl World {
    /// Generate a world.
    pub fn generate(config: WorldConfig) -> World {
        let ecosystem = Ecosystem::new(config.seed);
        let root = SimRng::new(config.seed);
        let mut domains = Vec::with_capacity(config.domains);
        for rank in 1..=config.domains {
            domains.push(Self::generate_domain(&config, &root, rank));
        }
        world_metrics().records_generated.add(domains.len() as u64);
        World {
            config,
            ecosystem,
            domains,
            materialized: true,
            chain_len_cache: RwLock::new(HashMap::default()),
        }
    }

    /// A world whose population is never materialised: the ecosystem and
    /// configuration are built as usual, but [`World::domains`] stays empty
    /// and records are derived on demand through
    /// [`World::stream_domains`]. This is the at-scale entry point — a
    /// million-domain config costs the same to construct as a ten-domain
    /// one. Chain materialisation ([`World::quic_chain_era`] etc.) works
    /// unchanged, since it only reads the ecosystem and the record itself.
    pub fn streaming(config: WorldConfig) -> World {
        World {
            ecosystem: Ecosystem::new(config.seed),
            config,
            domains: Vec::new(),
            materialized: false,
            chain_len_cache: RwLock::new(HashMap::default()),
        }
    }

    /// Whether the population is held in memory ([`World::generate`]) or
    /// derived on demand ([`World::streaming`]).
    pub fn populated(&self) -> bool {
        self.materialized
    }

    /// Derive one domain record by rank (1-based) straight from the
    /// configuration — exactly the record [`World::generate`] would store
    /// at `rank`, whether or not this world materialised its population.
    pub fn domain_at(&self, rank: usize) -> DomainRecord {
        debug_assert!(rank >= 1 && rank <= self.config.domains);
        world_metrics().records_generated.inc();
        Self::generate_domain(&self.config, &SimRng::new(self.config.seed), rank)
    }

    /// Derive the chunk of up to `chunk_size` records starting at
    /// `first_rank` (1-based), clipped to the population; empty when
    /// `first_rank` is past the end. This is the rank-addressable unit of
    /// [`World::stream_domains`] — because it only reads the
    /// configuration, concurrent workers can derive disjoint chunks
    /// without any shared state.
    pub fn domain_chunk(&self, first_rank: usize, chunk_size: usize) -> Vec<DomainRecord> {
        let mut out = Vec::new();
        self.domain_chunk_into(first_rank, chunk_size, &mut out);
        out
    }

    /// [`World::domain_chunk`] into a caller-owned buffer, clearing it
    /// first. The streaming pump claims chunks in a tight per-worker loop;
    /// reusing one buffer per worker keeps record storage (names, DNS,
    /// deployments) out of the allocator between chunks.
    pub fn domain_chunk_into(
        &self,
        first_rank: usize,
        chunk_size: usize,
        out: &mut Vec<DomainRecord>,
    ) {
        out.clear();
        let total = self.config.domains;
        if first_rank > total || first_rank == 0 || chunk_size == 0 {
            return;
        }
        let end = first_rank.saturating_add(chunk_size - 1).min(total);
        // One root per chunk: forking per rank off this root is what keeps
        // records rank-addressable, and building the root once amortises it
        // over the whole chunk.
        let root = SimRng::new(self.config.seed);
        out.reserve(end + 1 - first_rank);
        for rank in first_rank..=end {
            out.push(Self::generate_domain(&self.config, &root, rank));
        }
        world_metrics().records_generated.add(out.len() as u64);
    }

    /// Stream the population as rank-ordered chunks of `chunk_size`
    /// records (the last chunk may be shorter) without ever holding more
    /// than one chunk in memory.
    ///
    /// Every record is derived per rank from a forked RNG stream — the
    /// same per-record derivation [`World::generate`] runs — so the
    /// concatenation of all chunks is identical to a materialised
    /// [`World::domains`] at **any** chunk size, and small worlds stay
    /// byte-for-byte what they were before streaming existed (pinned by a
    /// chunk-size-invariance proptest).
    pub fn stream_domains(&self, chunk_size: usize) -> DomainChunks<'_> {
        DomainChunks {
            world: self,
            chunk_size: chunk_size.max(1),
            next_rank: 1,
        }
    }

    /// All domain records in rank order (empty for a [`World::streaming`]
    /// world — use [`World::stream_domains`] there).
    pub fn domains(&self) -> &[DomainRecord] {
        &self.domains
    }

    /// The QUIC services of the world.
    pub fn quic_services(&self) -> impl Iterator<Item = &DomainRecord> {
        self.domains.iter().filter(|d| d.has_quic())
    }

    /// The HTTPS-only services.
    pub fn https_only_services(&self) -> impl Iterator<Item = &DomainRecord> {
        self.domains
            .iter()
            .filter(|d| d.has_https() && !d.has_quic())
    }

    /// Materialise the certificate chain a domain serves over HTTPS.
    pub fn https_chain(&self, record: &DomainRecord) -> Option<CertificateChain> {
        self.https_chain_era(record, CertificateEra::Classical)
    }

    /// [`World::https_chain`] in one [`CertificateEra`]: the same
    /// deployment (ranks, providers, chain topology, SANs, seeds) with
    /// every key and signature swapped to the era's algorithms. The
    /// classical era reproduces [`World::https_chain`] byte-for-byte.
    pub fn https_chain_era(
        &self,
        record: &DomainRecord,
        era: CertificateEra,
    ) -> Option<CertificateChain> {
        let https = record.https.as_ref()?;
        // A provider era migration moves the whole deployment, so the HTTPS
        // chain follows the QUIC deployment's override when one exists.
        let era = record
            .quic
            .as_ref()
            .map(|q| q.effective_era(era))
            .unwrap_or(era);
        Some(self.ecosystem.issue_era(
            https.chain_id,
            era,
            &Self::leaf_params(record, https.chain_id, https.leaf_key, https.extra_sans),
        ))
    }

    /// Materialise the certificate chain a domain serves over QUIC (same as
    /// HTTPS unless the cert was rotated between scans, §3.2).
    pub fn quic_chain(&self, record: &DomainRecord) -> Option<CertificateChain> {
        self.quic_chain_era(record, CertificateEra::Classical)
    }

    /// [`World::quic_chain`] in one [`CertificateEra`].
    pub fn quic_chain_era(
        &self,
        record: &DomainRecord,
        era: CertificateEra,
    ) -> Option<CertificateChain> {
        let quic = record.quic.as_ref()?;
        let https = record.https.as_ref()?;
        let era = quic.effective_era(era);
        let mut params = Self::leaf_params(record, quic.chain_id, quic.leaf_key, https.extra_sans);
        params.seed ^= quic.cert_seed_shift();
        Some(self.ecosystem.issue_era(quic.chain_id, era, &params))
    }

    /// Total DER byte length of [`World::quic_chain_era`]'s chain without
    /// materialising it on the hot path.
    ///
    /// Chain lengths are shared by construction: parents are fixed per
    /// `(chain_id, era)` and the leaf's encoding is length-stable given its
    /// key algorithm, CN length, extra-SAN count and encoded serial length
    /// (all other seed-dependent bytes fill fixed-size fields). The first
    /// record of each such class issues the chain once and caches the
    /// length; every later same-class record is a lock-read + hash lookup.
    /// The cache's correctness test doubles as the proof that chain bytes
    /// are a pure function of exactly this key tuple — which is what lets
    /// the streaming scan memo key on the tuple directly, with no length
    /// lookup at all on its per-record path.
    pub fn quic_chain_der_len_era(
        &self,
        record: &DomainRecord,
        era: CertificateEra,
    ) -> Option<u32> {
        let quic = record.quic.as_ref()?;
        let https = record.https.as_ref()?;
        let era = quic.effective_era(era);
        let serial_len =
            CertificateBuilder::serial_der_len(record.seed ^ quic.cert_seed_shift()) as u8;
        let key: ChainLenKey = (
            quic.chain_id,
            era,
            quic.leaf_key,
            record.name.len() as u16,
            https.extra_sans,
            serial_len,
        );
        if let Some(&len) = self
            .chain_len_cache
            .read()
            .expect("cache poisoned")
            .get(&key)
        {
            world_metrics().chain_len_cache_hits.inc();
            return Some(len);
        }
        let len = self.quic_chain_era(record, era)?.total_der_len() as u32;
        self.chain_len_cache
            .write()
            .expect("cache poisoned")
            .insert(key, len);
        Some(len)
    }

    fn leaf_params(
        record: &DomainRecord,
        _chain: ChainId,
        key: KeyAlgorithm,
        extra_sans: u16,
    ) -> LeafParams {
        let extra = (0..extra_sans)
            .map(|i| format!("alt-{i:03}.{}", record.name))
            .collect();
        LeafParams {
            common_name: record.name.clone(),
            extra_sans: extra,
            key,
            scts: 2,
            seed: record.seed,
        }
    }

    /// The serving IPv4 address of a domain (provider-dependent prefix).
    pub fn server_addr(record: &DomainRecord) -> Ipv4Addr {
        let provider = record
            .quic
            .as_ref()
            .map(|q| q.provider)
            .unwrap_or(Provider::SelfHosted);
        let h = fnv1a(record.name.as_bytes());
        match provider {
            Provider::Cloudflare => {
                Ipv4Addr::new(104, 16 + (h % 16) as u8, (h >> 8) as u8, (h >> 16) as u8)
            }
            Provider::Google => {
                Ipv4Addr::new(142, 250 + (h % 2) as u8, (h >> 8) as u8, (h >> 16) as u8)
            }
            Provider::Meta => Ipv4Addr::new(157, 240, (h >> 8) as u8, (h >> 16) as u8),
            Provider::SelfHosted => {
                Ipv4Addr::new(198, 18 + (h % 2) as u8, (h >> 8) as u8, (h >> 16) as u8)
            }
        }
    }

    fn generate_domain(config: &WorldConfig, root: &SimRng, rank: usize) -> DomainRecord {
        let mut rng = root.fork(rank as u64);
        let seed = rng.next_u64();

        // Name: stem + rank + TLD (weighted). Assembled by hand — the
        // formatting machinery behind `format!` is measurable across a
        // ten-million-record stream (output pinned byte-identical by
        // `hand_assembled_names_match_format`).
        let stem = NAME_STEMS[(rng.next_u64() % NAME_STEMS.len() as u64) as usize];
        let tld = TLDS[rng
            .weighted_index_by(TLDS.len(), |i| TLDS[i].1)
            .unwrap_or(0)]
        .0;
        let mut name = String::with_capacity(stem.len() + tld.len() + 21);
        name.push_str(stem);
        push_decimal(&mut name, rank);
        name.push('.');
        name.push_str(tld);

        // DNS funnel (§3.1).
        let addr_seed = fnv1a(name.as_bytes());
        let provisional_addr = Ipv4Addr::new(
            198,
            18 + (addr_seed % 2) as u8,
            (addr_seed >> 8) as u8,
            (addr_seed >> 16) as u8,
        );
        let dns = dns::resolve(&DnsRates::default(), rng.f64(), rng.f64(), provisional_addr);

        let pop = &config.population;
        let mut https = None;
        let mut quic = None;
        if dns.address().is_some() && rng.chance(pop.https_share) {
            let is_quic = rng.chance(pop.quic_share);
            if is_quic {
                let deployment = Self::draw_quic_deployment(config, &mut rng, rank);
                let marginal = deployment.chain_id == ChainId::LeE1X2Cross;
                let extra_sans = if marginal {
                    rng.range(16, 40) as u16
                } else {
                    Self::draw_extra_sans(&mut rng)
                };
                https = Some(HttpsDeployment {
                    chain_id: deployment.chain_id,
                    leaf_key: deployment.leaf_key,
                    extra_sans,
                    redirect_hops: (rng.next_u64() % 3) as u8,
                });
                quic = Some(deployment);
            } else {
                https = Some(Self::draw_https_only(&mut rng));
            }
        }

        DomainRecord {
            rank,
            name,
            dns,
            https,
            quic,
            seed,
        }
    }

    fn draw_extra_sans(rng: &mut SimRng) -> u16 {
        // Appendix E: most leaves have few SANs; ~1% are SAN-heavy; ~0.1%
        // are cruise liners.
        let d = rng.f64();
        if d < 0.80 {
            rng.range(0, 3) as u16
        } else if d < 0.99 {
            rng.range(4, 12) as u16
        } else if d < 0.999 {
            rng.range(13, 60) as u16
        } else {
            rng.range(100, 250) as u16
        }
    }

    /// Table 2, HTTPS-only leaf row: RSA-heavy.
    fn draw_https_leaf_key(rng: &mut SimRng) -> KeyAlgorithm {
        match rng.weighted_index(&[81.4, 8.1, 7.8, 1.9]).unwrap() {
            0 => KeyAlgorithm::Rsa2048,
            1 => KeyAlgorithm::Rsa4096,
            2 => KeyAlgorithm::EcdsaP256,
            _ => KeyAlgorithm::EcdsaP384,
        }
    }

    fn draw_https_only(rng: &mut SimRng) -> HttpsDeployment {
        // Fig 7(b) chain mix (plus a long tail of the catalogued rest).
        let chains: [(ChainId, f64); 18] = [
            (ChainId::LeR3X1Cross, 41.4),
            (ChainId::SectigoUserTrust, 7.3),
            (ChainId::LeR3Short, 7.4),
            (ChainId::CPanelComodoRoot, 2.2),
            (ChainId::DigiCertTls, 6.4),
            (ChainId::DigiCertSha2WithRoot, 3.2),
            (ChainId::AmazonRsa, 4.0),
            (ChainId::Gts1C3, 2.5),
            (ChainId::LeE1Short, 2.0),
            (ChainId::GoDaddyG2, 1.8),
            (ChainId::StarfieldG2, 1.6),
            (ChainId::LeR3X1Self, 1.5),
            (ChainId::CloudflareEcc, 1.4),
            (ChainId::GlobalSignAtlas, 1.2),
            (ChainId::EnterpriseHuge, 0.4),
            (ChainId::LeE1X2Cross, 0.7),
            (ChainId::Gts1D4, 0.5),
            (ChainId::Gts1P5, 0.3),
        ];
        let chain_id = chains[rng
            .weighted_index_by(chains.len(), |i| chains[i].1)
            .unwrap()]
        .0;
        let leaf_key = match chain_id {
            // ECDSA-only issuers.
            ChainId::LeE1Short | ChainId::LeE1X2Cross | ChainId::CloudflareEcc => {
                KeyAlgorithm::EcdsaP256
            }
            _ => Self::draw_https_leaf_key(rng),
        };
        HttpsDeployment {
            chain_id,
            leaf_key,
            extra_sans: Self::draw_extra_sans(rng),
            redirect_hops: (rng.next_u64() % 3) as u8,
        }
    }

    fn draw_quic_deployment(config: &WorldConfig, rng: &mut SimRng, rank: usize) -> QuicDeployment {
        let pop = &config.population;
        // Fig 13: the top-100k ranks have a visibly larger 1-RTT share.
        // The adjustment is applied on the fly — cloning the group table per
        // record was a measurable share of generation cost at 1M domains.
        let top_rank = rank <= (config.domains / 10).max(1);
        let group_weight = |i: usize| -> f64 {
            let (group, weight) = pop.quic_groups[i];
            if top_rank {
                if group == QuicGroup::OneRttSmall {
                    return pop.top_rank_one_rtt_share;
                }
                if group == QuicGroup::CfLeR3 {
                    return weight - (pop.top_rank_one_rtt_share - 0.75);
                }
            }
            weight
        };
        let group = pop.quic_groups[rng
            .weighted_index_by(pop.quic_groups.len(), group_weight)
            .unwrap()]
        .0;

        let (provider, behavior, chain_id, leaf_key) = match group {
            QuicGroup::CfLeR3 => (
                Provider::Cloudflare,
                BehaviorKind::CloudflareLike,
                ChainId::LeR3Short,
                KeyAlgorithm::EcdsaP256,
            ),
            QuicGroup::CfLeE1 => (
                Provider::Cloudflare,
                BehaviorKind::CloudflareLike,
                ChainId::LeE1Short,
                KeyAlgorithm::EcdsaP256,
            ),
            QuicGroup::CfEcc => (
                Provider::Cloudflare,
                BehaviorKind::CloudflareLike,
                ChainId::CloudflareEcc,
                KeyAlgorithm::EcdsaP256,
            ),
            QuicGroup::CfCustomBig => (
                Provider::Cloudflare,
                BehaviorKind::CloudflareLike,
                ChainId::LeR3X1Cross,
                KeyAlgorithm::Rsa2048,
            ),
            QuicGroup::SelfLeLong => {
                let key = if rng.chance(0.30) {
                    KeyAlgorithm::EcdsaP256
                } else {
                    KeyAlgorithm::Rsa2048
                };
                (
                    Provider::SelfHosted,
                    BehaviorKind::RfcCompliant,
                    ChainId::LeR3X1Cross,
                    key,
                )
            }
            QuicGroup::GoogleGts => {
                let chain = match rng.weighted_index(&[60.0, 25.0, 15.0]).unwrap() {
                    0 => ChainId::Gts1C3,
                    1 => ChainId::Gts1D4,
                    _ => ChainId::Gts1P5,
                };
                let key = if rng.chance(0.9) {
                    KeyAlgorithm::EcdsaP256
                } else {
                    KeyAlgorithm::Rsa2048
                };
                (Provider::Google, BehaviorKind::RfcCompliant, chain, key)
            }
            QuicGroup::CorpBig => {
                let chains: [(ChainId, f64); 7] = [
                    (ChainId::SectigoUserTrust, 2.2),
                    (ChainId::CPanelComodoRoot, 2.0),
                    (ChainId::DigiCertSha2WithRoot, 2.6),
                    (ChainId::AmazonRsa, 1.4),
                    (ChainId::GoDaddyG2, 1.2),
                    (ChainId::StarfieldG2, 0.2),
                    (ChainId::EnterpriseHuge, 0.6),
                ];
                let chain = chains[rng
                    .weighted_index_by(chains.len(), |i| chains[i].1)
                    .unwrap()]
                .0;
                let key = if rng.chance(0.08) {
                    KeyAlgorithm::Rsa4096
                } else {
                    KeyAlgorithm::Rsa2048
                };
                (Provider::SelfHosted, BehaviorKind::RfcCompliant, chain, key)
            }
            QuicGroup::SelfE1Marginal => (
                Provider::SelfHosted,
                BehaviorKind::RfcCompliant,
                ChainId::LeE1X2Cross,
                KeyAlgorithm::EcdsaP256,
            ),
            QuicGroup::OneRttSmall => {
                // Fig 7a row 10: GlobalSign Atlas accounts for roughly half
                // of the rare truly-optimal deployments.
                let chain = match rng.weighted_index(&[0.35, 0.15, 0.50]).unwrap() {
                    0 => ChainId::LeE1Short,
                    1 => ChainId::LeR3Short,
                    _ => ChainId::GlobalSignAtlas,
                };
                (
                    Provider::SelfHosted,
                    BehaviorKind::RfcCompliant,
                    chain,
                    KeyAlgorithm::EcdsaP256,
                )
            }
            QuicGroup::RetryOn => (
                Provider::SelfHosted,
                BehaviorKind::RetryFirst,
                ChainId::LeR3Short,
                KeyAlgorithm::EcdsaP256,
            ),
            QuicGroup::MetaMvfst => {
                let behavior = if config.meta_post_disclosure {
                    BehaviorKind::MvfstPostDisclosure
                } else {
                    BehaviorKind::MvfstPreDisclosure
                };
                (
                    Provider::Meta,
                    behavior,
                    ChainId::DigiCertSha2WithRoot,
                    KeyAlgorithm::Rsa2048,
                )
            }
        };

        // Compression support: Cloudflare/Google/Meta all support brotli;
        // Meta additionally offers zlib+zstd (the 0.05% of Table 1).
        let compression_support = match provider {
            Provider::Meta => vec![Algorithm::Brotli, Algorithm::Zlib, Algorithm::Zstd],
            Provider::Cloudflare | Provider::Google => vec![Algorithm::Brotli],
            Provider::SelfHosted => {
                if rng.chance(pop.brotli_support_other) {
                    vec![Algorithm::Brotli]
                } else {
                    vec![]
                }
            }
        };

        let lb_share = if rank <= 1_000 {
            pop.lb_share_top1k
        } else if rank <= 10_000 {
            pop.lb_share_top10k
        } else {
            pop.lb_share_rest
        };
        let behind_lb = rng.chance(lb_share);
        let lb_overhead = if behind_lb {
            rng.range(28, 60) as usize
        } else {
            0
        };

        QuicDeployment {
            provider,
            behavior,
            chain_id,
            leaf_key,
            compression_support,
            behind_lb,
            lb_overhead,
            rotated_cert: rng.chance(pop.rotation_rate),
            cert_generation: 0,
            era_override: None,
        }
    }
}

/// Append `value` to `out` in decimal — `format!`'s output without its
/// per-call formatter machinery (the population generator's hottest line).
fn push_decimal(out: &mut String, value: usize) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = value;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&digits[i..]).expect("decimal digits are ASCII"));
}

/// Rank-ordered chunks of a world's population, derived on demand (see
/// [`World::stream_domains`]). Memory held at any instant is one chunk.
#[derive(Debug)]
pub struct DomainChunks<'a> {
    world: &'a World,
    chunk_size: usize,
    next_rank: usize,
}

impl Iterator for DomainChunks<'_> {
    type Item = Vec<DomainRecord>;

    fn next(&mut self) -> Option<Vec<DomainRecord>> {
        if self.next_rank > self.world.config.domains {
            return None;
        }
        let chunk = self.world.domain_chunk(self.next_rank, self.chunk_size);
        self.next_rank = self.next_rank.saturating_add(self.chunk_size);
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_assembled_names_match_format() {
        for rank in [0usize, 1, 9, 10, 99, 12_345, 1_000_000, usize::MAX] {
            let mut name = String::new();
            name.push_str("shop");
            push_decimal(&mut name, rank);
            name.push('.');
            name.push_str("co.uk");
            assert_eq!(name, format!("shop{rank}.co.uk"));
        }
    }

    fn small_world() -> World {
        World::generate(WorldConfig {
            domains: 10_000,
            seed: 1,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.domains().len(), b.domains().len());
        for (x, y) in a.domains().iter().zip(b.domains()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.has_quic(), y.has_quic());
        }
    }

    #[test]
    fn cached_chain_len_equals_materialised_chain_len() {
        // The O(1) length accessor must agree with actually issuing the
        // chain for every record and era — including rotated certs and the
        // rare trimmed-serial leaves the cache key exists to separate.
        let world = small_world();
        for era in CertificateEra::ALL {
            for record in world.domains().iter().filter(|r| r.has_quic()) {
                let cached = world.quic_chain_der_len_era(record, era).unwrap();
                let issued = world.quic_chain_era(record, era).unwrap().total_der_len();
                assert_eq!(cached as usize, issued, "rank {} era {era:?}", record.rank);
            }
        }
        // Far fewer classes than records, or the cache buys nothing.
        let quic_records = world.domains().iter().filter(|r| r.has_quic()).count();
        let classes = world.chain_len_cache.read().unwrap().len();
        assert!(
            classes * 4 < quic_records * CertificateEra::ALL.len(),
            "{classes} classes for {quic_records} records"
        );
    }

    #[test]
    fn chain_len_accessor_is_none_without_quic() {
        let world = small_world();
        let record = world
            .domains()
            .iter()
            .find(|r| !r.has_quic())
            .expect("some record without quic");
        assert_eq!(
            world.quic_chain_der_len_era(record, CertificateEra::Classical),
            None
        );
    }

    #[test]
    fn streamed_chunks_reproduce_the_materialised_population() {
        let world = small_world();
        for chunk_size in [1usize, 64, 4096, usize::MAX] {
            let streamed: Vec<DomainRecord> = world.stream_domains(chunk_size).flatten().collect();
            assert_eq!(streamed.len(), world.domains().len(), "chunk {chunk_size}");
            for (s, m) in streamed.iter().zip(world.domains()) {
                assert_eq!(s.rank, m.rank);
                assert_eq!(s.name, m.name);
                assert_eq!(s.seed, m.seed);
                assert_eq!(s.has_quic(), m.has_quic());
                assert_eq!(s.has_https(), m.has_https());
            }
        }
    }

    #[test]
    fn streaming_world_never_materialises_but_derives_identically() {
        let config = WorldConfig {
            domains: 2_000,
            seed: 9,
            ..WorldConfig::default()
        };
        let lazy = World::streaming(config.clone());
        assert!(!lazy.populated());
        assert!(lazy.domains().is_empty());
        let eager = World::generate(config);
        assert!(eager.populated());
        // Chunks derived from the shell equal the materialised records,
        // and chains materialise per record exactly as on the eager world.
        let mut streamed = 0usize;
        for chunk in lazy.stream_domains(512) {
            for record in &chunk {
                let eager_record = &eager.domains()[record.rank - 1];
                assert_eq!(record.seed, eager_record.seed);
                assert_eq!(record.name, eager_record.name);
                if record.has_quic() && record.rank <= 200 {
                    let a = lazy.quic_chain(record).unwrap();
                    let b = eager.quic_chain(eager_record).unwrap();
                    assert_eq!(a.concatenated_der(), b.concatenated_der());
                }
                streamed += 1;
            }
        }
        assert_eq!(streamed, 2_000);
        // Point derivation agrees too.
        assert_eq!(lazy.domain_at(1_234).name, eager.domains()[1_233].name);
    }

    #[test]
    fn adoption_rates_match_calibration() {
        let world = small_world();
        let n = world.domains().len() as f64;
        let quic = world.quic_services().count() as f64;
        let https_only = world.https_only_services().count() as f64;
        // Fig 12: ~21% QUIC, ~59% additional HTTPS-only (of HTTPS≈80%).
        assert!((quic / n - 0.21).abs() < 0.025, "quic {}", quic / n);
        assert!(
            (https_only / n - 0.59).abs() < 0.05,
            "https-only {}",
            https_only / n
        );
    }

    #[test]
    fn cloudflare_dominates_quic_population() {
        let world = small_world();
        let quic: Vec<_> = world.quic_services().collect();
        let cf = quic
            .iter()
            .filter(|d| d.quic.as_ref().unwrap().provider == Provider::Cloudflare)
            .count() as f64;
        let share = cf / quic.len() as f64;
        assert!((share - 0.67).abs() < 0.05, "cf share {share}");
    }

    #[test]
    fn chains_materialise_and_match_deployment() {
        let world = small_world();
        let record = world.quic_services().next().expect("some QUIC service");
        let chain = world.quic_chain(record).unwrap();
        assert!(chain.correctly_ordered());
        assert_eq!(
            chain.leaf.tbs.subject.common_name(),
            Some(record.name.as_str())
        );
        let https_chain = world.https_chain(record).unwrap();
        if !record.quic.as_ref().unwrap().rotated_cert {
            assert_eq!(chain.leaf.der(), https_chain.leaf.der());
        }
    }

    #[test]
    fn era_chains_share_the_population_and_swap_the_algorithms() {
        let world = small_world();
        let record = world.quic_services().next().expect("some QUIC service");
        let classical = world.quic_chain(record).unwrap();
        let classical_era = world
            .quic_chain_era(record, CertificateEra::Classical)
            .unwrap();
        // The classical era is the identity — byte-for-byte.
        assert_eq!(
            classical.concatenated_der(),
            classical_era.concatenated_der()
        );
        for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
            let chain = world.quic_chain_era(record, era).unwrap();
            // Same population: identical subject, depth and SAN bytes.
            assert_eq!(
                chain.leaf.tbs.subject.common_name(),
                Some(record.name.as_str()),
                "{era}"
            );
            assert_eq!(chain.depth(), classical.depth(), "{era}");
            assert_eq!(chain.leaf.san_count(), classical.leaf.san_count());
            // Swapped algorithms: much bigger wire footprint.
            assert!(chain.leaf.tbs.spki.algorithm.is_post_quantum(), "{era}");
            assert!(
                chain.total_der_len() > 2 * classical.total_der_len(),
                "{era}: {} vs {}",
                chain.total_der_len(),
                classical.total_der_len()
            );
            let https = world.https_chain_era(record, era).unwrap();
            if !record.quic.as_ref().unwrap().rotated_cert {
                assert_eq!(chain.leaf.der(), https.leaf.der(), "{era}");
            }
        }
    }

    #[test]
    fn meta_services_offer_all_three_algorithms() {
        let world = World::generate(WorldConfig {
            domains: 30_000,
            seed: 3,
            ..WorldConfig::default()
        });
        let meta: Vec<_> = world
            .quic_services()
            .filter(|d| d.quic.as_ref().unwrap().provider == Provider::Meta)
            .collect();
        assert!(!meta.is_empty(), "a 30k world should contain Meta services");
        for d in &meta {
            assert_eq!(d.quic.as_ref().unwrap().compression_support.len(), 3);
        }
    }

    #[test]
    fn lb_deployment_concentrates_at_top_ranks() {
        let world = World::generate(WorldConfig {
            domains: 50_000,
            seed: 5,
            ..WorldConfig::default()
        });
        let lb_rate = |lo: usize, hi: usize| {
            let (lb, total) = world
                .quic_services()
                .filter(|d| d.rank >= lo && d.rank < hi)
                .fold((0usize, 0usize), |(lb, n), d| {
                    (lb + d.quic.as_ref().unwrap().behind_lb as usize, n + 1)
                });
            lb as f64 / total.max(1) as f64
        };
        let top = lb_rate(1, 1_000);
        let mid = lb_rate(1_000, 10_000);
        let rest = lb_rate(10_000, 50_000);
        assert!(top > mid && mid > rest, "{top} > {mid} > {rest}");
    }

    #[test]
    fn server_addresses_follow_providers() {
        let world = small_world();
        for d in world.quic_services().take(200) {
            let addr = World::server_addr(d);
            match d.quic.as_ref().unwrap().provider {
                Provider::Cloudflare => assert_eq!(addr.octets()[0], 104),
                Provider::Google => assert_eq!(addr.octets()[0], 142),
                Provider::Meta => assert_eq!(addr.octets()[0], 157),
                Provider::SelfHosted => assert_eq!(addr.octets()[0], 198),
            }
        }
    }
}
