//! Anti-amplification accounting, including the historical IETF policies.
//!
//! Table 3 of the paper traces how the QUIC drafts evolved their
//! amplification mitigation: from nothing (draft-01), via a minimum client
//! Initial size (draft-02), a three-*packet* limit (draft-10), a
//! three-*datagram* limit (draft-13), to the final three-times-bytes rule
//! (draft-15 onward, RFC 9000). [`LimitPolicy`] implements each so the
//! workspace can ablate them; [`AmplificationBudget`] is the server-side
//! account that answers "may I send these bytes to this unvalidated peer?".

/// An anti-amplification policy, as specified by successive QUIC drafts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitPolicy {
    /// Draft-01: amplification mentioned, but no server-side limit.
    Unlimited,
    /// Draft-10..12: at most three Handshake *packets* to an unverified
    /// source address.
    ThreePackets,
    /// Draft-13..14: at most three *datagrams* (Initial + Handshake) to an
    /// unverified source address.
    ThreeDatagrams,
    /// Draft-15..RFC 9000: at most three times the *bytes* received from
    /// the unverified address.
    ThreeTimesBytes,
}

impl LimitPolicy {
    /// The policy of RFC 9000 (and drafts 15+).
    pub const RFC9000: LimitPolicy = LimitPolicy::ThreeTimesBytes;

    /// All policies, in historical order (Table 3).
    pub const HISTORY: [LimitPolicy; 4] = [
        LimitPolicy::Unlimited,
        LimitPolicy::ThreePackets,
        LimitPolicy::ThreeDatagrams,
        LimitPolicy::ThreeTimesBytes,
    ];

    /// Human-readable label with the draft range, as in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            LimitPolicy::Unlimited => "draft-01..09: no server limit",
            LimitPolicy::ThreePackets => "draft-10..12: <=3 handshake packets",
            LimitPolicy::ThreeDatagrams => "draft-13..14: <=3 datagrams",
            LimitPolicy::ThreeTimesBytes => "draft-15..RFC9000: <=3x received bytes",
        }
    }
}

/// Per-connection amplification account kept by a server until the client's
/// address is validated.
#[derive(Debug, Clone)]
pub struct AmplificationBudget {
    policy: LimitPolicy,
    /// Bytes received from the (unvalidated) client address.
    received_bytes: usize,
    /// Bytes charged for sent data (implementations with accounting bugs
    /// may charge less than they send — see [`Self::charge`]).
    charged_bytes: usize,
    /// Datagrams sent while unvalidated.
    sent_datagrams: usize,
    /// Packets sent while unvalidated.
    sent_packets: usize,
    validated: bool,
}

impl AmplificationBudget {
    /// Fresh budget under `policy`.
    pub fn new(policy: LimitPolicy) -> Self {
        AmplificationBudget {
            policy,
            received_bytes: 0,
            charged_bytes: 0,
            sent_datagrams: 0,
            sent_packets: 0,
            validated: false,
        }
    }

    /// Record bytes received from the client (UDP payload).
    pub fn on_receive(&mut self, bytes: usize) {
        self.received_bytes += bytes;
    }

    /// Mark the client address as validated; all limits lift.
    pub fn validate(&mut self) {
        self.validated = true;
    }

    /// Whether the address has been validated.
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Total bytes received from the client so far.
    pub fn received(&self) -> usize {
        self.received_bytes
    }

    /// Bytes charged against the budget so far.
    pub fn charged(&self) -> usize {
        self.charged_bytes
    }

    /// Whether a datagram of `bytes` (containing `packets` packets) may be
    /// sent right now under the policy.
    pub fn allows(&self, bytes: usize, packets: usize) -> bool {
        if self.validated {
            return true;
        }
        match self.policy {
            LimitPolicy::Unlimited => true,
            LimitPolicy::ThreePackets => self.sent_packets + packets <= 3,
            LimitPolicy::ThreeDatagrams => self.sent_datagrams < 3,
            LimitPolicy::ThreeTimesBytes => self.charged_bytes + bytes <= 3 * self.received_bytes,
        }
    }

    /// Charge a sent datagram against the budget. `charged_bytes` may be
    /// less than the true wire size for buggy implementations that, e.g.,
    /// do not count padding (the Cloudflare behaviour of §4.1) or resends
    /// (the mvfst behaviour of §4.3).
    pub fn charge(&mut self, charged_bytes: usize, packets: usize) {
        self.charged_bytes += charged_bytes;
        self.sent_datagrams += 1;
        self.sent_packets += packets;
    }

    /// Remaining byte allowance under the RFC 9000 policy (usize::MAX when
    /// validated or not byte-limited).
    pub fn remaining_bytes(&self) -> usize {
        if self.validated {
            return usize::MAX;
        }
        match self.policy {
            LimitPolicy::ThreeTimesBytes => {
                (3 * self.received_bytes).saturating_sub(self.charged_bytes)
            }
            _ => usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc9000_three_times_bytes() {
        let mut b = AmplificationBudget::new(LimitPolicy::RFC9000);
        b.on_receive(1200);
        assert!(b.allows(3600, 3));
        assert!(!b.allows(3601, 3));
        b.charge(3000, 3);
        assert!(b.allows(600, 1));
        assert!(!b.allows(601, 1));
        assert_eq!(b.remaining_bytes(), 600);
    }

    #[test]
    fn validation_lifts_all_limits() {
        let mut b = AmplificationBudget::new(LimitPolicy::RFC9000);
        b.on_receive(10);
        assert!(!b.allows(1000, 1));
        b.validate();
        assert!(b.allows(1_000_000, 100));
        assert_eq!(b.remaining_bytes(), usize::MAX);
    }

    #[test]
    fn three_packets_policy_counts_packets_not_bytes() {
        let mut b = AmplificationBudget::new(LimitPolicy::ThreePackets);
        b.on_receive(1);
        assert!(b.allows(100_000, 3));
        b.charge(100_000, 3);
        assert!(!b.allows(1, 1));
    }

    #[test]
    fn three_datagrams_policy() {
        let mut b = AmplificationBudget::new(LimitPolicy::ThreeDatagrams);
        b.on_receive(1);
        for _ in 0..3 {
            assert!(b.allows(50_000, 4));
            b.charge(50_000, 4);
        }
        assert!(!b.allows(1, 1));
    }

    #[test]
    fn unlimited_policy_never_blocks() {
        let mut b = AmplificationBudget::new(LimitPolicy::Unlimited);
        assert!(b.allows(usize::MAX / 2, 1000));
        b.charge(usize::MAX / 2, 1000);
        assert!(b.allows(usize::MAX / 2, 1000));
    }

    #[test]
    fn undercharging_models_accounting_bugs() {
        // A Cloudflare-style server sends 1200 wire bytes but charges only
        // the unpadded 100: the budget thinks there is room left even when
        // the wire has exceeded 3x.
        let mut b = AmplificationBudget::new(LimitPolicy::RFC9000);
        b.on_receive(500); // limit = 1500
        b.charge(100, 1); // actually sent 1200
        assert!(b.allows(1400, 1), "budget believes 1400 still fits");
        assert_eq!(b.charged(), 100);
    }

    #[test]
    fn more_receipts_grow_the_budget() {
        let mut b = AmplificationBudget::new(LimitPolicy::RFC9000);
        b.on_receive(1200);
        b.charge(3600, 3);
        assert!(!b.allows(1, 1));
        b.on_receive(40); // a client ACK arrives (but no validation yet)
        assert!(b.allows(120, 1));
    }

    #[test]
    fn history_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            LimitPolicy::HISTORY.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
