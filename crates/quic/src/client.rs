//! The QUIC client state machine (scanner / browser model).
//!
//! The client sends a ClientHello in an Initial datagram padded to a
//! configurable size — the paper's central independent variable (Fig 3
//! sweeps it from 1200 to 1472 bytes) — then acknowledges server flights,
//! reassembles the TLS handshake, and finishes with its Handshake-level
//! Finished message.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use quicert_compress::Algorithm;
use quicert_netsim::{Datagram, Endpoint, SimDuration, SimTime};
use quicert_tls::{
    client_hello, parse_new_session_ticket, server_hello_accepted_psk, ClientHelloParams,
    NewSessionTicket, PskOffer,
};

use crate::frame::Frame;
use crate::packet::{
    assemble_datagram, parse_datagram, ConnectionId, Packet, PacketType, QUIC_MIN_INITIAL_SIZE,
};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// UDP payload size of the Initial datagram (1200..=1472 in the sweep;
    /// browsers use 1250/1357, see Table 1).
    pub initial_size: usize,
    /// Compression algorithms offered via RFC 8879.
    pub compression: Vec<Algorithm>,
    /// SNI server name.
    pub server_name: String,
    /// Source address of the client (spoofed for telescope experiments).
    pub src: Ipv4Addr,
    /// Destination server address.
    pub dst: Ipv4Addr,
    /// Whether to acknowledge server data and complete the handshake.
    /// `false` models a spoofing attacker (or a loss-blinded victim path).
    pub send_acks: bool,
    /// Retransmit the Initial this many times in total when nothing is
    /// heard back (models scanner retries; 1 = one shot).
    pub max_initial_transmissions: u32,
    /// Probe timeout before retransmitting the Initial.
    pub pto: SimDuration,
    /// Session-ticket offer for a resumed handshake. `None` (the default)
    /// sends the classic cold ClientHello byte-for-byte.
    pub psk: Option<PskOffer>,
    /// Deterministic seed.
    pub seed: u64,
}

impl ClientConfig {
    /// A scanner client with the given Initial size.
    pub fn scanner(initial_size: usize, dst: Ipv4Addr, seed: u64) -> Self {
        ClientConfig {
            initial_size,
            compression: vec![],
            server_name: "scan.invalid".into(),
            src: Ipv4Addr::new(203, 0, 113, 7),
            dst,
            send_acks: true,
            max_initial_transmissions: 2,
            pto: SimDuration::from_secs(1),
            psk: None,
            seed,
        }
    }
}

/// The client connection endpoint.
#[derive(Debug)]
pub struct ClientConn {
    config: ClientConfig,
    scid: ConnectionId,
    dcid: ConnectionId,
    server_cid: Option<ConnectionId>,
    token: Vec<u8>,
    initial_pn: u64,
    handshake_pn: u64,
    // Reassembly buffers per encryption level.
    initial_rx: BTreeMap<u64, Vec<u8>>,
    handshake_rx: BTreeMap<u64, Vec<u8>>,
    onertt_rx: BTreeMap<u64, Vec<u8>>,
    largest_initial_rx: Option<u64>,
    largest_handshake_rx: Option<u64>,
    got_server_hello: bool,
    handshake_messages_done: bool,
    fin_sent: bool,
    /// When the client had the full server handshake (handshake complete
    /// from the client's perspective).
    pub completed_at: Option<SimTime>,
    /// When the client first had the whole certificate flight verified
    /// (Certificate/CompressedCertificate + CertificateVerify on the cold
    /// path; the accepted PSK on a resumed one). Feeds the handshake phase
    /// timeline.
    pub cert_flight_at: Option<SimTime>,
    /// Whether the server accepted our PSK offer (resumed handshake).
    pub psk_accepted: bool,
    /// A NewSessionTicket the server issued post-handshake, if any.
    pub ticket: Option<NewSessionTicket>,
    /// Whether a Retry was received.
    pub saw_retry: bool,
    /// UDP payload bytes of the first Initial datagram sent.
    pub first_datagram_len: usize,
    /// Total UDP payload bytes sent.
    pub wire_sent: usize,
    transmissions: u32,
    pto_deadline: Option<SimTime>,
}

impl ClientConn {
    /// Create a client endpoint.
    pub fn new(config: ClientConfig) -> Self {
        let scid = ConnectionId::from_seed(config.seed ^ 0xC11E);
        let dcid = ConnectionId::from_seed(config.seed ^ 0xD1D1);
        ClientConn {
            config,
            scid,
            dcid,
            server_cid: None,
            token: Vec::new(),
            initial_pn: 0,
            handshake_pn: 0,
            initial_rx: BTreeMap::new(),
            handshake_rx: BTreeMap::new(),
            onertt_rx: BTreeMap::new(),
            largest_initial_rx: None,
            largest_handshake_rx: None,
            got_server_hello: false,
            handshake_messages_done: false,
            fin_sent: false,
            completed_at: None,
            cert_flight_at: None,
            psk_accepted: false,
            ticket: None,
            saw_retry: false,
            first_datagram_len: 0,
            wire_sent: 0,
            transmissions: 0,
            pto_deadline: None,
        }
    }

    /// The client's source connection ID.
    pub fn scid(&self) -> &ConnectionId {
        &self.scid
    }

    /// Whether the handshake completed.
    pub fn handshake_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Number of Initial transmissions so far (1 = no PTO retransmission).
    pub fn transmissions(&self) -> u32 {
        self.transmissions
    }

    fn initial_datagram(&mut self) -> Vec<u8> {
        let ch = client_hello(&ClientHelloParams {
            server_name: self.config.server_name.clone(),
            compression: self.config.compression.clone(),
            psk: self.config.psk.clone(),
            seed: self.config.seed,
        });
        let mut pkt = Packet::new(
            PacketType::Initial,
            self.dcid.clone(),
            self.scid.clone(),
            self.next_initial_pn(),
            vec![Frame::Crypto {
                offset: 0,
                data: ch,
            }],
        );
        pkt.token = self.token.clone();
        assemble_datagram(vec![pkt], Some(self.config.initial_size))
    }

    fn next_initial_pn(&mut self) -> u64 {
        let pn = self.initial_pn;
        self.initial_pn += 1;
        pn
    }

    fn next_handshake_pn(&mut self) -> u64 {
        let pn = self.handshake_pn;
        self.handshake_pn += 1;
        pn
    }

    fn send(&mut self, payload: Vec<u8>, out: &mut Vec<Datagram>) {
        self.wire_sent += payload.len();
        if self.first_datagram_len == 0 {
            self.first_datagram_len = payload.len();
        }
        out.push(Datagram::new(
            self.config.src,
            self.config.dst,
            50_443,
            443,
            payload,
        ));
    }

    fn contiguous(buffer: &BTreeMap<u64, Vec<u8>>) -> Vec<u8> {
        let mut out = Vec::new();
        let mut next = 0u64;
        for (&off, data) in buffer {
            if off > next {
                break;
            }
            let skip = (next - off) as usize;
            if skip < data.len() {
                out.extend_from_slice(&data[skip..]);
                next = off + data.len() as u64;
            }
        }
        out
    }

    /// Split a byte stream into complete TLS handshake messages.
    /// Incomplete trailing data is ignored.
    fn messages(stream: &[u8]) -> Vec<&[u8]> {
        let mut msgs = Vec::new();
        let mut pos = 0usize;
        while stream.len() >= pos + 4 {
            let len = ((stream[pos + 1] as usize) << 16)
                | ((stream[pos + 2] as usize) << 8)
                | stream[pos + 3] as usize;
            if stream.len() < pos + 4 + len {
                break;
            }
            msgs.push(&stream[pos..pos + 4 + len]);
            pos += 4 + len;
        }
        msgs
    }

    /// Parse complete TLS handshake messages from a byte stream, returning
    /// their types. Incomplete trailing data is ignored.
    fn message_types(stream: &[u8]) -> Vec<u8> {
        Self::messages(stream).iter().map(|m| m[0]).collect()
    }

    fn check_progress(&mut self, now: SimTime) {
        if !self.got_server_hello {
            let stream = Self::contiguous(&self.initial_rx);
            for msg in Self::messages(&stream) {
                if msg[0] == 2 {
                    self.got_server_hello = true;
                    // A resumed handshake is signalled by the ServerHello's
                    // pre_shared_key extension (only meaningful when we
                    // actually offered one).
                    self.psk_accepted = self.config.psk.is_some() && server_hello_accepted_psk(msg);
                    break;
                }
            }
        }
        if self.got_server_hello && !self.handshake_messages_done {
            let stream = Self::contiguous(&self.handshake_rx);
            let types = Self::message_types(&stream);
            // Cold path: EncryptedExtensions(8), Certificate(11)/
            // Compressed(25), CertificateVerify(15), Finished(20). A
            // resumed flight omits certificate authentication entirely, so
            // EE + Finished complete it.
            let certs_done = self.psk_accepted
                || ((types.contains(&11) || types.contains(&25)) && types.contains(&15));
            if certs_done && self.cert_flight_at.is_none() {
                self.cert_flight_at = Some(now);
            }
            let done = types.contains(&8) && certs_done && types.contains(&20);
            if done {
                self.handshake_messages_done = true;
                if self.completed_at.is_none() {
                    self.completed_at = Some(now);
                }
            }
        }
        if self.ticket.is_none() {
            let stream = Self::contiguous(&self.onertt_rx);
            self.ticket = Self::messages(&stream)
                .into_iter()
                .find_map(parse_new_session_ticket);
        }
    }

    fn build_acks(&mut self) -> Vec<u8> {
        let server_cid = self.server_cid.clone().unwrap_or_else(|| self.dcid.clone());
        let mut packets = Vec::new();
        if let Some(largest) = self.largest_initial_rx {
            packets.push(Packet::new(
                PacketType::Initial,
                server_cid.clone(),
                self.scid.clone(),
                self.next_initial_pn(),
                vec![Frame::Ack {
                    largest,
                    delay: 0,
                    first_range: largest,
                }],
            ));
        }
        if let Some(largest) = self.largest_handshake_rx {
            let mut frames = vec![Frame::Ack {
                largest,
                delay: 0,
                first_range: largest,
            }];
            if self.handshake_messages_done && !self.fin_sent {
                // Client Finished: 4-byte header + 32-byte verify data.
                let mut fin = vec![20u8, 0, 0, 32];
                fin.extend_from_slice(&[0xF1; 32]);
                frames.push(Frame::Crypto {
                    offset: 0,
                    data: fin,
                });
                self.fin_sent = true;
            }
            packets.push(Packet::new(
                PacketType::Handshake,
                server_cid,
                self.scid.clone(),
                self.next_handshake_pn(),
                frames,
            ));
        }
        if packets.is_empty() {
            return Vec::new();
        }
        // Client datagrams containing Initial packets must be padded
        // (RFC 9000 §14.1).
        let pad = packets
            .iter()
            .any(|p| p.ty == PacketType::Initial)
            .then_some(QUIC_MIN_INITIAL_SIZE);
        assemble_datagram(packets, pad)
    }
}

impl Endpoint for ClientConn {
    fn start(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        let dgram = self.initial_datagram();
        self.transmissions = 1;
        self.pto_deadline = Some(now + self.config.pto);
        self.send(dgram, out);
    }

    fn on_datagram(&mut self, dgram: &Datagram, now: SimTime, out: &mut Vec<Datagram>) {
        let Some(packets) = parse_datagram(&dgram.payload) else {
            return;
        };
        let mut saw_ack_eliciting = false;
        for pkt in packets {
            match pkt.ty {
                PacketType::Retry => {
                    if !self.saw_retry {
                        self.saw_retry = true;
                        self.token = pkt.token.clone();
                        self.server_cid = Some(pkt.scid.clone());
                        // Restart with the token; the Retry resets the
                        // connection state.
                        self.initial_rx.clear();
                        self.largest_initial_rx = None;
                        self.dcid = pkt.scid.clone();
                        if self.config.send_acks {
                            let dgram = self.initial_datagram();
                            self.send(dgram, out);
                        }
                    }
                }
                PacketType::Initial => {
                    self.server_cid = Some(pkt.scid.clone());
                    self.largest_initial_rx = Some(
                        self.largest_initial_rx
                            .map_or(pkt.number, |l| l.max(pkt.number)),
                    );
                    for frame in &pkt.frames {
                        if let Frame::Crypto { offset, data } = frame {
                            self.initial_rx.insert(*offset, data.clone());
                        }
                    }
                    if pkt.frames.iter().any(|f| f.is_ack_eliciting()) {
                        saw_ack_eliciting = true;
                    }
                }
                PacketType::Handshake => {
                    self.largest_handshake_rx = Some(
                        self.largest_handshake_rx
                            .map_or(pkt.number, |l| l.max(pkt.number)),
                    );
                    for frame in &pkt.frames {
                        if let Frame::Crypto { offset, data } = frame {
                            self.handshake_rx.insert(*offset, data.clone());
                        }
                    }
                    if pkt.frames.iter().any(|f| f.is_ack_eliciting()) {
                        saw_ack_eliciting = true;
                    }
                }
                PacketType::OneRtt => {
                    // Post-handshake messages (NewSessionTicket). Recorded
                    // but never acknowledged at our abstraction level, so
                    // the cold wire exchange is unchanged when no ticket
                    // arrives.
                    for frame in &pkt.frames {
                        if let Frame::Crypto { offset, data } = frame {
                            self.onertt_rx.insert(*offset, data.clone());
                        }
                    }
                }
            }
        }
        self.check_progress(now);
        // Server responded: stop Initial retransmissions.
        self.pto_deadline = None;
        if self.config.send_acks && saw_ack_eliciting {
            let ack = self.build_acks();
            if !ack.is_empty() {
                self.send(ack, out);
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        self.pto_deadline = None;
        if self.handshake_complete() {
            return;
        }
        if self.transmissions < self.config.max_initial_transmissions {
            self.transmissions += 1;
            let dgram = self.initial_datagram();
            self.pto_deadline = Some(now + self.config.pto.saturating_mul(2));
            self.send(dgram, out);
        }
    }

    fn next_timer(&self) -> Option<SimTime> {
        if self.handshake_complete() {
            return None;
        }
        self.pto_deadline
    }

    fn is_done(&self) -> bool {
        self.handshake_complete() && self.fin_sent
    }
}

/// A client that sends exactly one Initial and never reacts: the spoofing
/// attacker / ZMap probe of §4.3.
#[derive(Debug)]
pub struct SilentClient {
    config: ClientConfig,
    inner: ClientConn,
    /// Whether the Initial has been sent.
    sent: bool,
}

impl SilentClient {
    /// Create a silent prober with the given (spoofed) source address.
    pub fn new(mut config: ClientConfig) -> Self {
        config.send_acks = false;
        config.max_initial_transmissions = 1;
        let inner = ClientConn::new(config.clone());
        SilentClient {
            config,
            inner,
            sent: false,
        }
    }

    /// The SCID used in the probe (telescope sessions group by the
    /// *server's* SCID, which mirrors this connection's IDs).
    pub fn scid(&self) -> &ConnectionId {
        self.inner.scid()
    }

    /// The probe's Initial datagram size.
    pub fn initial_size(&self) -> usize {
        self.config.initial_size
    }
}

impl Endpoint for SilentClient {
    fn start(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
        let dgram = self.inner.initial_datagram();
        self.inner.wire_sent += dgram.len();
        self.inner.first_datagram_len = dgram.len();
        self.sent = true;
        out.push(Datagram::new(
            self.config.src,
            self.config.dst,
            50_443,
            443,
            dgram,
        ));
    }

    fn on_datagram(&mut self, _dgram: &Datagram, _now: SimTime, _out: &mut Vec<Datagram>) {
        // Spoofed source: the real host never sees the response.
    }

    fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}

    fn next_timer(&self) -> Option<SimTime> {
        None
    }

    fn is_done(&self) -> bool {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_datagram_is_padded_to_configured_size() {
        for size in [1200usize, 1250, 1357, 1472] {
            let mut client = ClientConn::new(ClientConfig::scanner(
                size,
                Ipv4Addr::new(198, 51, 100, 1),
                9,
            ));
            let dgram = client.initial_datagram();
            assert_eq!(dgram.len(), size);
            let parsed = parse_datagram(&dgram).unwrap();
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0].ty, PacketType::Initial);
        }
    }

    #[test]
    fn message_type_parser_handles_partial_messages() {
        let mut stream = vec![8u8, 0, 0, 2, 0xAA, 0xBB]; // complete EE
        stream.extend_from_slice(&[11, 0, 0, 100, 1, 2, 3]); // truncated CERT
        assert_eq!(ClientConn::message_types(&stream), vec![8]);
    }

    #[test]
    fn silent_client_sends_once_and_stays_silent() {
        let mut client = SilentClient::new(ClientConfig::scanner(
            1252,
            Ipv4Addr::new(198, 51, 100, 1),
            3,
        ));
        let mut out = Vec::new();
        client.start(SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload_len(), 1252);
        assert!(client.is_done());
        let reply = out[0].reply_with(vec![0u8; 100]);
        let mut out2 = Vec::new();
        client.on_datagram(&reply, SimTime::ZERO, &mut out2);
        assert!(out2.is_empty());
        assert_eq!(client.next_timer(), None);
    }
}
