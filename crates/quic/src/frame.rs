//! QUIC frames (RFC 9000 §19) — the subset the handshake needs.

use crate::varint;

/// A QUIC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// PADDING (type 0x00). `n` consecutive padding bytes.
    Padding {
        /// Number of padding bytes (each is its own one-byte frame on the
        /// wire; they are run-length grouped here).
        n: usize,
    },
    /// PING (type 0x01).
    Ping,
    /// ACK (type 0x02) without ECN counts.
    Ack {
        /// Largest acknowledged packet number.
        largest: u64,
        /// ACK delay (already scaled).
        delay: u64,
        /// Length of the first ACK range (packets immediately below
        /// `largest`).
        first_range: u64,
    },
    /// CRYPTO (type 0x06).
    Crypto {
        /// Byte offset in the CRYPTO stream of this encryption level.
        offset: u64,
        /// Stream data.
        data: Vec<u8>,
    },
    /// CONNECTION_CLOSE (type 0x1c).
    ConnectionClose {
        /// Transport error code.
        error_code: u64,
    },
}

impl Frame {
    /// Whether the frame is ack-eliciting (RFC 9002 §2).
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Padding { .. } | Frame::Ack { .. } | Frame::ConnectionClose { .. }
        )
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::Padding { n } => *n,
            Frame::Ping => 1,
            Frame::Ack {
                largest,
                delay,
                first_range,
            } => 1 + varint::len(*largest) + varint::len(*delay) + 1 + varint::len(*first_range),
            Frame::Crypto { offset, data } => {
                1 + varint::len(*offset) + varint::len(data.len() as u64) + data.len()
            }
            Frame::ConnectionClose { error_code } => 1 + varint::len(*error_code) + 1 + 1,
        }
    }

    /// Append the encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Padding { n } => out.extend(std::iter::repeat_n(0u8, *n)),
            Frame::Ping => out.push(0x01),
            Frame::Ack {
                largest,
                delay,
                first_range,
            } => {
                out.push(0x02);
                varint::write(out, *largest);
                varint::write(out, *delay);
                varint::write(out, 0); // range count
                varint::write(out, *first_range);
            }
            Frame::Crypto { offset, data } => {
                out.push(0x06);
                varint::write(out, *offset);
                varint::write(out, data.len() as u64);
                out.extend_from_slice(data);
            }
            Frame::ConnectionClose { error_code } => {
                out.push(0x1C);
                varint::write(out, *error_code);
                varint::write(out, 0); // offending frame type
                varint::write(out, 0); // empty reason
            }
        }
    }

    /// Decode all frames in a packet payload. Padding runs are coalesced.
    pub fn decode_all(payload: &[u8]) -> Option<Vec<Frame>> {
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while pos < payload.len() {
            let ty = payload[pos];
            match ty {
                0x00 => {
                    let start = pos;
                    while pos < payload.len() && payload[pos] == 0x00 {
                        pos += 1;
                    }
                    frames.push(Frame::Padding { n: pos - start });
                }
                0x01 => {
                    pos += 1;
                    frames.push(Frame::Ping);
                }
                0x02 | 0x03 => {
                    pos += 1;
                    let largest = varint::read(payload, &mut pos)?;
                    let delay = varint::read(payload, &mut pos)?;
                    let range_count = varint::read(payload, &mut pos)?;
                    let first_range = varint::read(payload, &mut pos)?;
                    for _ in 0..range_count {
                        varint::read(payload, &mut pos)?;
                        varint::read(payload, &mut pos)?;
                    }
                    if ty == 0x03 {
                        // ECN counts.
                        for _ in 0..3 {
                            varint::read(payload, &mut pos)?;
                        }
                    }
                    frames.push(Frame::Ack {
                        largest,
                        delay,
                        first_range,
                    });
                }
                0x06 => {
                    pos += 1;
                    let offset = varint::read(payload, &mut pos)?;
                    let len = varint::read(payload, &mut pos)? as usize;
                    let data = payload.get(pos..pos + len)?.to_vec();
                    pos += len;
                    frames.push(Frame::Crypto { offset, data });
                }
                0x1C | 0x1D => {
                    pos += 1;
                    let error_code = varint::read(payload, &mut pos)?;
                    if ty == 0x1C {
                        varint::read(payload, &mut pos)?;
                    }
                    let reason_len = varint::read(payload, &mut pos)? as usize;
                    pos = pos.checked_add(reason_len)?;
                    if pos > payload.len() {
                        return None;
                    }
                    frames.push(Frame::ConnectionClose { error_code });
                }
                _ => return None,
            }
        }
        Some(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frames: &[Frame]) -> Vec<Frame> {
        let mut buf = Vec::new();
        for f in frames {
            f.encode(&mut buf);
        }
        let total: usize = frames.iter().map(|f| f.encoded_len()).sum();
        assert_eq!(buf.len(), total, "encoded_len must match actual encoding");
        Frame::decode_all(&buf).expect("decode")
    }

    #[test]
    fn crypto_frame_roundtrips() {
        let frames = vec![Frame::Crypto {
            offset: 1200,
            data: vec![7u8; 900],
        }];
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn ack_frame_roundtrips() {
        let frames = vec![Frame::Ack {
            largest: 3,
            delay: 25,
            first_range: 3,
        }];
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn padding_runs_coalesce() {
        let frames = vec![
            Frame::Crypto {
                offset: 0,
                data: b"hello".to_vec(),
            },
            Frame::Padding { n: 500 },
        ];
        let decoded = roundtrip(&frames);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[1], Frame::Padding { n: 500 });
    }

    #[test]
    fn mixed_sequence_roundtrips() {
        let frames = vec![
            Frame::Ack {
                largest: 0,
                delay: 0,
                first_range: 0,
            },
            Frame::Crypto {
                offset: 0,
                data: vec![1, 2, 3],
            },
            Frame::Ping,
            Frame::Padding { n: 13 },
        ];
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn connection_close_roundtrips() {
        let frames = vec![Frame::ConnectionClose { error_code: 0x0A }];
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(Frame::Crypto {
            offset: 0,
            data: vec![]
        }
        .is_ack_eliciting());
        assert!(!Frame::Padding { n: 1 }.is_ack_eliciting());
        assert!(!Frame::Ack {
            largest: 0,
            delay: 0,
            first_range: 0
        }
        .is_ack_eliciting());
        assert!(!Frame::ConnectionClose { error_code: 0 }.is_ack_eliciting());
    }

    #[test]
    fn unknown_frame_type_rejected() {
        assert_eq!(Frame::decode_all(&[0xFE, 0x00]), None);
    }

    #[test]
    fn truncated_crypto_rejected() {
        let mut buf = Vec::new();
        Frame::Crypto {
            offset: 0,
            data: vec![9u8; 100],
        }
        .encode(&mut buf);
        assert_eq!(Frame::decode_all(&buf[..50]), None);
    }
}
