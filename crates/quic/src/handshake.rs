//! Handshake runners: drive a client/server pair over the simulated wire
//! and extract the measurements the paper's figures are built from.
//!
//! All byte counts come from the wire trace (the passive view), not from
//! what either endpoint believes it sent — this is what makes buggy
//! accounting (uncounted padding, uncharged resends) *observable* here just
//! as it was to the paper's scanners.

use quicert_netsim::event::Direction;
use quicert_netsim::{
    run_exchange, Datagram, Endpoint, ExchangeLimits, ExchangeOutcome, SessionId, SimDuration,
    SimNet, SimRng, SimTime, Wire,
};
use quicert_obs::HandshakeTimeline;
use quicert_session::{SessionCache, SessionTicket};
use quicert_tls::PskOffer;

use crate::client::{ClientConfig, ClientConn, SilentClient};
use crate::server::{ServerConfig, ServerConn, ServerStats};

/// RNG stream label for complete-handshake exchanges ("DSH").
const HANDSHAKE_RNG_LABEL: u64 = 0x44_5348;
/// RNG stream label for spoofed probes ("SPOO").
const SPOOFED_RNG_LABEL: u64 = 0x5350_4F4F;
/// RNG stream label for the warm (resumed) visit of a resumption probe
/// ("WARM").
const WARM_RNG_LABEL: u64 = 0x5741_524D;
/// Seed tweak for the warm visit's client (fresh CIDs and randoms, exactly
/// as a real second connection would draw them).
const WARM_SEED_TWEAK: u64 = 0x5245_5355_4D45_0001;

/// Event limits for a complete-handshake attempt.
fn handshake_limits() -> ExchangeLimits {
    ExchangeLimits {
        deadline: SimTime::ZERO + SimDuration::from_secs(30),
        max_events: 10_000,
    }
}

/// Event limits for a spoofed probe (sessions span the full retransmission
/// backoff, tens of simulated seconds).
fn spoofed_limits() -> ExchangeLimits {
    ExchangeLimits {
        deadline: SimTime::ZERO + SimDuration::from_secs(300),
        max_events: 100_000,
    }
}

/// Drive N borrowed endpoint pairs as sessions of one [`SimNet`] and hand
/// back each session's `(outcome, wire)` in input order. Shared by both
/// batch drivers so the wire/RNG threading can never diverge between the
/// handshake and spoofed paths.
fn drive_sessions<A: Endpoint, B: Endpoint>(
    initiators: &mut [A],
    responders: &mut [B],
    wires: Vec<Wire>,
    rngs: Vec<SimRng>,
    limits: ExchangeLimits,
) -> Vec<(ExchangeOutcome, Wire)> {
    let mut net = SimNet::with_capacity(initiators.len());
    let ids: Vec<SessionId> = initiators
        .iter_mut()
        .zip(responders.iter_mut())
        .zip(wires.into_iter().zip(rngs))
        .map(|((a, b), (wire, rng))| net.add_session(Box::new(a), Box::new(b), wire, limits, rng))
        .collect();
    net.run();
    ids.into_iter()
        .map(|id| {
            let (outcome, wire, _rng) = net.take_parts(id);
            (outcome, wire)
        })
        .collect()
}

/// The handshake classes of §3.2 / §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandshakeClass {
    /// Optimal: completes within 1 RTT, within the amplification limit.
    OneRtt,
    /// Less efficient: the server demanded address validation first.
    Retry,
    /// Unnecessary: multiple RTTs without Retry (large certificates and/or
    /// missing coalescence).
    MultiRtt,
    /// Not RFC-compliant: completes within 1 RTT but exceeds the 3× limit.
    Amplification,
    /// No handshake (no QUIC service, or the Initial never arrived —
    /// e.g. the load-balancer MTU failure of §4.1).
    Unreachable,
}

impl HandshakeClass {
    /// Label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            HandshakeClass::OneRtt => "1-RTT",
            HandshakeClass::Retry => "RETRY",
            HandshakeClass::MultiRtt => "Multi-RTT",
            HandshakeClass::Amplification => "Amplification",
            HandshakeClass::Unreachable => "Unreachable",
        }
    }
}

/// Everything measured about one complete-handshake attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct HandshakeOutcome {
    /// Whether the client completed the TLS handshake.
    pub completed: bool,
    /// Whether a Retry round was involved.
    pub used_retry: bool,
    /// UDP payload size of the client's first Initial datagram.
    pub client_first_datagram: usize,
    /// Server UDP payload bytes sent before the client's second datagram
    /// reached it — the "first RTT" amplification numerator of Fig 4.
    pub first_flight_wire: usize,
    /// Total server UDP payload bytes over the whole exchange.
    pub total_server_wire: usize,
    /// Total client UDP payload bytes.
    pub total_client_wire: usize,
    /// Round trips until the client finished the handshake (1 = optimal).
    pub rtt_count: u32,
    /// Server-side byte accounting (TLS vs padding split, Fig 5).
    pub server_stats: ServerStats,
    /// When the client completed, if it did.
    pub completed_at: Option<SimTime>,
    /// Datagrams removed by the wire's fault injectors during this attempt
    /// (both directions) — the per-session view of adverse link conditions.
    pub fault_drops: u64,
    /// Datagrams corrupted by the wire's fault injectors during this
    /// attempt.
    pub fault_corruptions: u64,
    /// Datagrams delivered twice by the wire's fault injectors during this
    /// attempt.
    pub fault_duplications: u64,
    /// Number of Initial transmissions the client performed (1 = no PTO
    /// retransmission) — with the server's flight count, the per-probe
    /// recovery cost under loss.
    pub client_transmissions: u32,
    /// Whether the handshake resumed via PSK (server accepted the offer;
    /// no certificate on the wire).
    pub resumed: bool,
    /// A session ticket issued during this handshake, if the server handed
    /// one out; `obtained_at_secs` is left 0 for the caller to stamp with
    /// its wall clock.
    pub ticket: Option<SessionTicket>,
    /// Per-phase timestamps of the handshake (Initial sent, amplification
    /// stall begin/end, certificate flight complete, done), feeding the
    /// phase-duration histograms of the telemetry layer.
    pub timeline: HandshakeTimeline,
}

impl HandshakeOutcome {
    /// Amplification factor observed during the first RTT.
    pub fn amplification_first_flight(&self) -> f64 {
        if self.client_first_datagram == 0 {
            return 0.0;
        }
        self.first_flight_wire as f64 / self.client_first_datagram as f64
    }

    /// Whether the first flight exceeded the RFC 9000 3× limit.
    pub fn exceeds_limit(&self) -> bool {
        self.first_flight_wire > 3 * self.client_first_datagram
    }

    /// Classify per §3.2.
    pub fn classify(&self) -> HandshakeClass {
        if !self.completed {
            HandshakeClass::Unreachable
        } else if self.used_retry {
            HandshakeClass::Retry
        } else if self.rtt_count <= 1 {
            if self.exceeds_limit() {
                HandshakeClass::Amplification
            } else {
                HandshakeClass::OneRtt
            }
        } else {
            HandshakeClass::MultiRtt
        }
    }
}

/// Turn one finished exchange into the paper's handshake measurements.
///
/// Shared by the single-probe [`run_handshake`] and the batched
/// [`run_handshake_batch`], so both paths measure identically.
fn extract_handshake_outcome(
    client: &ClientConn,
    server: &ServerConn,
    wire: &Wire,
    outcome: &ExchangeOutcome,
) -> HandshakeOutcome {
    // The first flight is everything the server sent before the client's
    // second datagram arrived at the server.
    let second_client_arrival = outcome
        .trace
        .iter()
        .filter(|e| e.direction == Direction::AtoB)
        .nth(1)
        .and_then(|e| e.outcome.ok());
    let first_flight_wire = outcome
        .trace
        .iter()
        .filter(|e| e.direction == Direction::BtoA)
        .filter(|e| match second_client_arrival {
            Some(t2) => e.sent_at < t2,
            None => true,
        })
        .map(|e| e.payload_len)
        .sum();

    // A handshake completing at exactly one wire RTT is "1-RTT"; each
    // extra server round adds one RTT.
    let rtt = wire.rtt();
    let rtt_count = client
        .completed_at
        .map(|t| t.as_nanos().max(1).div_ceil(rtt.as_nanos().max(1)) as u32)
        .unwrap_or(0);

    // Every session starts its own virtual timeline at zero, so the
    // timeline's offsets are simply the endpoints' SimTime stamps.
    let timeline = HandshakeTimeline {
        initial_sent_ns: 0,
        stall_begin_ns: server.stall_began_at().map(|t| t.as_nanos()),
        stall_end_ns: server.stall_ended_at().map(|t| t.as_nanos()),
        cert_flight_ns: client.cert_flight_at.map(|t| t.as_nanos()),
        done_ns: client.completed_at.map(|t| t.as_nanos()),
    };

    HandshakeOutcome {
        completed: client.handshake_complete(),
        used_retry: client.saw_retry,
        client_first_datagram: client.first_datagram_len,
        first_flight_wire,
        total_server_wire: outcome.sent_bytes(Direction::BtoA),
        total_client_wire: outcome.sent_bytes(Direction::AtoB),
        rtt_count,
        server_stats: *server.stats(),
        completed_at: client.completed_at,
        timeline,
        fault_drops: outcome.fault_drops,
        fault_corruptions: outcome.fault_corruptions,
        fault_duplications: outcome.fault_duplications,
        client_transmissions: client.transmissions(),
        resumed: client.psk_accepted,
        ticket: client.ticket.as_ref().map(|nst| SessionTicket {
            identity: nst.ticket.clone(),
            lifetime_secs: nst.lifetime_secs as u64,
            age_add: nst.age_add,
            obtained_at_secs: 0,
        }),
    }
}

/// Run a complete handshake attempt.
pub fn run_handshake(
    client_config: ClientConfig,
    server_config: ServerConfig,
    wire: &mut Wire,
    seed: u64,
) -> HandshakeOutcome {
    let mut client = ClientConn::new(client_config);
    let mut server = ServerConn::new(server_config);
    let mut rng = SimRng::new(seed ^ HANDSHAKE_RNG_LABEL);
    let outcome = run_exchange(&mut client, &mut server, wire, handshake_limits(), &mut rng);
    extract_handshake_outcome(&client, &server, wire, &outcome)
}

/// One probe of a batched handshake scan: everything [`run_handshake`]
/// takes, as data.
#[derive(Debug, Clone)]
pub struct HandshakeProbe {
    /// Scanner/browser client configuration (Initial size, compression…).
    pub client: ClientConfig,
    /// Target server configuration (behaviour, chain, compression support).
    pub server: ServerConfig,
    /// The path between them, fault injectors included.
    pub wire: Wire,
    /// Per-probe RNG seed; forked per record at world generation, so
    /// results are independent of batch composition.
    pub seed: u64,
}

/// Run a whole batch of handshake probes as sessions of one [`SimNet`],
/// amortising the event heap and scratch buffers a per-probe loop would
/// rebuild for every exchange.
///
/// Each probe draws from its own RNG stream (`seed ^ label`, exactly like
/// [`run_handshake`]) and owns its wire, so the returned outcomes are
/// **bit-for-bit identical** to calling [`run_handshake`] once per probe —
/// at any batch size. The determinism tests pin this equivalence.
pub fn run_handshake_batch(probes: Vec<HandshakeProbe>) -> Vec<HandshakeOutcome> {
    let mut probes = probes;
    let mut outcomes = Vec::with_capacity(probes.len());
    run_handshake_batch_into(&mut probes, &mut outcomes);
    outcomes
}

/// [`run_handshake_batch`] in allocation-reuse form: drains `probes`
/// (keeping its capacity for the caller's next chunk) and appends one
/// outcome per probe to `outcomes`, in probe order.
///
/// This is the streaming scan pump's entry point — a worker folds millions
/// of records through one pair of scratch vectors instead of building and
/// dropping a fresh `Vec` per chunk. Outcomes are bit-for-bit those of
/// [`run_handshake_batch`].
pub fn run_handshake_batch_into(
    probes: &mut Vec<HandshakeProbe>,
    outcomes: &mut Vec<HandshakeOutcome>,
) {
    let mut clients = Vec::with_capacity(probes.len());
    let mut servers = Vec::with_capacity(probes.len());
    let mut wires = Vec::with_capacity(probes.len());
    let mut rngs = Vec::with_capacity(probes.len());
    for probe in probes.drain(..) {
        clients.push(ClientConn::new(probe.client));
        servers.push(ServerConn::new(probe.server));
        wires.push(probe.wire);
        rngs.push(SimRng::new(probe.seed ^ HANDSHAKE_RNG_LABEL));
    }

    let parts = drive_sessions(&mut clients, &mut servers, wires, rngs, handshake_limits());
    outcomes.reserve(parts.len());
    outcomes.extend(parts.into_iter().zip(clients.iter().zip(&servers)).map(
        |((outcome, wire), (client, server))| {
            extract_handshake_outcome(client, server, &wire, &outcome)
        },
    ));
}

/// One probe of a batched cold-then-warm resumption scan: the first visit
/// runs a full certificate-laden handshake against a ticket-issuing server;
/// the second visit re-probes the same service with the cached ticket (when
/// the policy offers one) at a later wall-clock instant.
#[derive(Debug, Clone)]
pub struct ResumptionProbe {
    /// Client configuration for the cold visit (any `psk` is ignored — the
    /// first visit is cold by definition).
    pub client: ClientConfig,
    /// Server configuration; its [`ServerConfig::resumption`] host governs
    /// ticket issuance on the cold visit and validation on the warm one.
    pub server: ServerConfig,
    /// The path for the cold visit.
    pub wire: Wire,
    /// The path for the warm visit (a fresh wire over the same route).
    pub warm_wire: Wire,
    /// Per-probe RNG seed (forked per record at world generation).
    pub seed: u64,
    /// The server/client wall clock at the warm visit, simulated seconds.
    pub warm_now_secs: u64,
    /// Whether the warm visit offers the cached ticket at all (the
    /// cold-only policy revisits without one).
    pub offer_ticket: bool,
}

/// What a cold-then-warm probe measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumptionOutcome {
    /// The first (certificate-laden, ticket-issuing) visit.
    pub cold: HandshakeOutcome,
    /// The second visit — resumed when a ticket was offered and accepted,
    /// a cold fallback otherwise.
    pub warm: HandshakeOutcome,
    /// Whether the warm visit actually offered a PSK (ticket cached and
    /// policy allowed it).
    pub offered_psk: bool,
}

/// Run a batch of resumption probes: all cold visits as sessions of one
/// [`SimNet`], tickets collected into an LRU [`SessionCache`] keyed by SNI,
/// then all warm visits as sessions of a second `SimNet`.
///
/// Every visit draws from its own RNG stream (`seed ^ label`) and owns its
/// wire, so outcomes are bit-for-bit independent of batch composition —
/// sharding a record list and concatenating the shard outputs reproduces
/// the whole-batch result exactly, at any shard size. That invariance
/// **requires distinct `server_name`s across the batch** (checked by a
/// debug assertion): the cache is a real client cache, so probes aliasing
/// one SNI would overwrite each other's tickets and make the warm offer
/// depend on who else shares the batch. The scanner satisfies this by
/// using each record's unique domain name; the cache is sized to the
/// batch, so LRU eviction never interferes either.
pub fn run_resumption_batch(probes: Vec<ResumptionProbe>) -> Vec<ResumptionOutcome> {
    #[cfg(debug_assertions)]
    {
        let mut names = std::collections::HashSet::new();
        for probe in &probes {
            debug_assert!(
                names.insert(probe.client.server_name.as_str()),
                "run_resumption_batch requires distinct server_names; \
                 {:?} appears twice (aliased SNIs break shard invariance)",
                probe.client.server_name
            );
        }
    }
    // Phase 1: cold visits, tickets issued.
    let mut clients = Vec::with_capacity(probes.len());
    let mut servers = Vec::with_capacity(probes.len());
    let mut wires = Vec::with_capacity(probes.len());
    let mut rngs = Vec::with_capacity(probes.len());
    for probe in &probes {
        let mut config = probe.client.clone();
        config.psk = None;
        clients.push(ClientConn::new(config));
        servers.push(ServerConn::new(probe.server.clone()));
        wires.push(probe.wire.clone());
        rngs.push(SimRng::new(probe.seed ^ HANDSHAKE_RNG_LABEL));
    }
    let parts = drive_sessions(&mut clients, &mut servers, wires, rngs, handshake_limits());
    let cold: Vec<HandshakeOutcome> = parts
        .into_iter()
        .zip(clients.iter().zip(&servers))
        .map(|((outcome, wire), (client, server))| {
            extract_handshake_outcome(client, server, &wire, &outcome)
        })
        .collect();

    // Tickets land in the client-side session cache, stamped with the
    // wall clock of the visit that obtained them.
    let mut cache = SessionCache::with_capacity(probes.len().max(1));
    for (probe, out) in probes.iter().zip(&cold) {
        if let Some(mut ticket) = out.ticket.clone() {
            ticket.obtained_at_secs = probe
                .server
                .resumption
                .as_ref()
                .map(|host| host.now_secs)
                .unwrap_or(0);
            cache.insert(&probe.client.server_name, ticket);
        }
    }

    // Phase 2: warm visits.
    let mut clients = Vec::with_capacity(probes.len());
    let mut servers = Vec::with_capacity(probes.len());
    let mut wires = Vec::with_capacity(probes.len());
    let mut rngs = Vec::with_capacity(probes.len());
    let mut offered = Vec::with_capacity(probes.len());
    for probe in &probes {
        let mut config = probe.client.clone();
        config.seed ^= WARM_SEED_TWEAK;
        config.psk = probe
            .offer_ticket
            .then(|| cache.lookup(&probe.client.server_name))
            .flatten()
            .map(|ticket| PskOffer {
                identity: ticket.identity.clone(),
                obfuscated_age: ticket.obfuscated_age(probe.warm_now_secs),
            });
        offered.push(config.psk.is_some());
        let mut server = probe.server.clone();
        server.resumption = server
            .resumption
            .map(|host| host.revisited_at(probe.warm_now_secs));
        clients.push(ClientConn::new(config));
        servers.push(ServerConn::new(server));
        wires.push(probe.warm_wire.clone());
        rngs.push(SimRng::new(probe.seed ^ WARM_RNG_LABEL));
    }
    let parts = drive_sessions(&mut clients, &mut servers, wires, rngs, handshake_limits());
    let warm: Vec<HandshakeOutcome> = parts
        .into_iter()
        .zip(clients.iter().zip(&servers))
        .map(|((outcome, wire), (client, server))| {
            extract_handshake_outcome(client, server, &wire, &outcome)
        })
        .collect();

    cold.into_iter()
        .zip(warm)
        .zip(offered)
        .map(|((cold, warm), offered_psk)| ResumptionOutcome {
            cold,
            warm,
            offered_psk,
        })
        .collect()
}

/// A backscatter datagram emitted by the server during a spoofed probe.
#[derive(Debug, Clone, Copy)]
pub struct BackscatterDatagram {
    /// When it was sent.
    pub at: SimTime,
    /// UDP payload size.
    pub payload_len: usize,
}

/// What a spoofed (never-acknowledging) probe provoked — the telescope's
/// view of one session (§4.3).
#[derive(Debug, Clone)]
pub struct SpoofedOutcome {
    /// UDP payload size of the probe Initial.
    pub probe_size: usize,
    /// Total server UDP payload bytes sent toward the victim.
    pub total_server_wire: usize,
    /// Individual backscatter datagrams in send order.
    pub datagrams: Vec<BackscatterDatagram>,
    /// The server's source connection ID (telescope sessions group by it).
    pub server_scid: Vec<u8>,
    /// Number of flight transmissions the server performed.
    pub flight_transmissions: u32,
    /// Datagrams removed by the wire's fault injectors during the probe.
    pub fault_drops: u64,
    /// Datagrams corrupted by the wire's fault injectors during the probe.
    pub fault_corruptions: u64,
    /// Datagrams delivered twice by the wire's fault injectors during the
    /// probe.
    pub fault_duplications: u64,
}

impl SpoofedOutcome {
    /// Amplification factor: reflected bytes over probe bytes.
    pub fn amplification(&self) -> f64 {
        if self.probe_size == 0 {
            return 0.0;
        }
        self.total_server_wire as f64 / self.probe_size as f64
    }

    /// Duration between the first and last backscatter datagram.
    pub fn session_duration(&self) -> SimDuration {
        match (self.datagrams.first(), self.datagrams.last()) {
            (Some(first), Some(last)) => last.at.since(first.at),
            _ => SimDuration::ZERO,
        }
    }
}

/// Turn one finished spoofed exchange into the telescope's session view.
fn extract_spoofed_outcome(
    probe_size: usize,
    server: &ServerConn,
    outcome: &ExchangeOutcome,
) -> SpoofedOutcome {
    let datagrams: Vec<BackscatterDatagram> = outcome
        .trace
        .iter()
        .filter(|e| e.direction == Direction::BtoA)
        .map(|e| BackscatterDatagram {
            at: e.sent_at,
            payload_len: e.payload_len,
        })
        .collect();

    SpoofedOutcome {
        probe_size,
        total_server_wire: datagrams.iter().map(|d| d.payload_len).sum(),
        datagrams,
        server_scid: server.scid().as_bytes().to_vec(),
        flight_transmissions: server.stats().flight_transmissions,
        fault_drops: outcome.fault_drops,
        fault_corruptions: outcome.fault_corruptions,
        fault_duplications: outcome.fault_duplications,
    }
}

/// Run a spoofed handshake probe: one Initial, no ACKs ever, watch what the
/// server reflects (including all retransmissions).
pub fn run_spoofed_probe(
    probe_size: usize,
    spoofed_src: std::net::Ipv4Addr,
    server_addr: std::net::Ipv4Addr,
    server_config: ServerConfig,
    wire: &mut Wire,
    seed: u64,
) -> SpoofedOutcome {
    let mut config = ClientConfig::scanner(probe_size, server_addr, seed);
    config.src = spoofed_src;
    let mut client = SilentClient::new(config);
    let mut server = ServerConn::new(server_config);
    let mut rng = SimRng::new(seed ^ SPOOFED_RNG_LABEL);
    let outcome = run_exchange(&mut client, &mut server, wire, spoofed_limits(), &mut rng);
    extract_spoofed_outcome(probe_size, &server, &outcome)
}

/// One probe of a batched spoofed-handshake scan.
#[derive(Debug, Clone)]
pub struct SpoofedProbe {
    /// UDP payload size of the probe Initial.
    pub probe_size: usize,
    /// The (victim) source address written into the probe.
    pub spoofed_src: std::net::Ipv4Addr,
    /// The reflecting server's address.
    pub server_addr: std::net::Ipv4Addr,
    /// The reflecting server's configuration.
    pub server: ServerConfig,
    /// The path between prober and server.
    pub wire: Wire,
    /// Per-probe RNG seed.
    pub seed: u64,
}

/// Run a batch of spoofed probes as sessions of one [`SimNet`]; outcomes
/// are bit-for-bit identical to per-probe [`run_spoofed_probe`] calls in
/// the same order, at any batch size.
pub fn run_spoofed_probe_batch(probes: Vec<SpoofedProbe>) -> Vec<SpoofedOutcome> {
    let mut clients = Vec::with_capacity(probes.len());
    let mut servers = Vec::with_capacity(probes.len());
    let mut wires = Vec::with_capacity(probes.len());
    let mut rngs = Vec::with_capacity(probes.len());
    let mut sizes = Vec::with_capacity(probes.len());
    for probe in probes {
        let mut config = ClientConfig::scanner(probe.probe_size, probe.server_addr, probe.seed);
        config.src = probe.spoofed_src;
        clients.push(SilentClient::new(config));
        servers.push(ServerConn::new(probe.server));
        wires.push(probe.wire);
        rngs.push(SimRng::new(probe.seed ^ SPOOFED_RNG_LABEL));
        sizes.push(probe.probe_size);
    }

    let parts = drive_sessions(&mut clients, &mut servers, wires, rngs, spoofed_limits());
    parts
        .into_iter()
        .zip(servers.iter().zip(sizes))
        .map(|((outcome, _wire), (server, probe_size))| {
            extract_spoofed_outcome(probe_size, server, &outcome)
        })
        .collect()
}

/// Observe a spoofed probe's backscatter *into a telescope*: records every
/// reflected datagram (with its SCID) as the telescope would see it.
pub fn observe_backscatter(
    telescope: &mut quicert_netsim::Telescope,
    spoofed_src: std::net::Ipv4Addr,
    server_addr: std::net::Ipv4Addr,
    outcome: &SpoofedOutcome,
) {
    for d in &outcome.datagrams {
        let dgram = Datagram::new(
            server_addr,
            spoofed_src,
            443,
            50_443,
            vec![0; d.payload_len],
        );
        telescope.observe(&dgram, d.at, Some(outcome.server_scid.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerBehavior;
    use quicert_compress::Algorithm;
    use quicert_x509::{
        CertificateBuilder, CertificateChain, DistinguishedName, Extension, KeyAlgorithm,
        SignatureAlgorithm, SubjectPublicKeyInfo,
    };
    use std::net::Ipv4Addr;

    const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);

    fn small_chain() -> CertificateChain {
        // A realistic modern ECDSA chain (Let's Encrypt E1-style): richly
        // extended leaf (~1 kB) plus a compact ECDSA intermediate.
        let inter_dn = DistinguishedName::ca("US", "Let's Encrypt", "E1");
        let root_dn =
            DistinguishedName::ca("US", "Internet Security Research Group", "ISRG Root X2");
        let inter = CertificateBuilder::new(
            root_dn,
            inter_dn.clone(),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP384, 31),
            SignatureAlgorithm::EcdsaSha384,
        )
        .extension(Extension::BasicConstraints {
            ca: true,
            path_len: Some(0),
        })
        .extension(Extension::SubjectKeyId { seed: 33 })
        .extension(Extension::AuthorityKeyId { seed: 34 })
        .extension(Extension::CrlDistributionPoints(vec![
            "http://x2.c.lencr.org/".into(),
        ]))
        .build();
        let leaf = CertificateBuilder::new(
            inter_dn,
            DistinguishedName::cn("small.example"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 32),
            SignatureAlgorithm::EcdsaSha384,
        )
        .extension(Extension::BasicConstraints {
            ca: false,
            path_len: None,
        })
        .extension(Extension::SubjectKeyId { seed: 35 })
        .extension(Extension::AuthorityKeyId { seed: 33 })
        .extension(Extension::SubjectAltNames(vec![
            "small.example".into(),
            "www.small.example".into(),
        ]))
        .extension(Extension::AuthorityInfoAccess {
            ocsp: Some("http://e1.o.lencr.org".into()),
            ca_issuers: Some("http://e1.i.lencr.org/".into()),
        })
        .extension(Extension::SctList { count: 2, seed: 36 })
        .build();
        CertificateChain::new(leaf, vec![inter])
    }

    fn big_chain() -> CertificateChain {
        let root_dn = DistinguishedName::ca(
            "US",
            "Legacy Trust Services Incorporated",
            "Legacy Global Root CA",
        );
        let i1_dn = DistinguishedName::ca(
            "US",
            "Legacy Trust Services Incorporated",
            "Legacy TLS RSA CA G1",
        );
        let i2_dn = DistinguishedName::ca(
            "US",
            "Legacy Trust Services Incorporated",
            "Legacy TLS RSA CA G2",
        );
        let i1 = CertificateBuilder::new(
            root_dn.clone(),
            i1_dn.clone(),
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa4096, 41),
            SignatureAlgorithm::Sha384WithRsa4096,
        )
        .build();
        let i2 = CertificateBuilder::new(
            i1_dn,
            i2_dn.clone(),
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa4096, 42),
            SignatureAlgorithm::Sha384WithRsa4096,
        )
        .build();
        let leaf = CertificateBuilder::new(
            i2_dn,
            DistinguishedName::cn("big.example"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 43),
            SignatureAlgorithm::Sha384WithRsa4096,
        )
        .extension(Extension::SubjectAltNames(vec![
            "big.example".into(),
            "www.big.example".into(),
        ]))
        .extension(Extension::SctList { count: 3, seed: 44 })
        .build();
        CertificateChain::new(leaf, vec![i2, i1])
    }

    fn server(
        behavior: ServerBehavior,
        chain: CertificateChain,
        leaf_key: KeyAlgorithm,
    ) -> ServerConfig {
        ServerConfig {
            behavior,
            chain,
            leaf_key,
            compression_support: vec![Algorithm::Brotli],
            resumption: None,
            seed: 77,
        }
    }

    fn wire() -> Wire {
        Wire::ideal(SimDuration::from_millis(20))
    }

    #[test]
    fn compliant_server_small_chain_is_one_rtt() {
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 1),
            server(
                ServerBehavior::rfc_compliant(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            1,
        );
        assert!(out.completed);
        assert_eq!(out.rtt_count, 1, "completed at {:?}", out.completed_at);
        assert!(
            !out.exceeds_limit(),
            "ampl {}",
            out.amplification_first_flight()
        );
        assert_eq!(out.classify(), HandshakeClass::OneRtt);
    }

    #[test]
    fn compliant_server_big_chain_needs_multiple_rtts() {
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 2),
            server(
                ServerBehavior::rfc_compliant(),
                big_chain(),
                KeyAlgorithm::Rsa2048,
            ),
            &mut wire(),
            2,
        );
        assert!(out.completed);
        assert!(out.rtt_count >= 2, "rtts {}", out.rtt_count);
        assert!(!out.exceeds_limit(), "first flight respects the budget");
        assert_eq!(out.classify(), HandshakeClass::MultiRtt);
        // TLS payload alone exceeds the limit (the 87% case of §4.2).
        assert!(out.server_stats.tls_sent > 3 * 1362);
    }

    #[test]
    fn cloudflare_like_server_amplifies_but_finishes_in_one_rtt() {
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 3),
            server(
                ServerBehavior::cloudflare_like(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            3,
        );
        assert!(out.completed);
        assert_eq!(out.rtt_count, 1);
        assert!(
            out.exceeds_limit(),
            "ampl {}",
            out.amplification_first_flight()
        );
        assert_eq!(out.classify(), HandshakeClass::Amplification);
        // The amplification factor stays modest (Fig 4: < 6x).
        assert!(out.amplification_first_flight() < 6.0);
        // Padding dominated by the two stray-padded Initial datagrams.
        assert!(out.server_stats.padding_sent > 2000);
    }

    #[test]
    fn retry_server_adds_a_round_trip() {
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 4),
            server(
                ServerBehavior::retry_first(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            4,
        );
        assert!(out.completed);
        assert!(out.used_retry);
        assert_eq!(out.classify(), HandshakeClass::Retry);
        assert!(out.rtt_count >= 2);
    }

    #[test]
    fn spoofed_probe_against_compliant_server_is_bounded() {
        let out = run_spoofed_probe(
            1252,
            Ipv4Addr::new(44, 0, 0, 1),
            SERVER,
            server(
                ServerBehavior::rfc_compliant(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            5,
        );
        assert!(
            out.amplification() <= 3.0 + 1e-9,
            "compliant server must respect 3x, got {}",
            out.amplification()
        );
    }

    #[test]
    fn spoofed_probe_against_mvfst_amplifies_via_resends() {
        let out = run_spoofed_probe(
            1252,
            Ipv4Addr::new(44, 0, 0, 2),
            SERVER,
            server(
                ServerBehavior::mvfst_like(8),
                big_chain(),
                KeyAlgorithm::Rsa2048,
            ),
            &mut wire(),
            6,
        );
        assert!(
            out.amplification() > 10.0,
            "mvfst-like resends must blow through the limit, got {}",
            out.amplification()
        );
        assert_eq!(out.flight_transmissions, 8);
        // Session spans the retransmission backoff (tens of seconds).
        assert!(out.session_duration() > SimDuration::from_secs(20));
    }

    #[test]
    fn timeline_phases_account_for_the_whole_handshake() {
        use quicert_obs::Phase;
        // Multi-RTT big chain: the server stalls on its 3x budget, so all
        // four phases are populated and must sum exactly to the total.
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 31),
            server(
                ServerBehavior::rfc_compliant(),
                big_chain(),
                KeyAlgorithm::Rsa2048,
            ),
            &mut wire(),
            31,
        );
        assert!(out.completed);
        assert_eq!(out.classify(), HandshakeClass::MultiRtt);
        let phases = out.timeline.phases().expect("completed handshake");
        let sum: u64 = phases.iter().map(|(_, d)| d).sum();
        assert_eq!(Some(sum), out.timeline.total_ns(), "phases sum to total");
        assert_eq!(
            out.timeline.done_ns,
            out.completed_at.map(|t| t.as_nanos()),
            "timeline end is the completion instant"
        );
        assert!(out.timeline.stall_begin_ns.is_some(), "big chain stalls");
        assert!(
            phases[Phase::AmplificationStall.index()].1 > 0,
            "the stall phase has nonzero duration"
        );

        // 1-RTT small chain: no stall ever begins, and the degenerate
        // timeline still partitions the total exactly.
        let fast = run_handshake(
            ClientConfig::scanner(1362, SERVER, 32),
            server(
                ServerBehavior::rfc_compliant(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            32,
        );
        assert_eq!(fast.classify(), HandshakeClass::OneRtt);
        assert!(fast.timeline.stall_begin_ns.is_none());
        let phases = fast.timeline.phases().expect("completed handshake");
        let sum: u64 = phases.iter().map(|(_, d)| d).sum();
        assert_eq!(Some(sum), fast.timeline.total_ns());
        assert_eq!(phases[Phase::AmplificationStall.index()].1, 0);
    }

    #[test]
    fn larger_initials_flip_marginal_chains_to_one_rtt() {
        // A chain whose flight fits in 3x1472 but not 3x1200.
        let cfg = |size| ClientConfig::scanner(size, SERVER, 7);
        let sc = server(
            ServerBehavior::rfc_compliant(),
            big_chain(),
            KeyAlgorithm::Rsa2048,
        );
        let small = run_handshake(cfg(1200), sc.clone(), &mut wire(), 7);
        let large = run_handshake(cfg(1472), sc, &mut wire(), 7);
        assert!(small.rtt_count >= large.rtt_count);
    }

    fn resumption_probe(
        seed: u64,
        chain: CertificateChain,
        leaf_key: KeyAlgorithm,
        warm_now_secs: u64,
        offer_ticket: bool,
    ) -> ResumptionProbe {
        let mut server = server(ServerBehavior::rfc_compliant(), chain, leaf_key);
        server.resumption = Some(quicert_session::ResumptionHost::issuing(
            seed ^ 0x57E4,
            1_000_000,
        ));
        // One SNI per probe, as in a real scan: the session cache is keyed
        // by host name, so shared names would alias cache entries.
        let mut client = ClientConfig::scanner(1362, SERVER, seed);
        client.server_name = format!("svc-{seed}.example");
        ResumptionProbe {
            client,
            server,
            wire: wire(),
            warm_wire: wire(),
            seed,
            warm_now_secs,
            offer_ticket,
        }
    }

    #[test]
    fn warm_visit_resumes_without_certificates_and_fits_budget() {
        let outs = run_resumption_batch(vec![resumption_probe(
            21,
            big_chain(),
            KeyAlgorithm::Rsa2048,
            1_000_060,
            true,
        )]);
        let out = &outs[0];
        // Cold visit: the big chain forces extra RTTs, a ticket arrives.
        assert!(out.cold.completed);
        assert_eq!(out.cold.classify(), HandshakeClass::MultiRtt);
        assert!(out.cold.ticket.is_some(), "ticket issued on cold visit");
        assert!(out.cold.server_stats.issued_ticket);
        assert!(!out.cold.resumed);
        // Warm visit: resumed, certificate-free, 1-RTT, inside the budget.
        assert!(out.offered_psk);
        assert!(out.warm.resumed);
        assert!(out.warm.completed);
        assert_eq!(out.warm.server_stats.certificate_message_len, 0);
        assert_eq!(out.warm.classify(), HandshakeClass::OneRtt);
        assert!(!out.warm.exceeds_limit());
        assert!(out.warm.rtt_count < out.cold.rtt_count);
        assert!(out.warm.total_server_wire < out.cold.total_server_wire);
    }

    #[test]
    fn stale_ticket_falls_back_to_the_cold_path() {
        // Revisit long after the lifetime and two STEK rotations: the offer
        // is rejected and the full chain goes on the wire again.
        let stale = 1_000_000 + 7_200 + 2 * 3_600 + 1;
        let outs = run_resumption_batch(vec![resumption_probe(
            22,
            big_chain(),
            KeyAlgorithm::Rsa2048,
            stale,
            true,
        )]);
        let out = &outs[0];
        assert!(out.offered_psk, "the stale ticket is still offered");
        assert!(!out.warm.resumed, "but the server must reject it");
        assert!(out.warm.server_stats.certificate_message_len > 0);
        assert_eq!(out.warm.classify(), out.cold.classify());
    }

    #[test]
    fn cold_only_policy_never_offers() {
        let outs = run_resumption_batch(vec![resumption_probe(
            23,
            small_chain(),
            KeyAlgorithm::EcdsaP256,
            1_000_060,
            false,
        )]);
        assert!(!outs[0].offered_psk);
        assert!(!outs[0].warm.resumed);
        assert!(outs[0].warm.server_stats.certificate_message_len > 0);
    }

    #[test]
    fn resumption_batch_is_composition_invariant() {
        let probes: Vec<ResumptionProbe> = (0..9)
            .map(|i| {
                let chain = if i % 2 == 0 {
                    big_chain()
                } else {
                    small_chain()
                };
                let key = if i % 2 == 0 {
                    KeyAlgorithm::Rsa2048
                } else {
                    KeyAlgorithm::EcdsaP256
                };
                resumption_probe(100 + i, chain, key, 1_000_060, true)
            })
            .collect();
        let whole = run_resumption_batch(probes.clone());
        for chunk in [1usize, 2, 4] {
            let pieces: Vec<ResumptionOutcome> = probes
                .chunks(chunk)
                .flat_map(|shard| run_resumption_batch(shard.to_vec()))
                .collect();
            assert_eq!(whole, pieces, "chunk size {chunk}");
        }
    }

    #[test]
    fn resumption_free_servers_do_not_issue_tickets() {
        // The classic cold handshake must not change: no OneRtt datagrams,
        // no ticket, same wire totals as ever.
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 1),
            server(
                ServerBehavior::rfc_compliant(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            1,
        );
        assert!(out.ticket.is_none());
        assert!(!out.server_stats.issued_ticket);
        assert!(!out.resumed);
    }

    /// Drive a server directly: one client Initial delivered, then every
    /// response lost, so only the PTO machinery runs. Returns the client's
    /// Initial payload length and the primed endpoints.
    fn primed_pair(behavior: ServerBehavior, seed: u64) -> (usize, ServerConn) {
        let mut client = ClientConn::new(ClientConfig::scanner(1362, SERVER, seed));
        let mut out = Vec::new();
        client.start(SimTime::ZERO, &mut out);
        let initial = out.pop().expect("client emits its Initial on start");
        let mut server = ServerConn::new(server(behavior, small_chain(), KeyAlgorithm::EcdsaP256));
        let mut sink = Vec::new();
        server.on_datagram(&initial, SimTime::ZERO, &mut sink);
        (initial.payload_len(), server)
    }

    #[test]
    fn pto_backoff_doubles_and_caps_at_max_pto() {
        // mvfst profile: 350 ms base PTO, resends uncharged, a high
        // transmission cap so the backoff alone terminates the ladder.
        let (_, mut server) = primed_pair(ServerBehavior::mvfst_like(20), 9);
        assert_eq!(server.current_pto(), SimDuration::from_millis(350));

        // 350 → 700 → 1400 → 2800 → 5600 → cap: never 11200, and with
        // saturating_mul never the 584-year saturation point either.
        let expected_ms = [700u64, 1400, 2800, 5600, 8000, 8000, 8000];
        let mut sink = Vec::new();
        for &ms in &expected_ms {
            let deadline = server.next_timer().expect("timer armed while data is out");
            sink.clear();
            server.on_timer(deadline, &mut sink);
            assert_eq!(server.current_pto(), SimDuration::from_millis(ms));
            assert!(server.current_pto() <= ServerBehavior::MAX_PTO);
            assert!(!sink.is_empty(), "uncharged resend goes out");
            // The re-armed deadline follows the capped cadence exactly.
            let next = server.next_timer().expect("still below the cap");
            assert_eq!(next, deadline + server.current_pto());
        }
        assert_eq!(
            server.stats().flight_transmissions,
            1 + expected_ms.len() as u32
        );
    }

    #[test]
    fn transmission_limit_classifies_total_loss_as_unreachable() {
        // Every server→client datagram is lost: the server retransmits to
        // its cap and gives up; the client never completes.
        let mut w = wire();
        w.fault_b_to_a = quicert_netsim::FaultInjector::dropping(1.0);
        let out = run_handshake(
            ClientConfig::scanner(1362, SERVER, 11),
            server(
                ServerBehavior::rfc_compliant(),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut w,
            11,
        );
        assert!(!out.completed);
        assert_eq!(out.classify(), HandshakeClass::Unreachable);
        // The server attempted exactly its transmission budget, no more.
        assert_eq!(out.server_stats.flight_transmissions, 3);
        // The client also re-probed (its own Initial PTO fired).
        assert_eq!(out.client_transmissions, 2);
        assert!(out.fault_drops > 0, "the injector recorded the losses");
        assert_eq!(out.fault_duplications, 0);
    }

    #[test]
    fn resend_bytes_charge_the_budget_exactly_when_count_resends_is_set() {
        // Fire every PTO to exhaustion with no client response.
        let drain = |mut server: ServerConn| {
            let first_charged = server.stats().charged;
            let mut sink = Vec::new();
            while let Some(deadline) = server.next_timer() {
                server.on_timer(deadline, &mut sink);
            }
            (first_charged, server)
        };

        // RFC-compliant: resends are charged, so the 3x budget blocks the
        // retransmission stream and the stall is observable.
        let (_, server_rfc) = {
            let (probe_len, srv) = primed_pair(ServerBehavior::rfc_compliant(), 12);
            let (first, srv) = drain(srv);
            assert!(first > 0);
            assert!(
                srv.stats().charged <= 3 * probe_len,
                "charged {} must respect 3x{probe_len}",
                srv.stats().charged
            );
            assert!(
                srv.stall_began_at().is_some(),
                "charged resends must hit the amplification stall"
            );
            (first, srv)
        };
        assert_eq!(server_rfc.stats().flight_transmissions, 3);

        // mvfst-like: resends uncharged — every flight leaves whole and the
        // budget meter never moves past the first transmission.
        let (probe_len, srv) = primed_pair(ServerBehavior::mvfst_like(5), 12);
        let (first, srv) = drain(srv);
        assert_eq!(
            srv.stats().charged,
            first,
            "uncharged resends must not move the budget meter"
        );
        assert_eq!(srv.stats().flight_transmissions, 5);
        assert!(
            srv.stats().wire_sent >= 4 * first,
            "all five flights reach the wire ({} vs first {first})",
            srv.stats().wire_sent
        );
        assert!(
            srv.stats().charged <= 3 * probe_len,
            "the meter itself still respects 3x"
        );
        assert!(
            srv.stall_began_at().is_none(),
            "uncharged resends never stall"
        );
    }

    #[test]
    fn backscatter_observation_lands_in_telescope() {
        let dark = quicert_netsim::Ipv4Net::new(Ipv4Addr::new(44, 0, 0, 0), 8);
        let mut telescope = quicert_netsim::Telescope::new(dark);
        let victim = Ipv4Addr::new(44, 1, 2, 3);
        let out = run_spoofed_probe(
            1252,
            victim,
            SERVER,
            server(
                ServerBehavior::mvfst_like(3),
                small_chain(),
                KeyAlgorithm::EcdsaP256,
            ),
            &mut wire(),
            8,
        );
        observe_backscatter(&mut telescope, victim, SERVER, &out);
        assert_eq!(telescope.records().len(), out.datagrams.len());
        assert_eq!(telescope.total_bytes(), out.total_server_wire);
        assert!(telescope.records().iter().all(|r| r.scid.is_some()));
    }
}
