//! # quicert-quic — QUIC v1 handshake engine with configurable server behaviour
//!
//! This crate implements the part of QUIC (RFC 9000/9001) that the paper
//! measures: the connection handshake. It provides
//!
//! * real wire encodings — variable-length integers, long-header packets
//!   (Initial / Handshake / Retry), CRYPTO / ACK / PADDING frames, datagram
//!   coalescing, and the padding rules of RFC 9000 §14.1;
//! * anti-amplification accounting with the full *historical* policy set of
//!   the paper's Table 3 ([`LimitPolicy`]), not just the final 3× rule;
//! * a client state machine ([`ClientConn`]) modelling a scanner or browser
//!   with a configurable Initial size; and
//! * a server state machine ([`ServerConn`]) whose [`ServerBehavior`]
//!   captures the real-world deployment quirks the paper discovered:
//!   missing packet coalescing and uncounted padding (Cloudflare, §4.1),
//!   unlimited retransmissions toward unverified clients (Meta's mvfst,
//!   §4.3), and always-on Retry.
//!
//! Handshakes run over `quicert-netsim`'s event loop; all measurements are
//! taken from the wire trace, mirroring the paper's passive viewpoint.

pub mod amplification;
pub mod client;
pub mod frame;
pub mod handshake;
pub mod packet;
pub mod server;
pub mod varint;

pub use amplification::{AmplificationBudget, LimitPolicy};
pub use client::{ClientConfig, ClientConn};
pub use frame::Frame;
pub use handshake::{
    run_handshake, run_handshake_batch, run_handshake_batch_into, run_resumption_batch,
    run_spoofed_probe, run_spoofed_probe_batch, HandshakeOutcome, HandshakeProbe,
    ResumptionOutcome, ResumptionProbe, SpoofedOutcome, SpoofedProbe,
};
pub use packet::{ConnectionId, Packet, PacketType, AEAD_TAG_LEN, QUIC_MIN_INITIAL_SIZE};
pub use server::{ServerBehavior, ServerConfig, ServerConn};
