//! QUIC packets and datagram assembly (RFC 9000 §17, §12.2, §14.1).
//!
//! Long-header packets (Initial, Handshake, Retry) are encoded with their
//! real framing: flags byte, version, connection IDs, token (Initial),
//! length and packet number, payload, and a 16-byte AEAD tag. Multiple
//! packets may be *coalesced* into one UDP datagram. Header protection is
//! not simulated (it does not change sizes), and the AEAD tag bytes are
//! deterministic filler.

use crate::frame::Frame;
use crate::varint;

/// AEAD authentication tag length appended to every protected packet.
pub const AEAD_TAG_LEN: usize = 16;

/// Minimum UDP payload for datagrams carrying ack-eliciting Initial packets
/// (RFC 9000 §14.1).
pub const QUIC_MIN_INITIAL_SIZE: usize = 1200;

/// QUIC version 1.
pub const VERSION_1: u32 = 0x0000_0001;

/// A connection ID (0–20 bytes), stored inline.
///
/// Every packet carries two of these and the simulation clones packets
/// freely; inline storage keeps those clones off the heap (a `Vec`-backed
/// CID cost two allocations per packet at million-probe scale). Unused tail
/// bytes are always zero, so derived equality/hashing match semantic
/// equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ConnectionId {
    bytes: [u8; 20],
    len: u8,
}

impl ConnectionId {
    /// Longest connection ID RFC 9000 admits in a long header.
    pub const MAX_LEN: usize = 20;

    /// Construct from a slice.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= ConnectionId::MAX_LEN,
            "connection IDs are at most 20 bytes"
        );
        let mut cid = ConnectionId::default();
        cid.bytes[..bytes.len()].copy_from_slice(bytes);
        cid.len = bytes.len() as u8;
        cid
    }

    /// Derive a deterministic 8-byte connection ID from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC1D1;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ConnectionId::new(&z.to_be_bytes())
    }

    /// The CID bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the CID is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Long-header packet types (plus the 1-RTT short header for completeness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Initial packet (type 0b00): carries Initial-level CRYPTO and a token.
    Initial,
    /// Handshake packet (type 0b10).
    Handshake,
    /// Retry packet (type 0b11): server address-validation challenge.
    Retry,
    /// 1-RTT short-header packet.
    OneRtt,
}

/// A QUIC packet before serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet type.
    pub ty: PacketType,
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Source connection ID (absent on the wire for 1-RTT).
    pub scid: ConnectionId,
    /// Token (Initial packets only; empty = none).
    pub token: Vec<u8>,
    /// Packet number (encoded in 2 bytes).
    pub number: u64,
    /// Frames (ignored for Retry, which carries the token instead).
    pub frames: Vec<Frame>,
}

impl Packet {
    /// Create a packet with no token.
    pub fn new(
        ty: PacketType,
        dcid: ConnectionId,
        scid: ConnectionId,
        number: u64,
        frames: Vec<Frame>,
    ) -> Self {
        Packet {
            ty,
            dcid,
            scid,
            token: Vec::new(),
            number,
            frames,
        }
    }

    /// Whether any frame is ack-eliciting.
    pub fn is_ack_eliciting(&self) -> bool {
        self.frames.iter().any(|f| f.is_ack_eliciting())
    }

    /// Sum of encoded frame lengths.
    pub fn payload_len(&self) -> usize {
        self.frames.iter().map(|f| f.encoded_len()).sum()
    }

    /// Bytes of PADDING frames in this packet.
    pub fn padding_len(&self) -> usize {
        self.frames
            .iter()
            .map(|f| match f {
                Frame::Padding { n } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Bytes of CRYPTO frame *data* (TLS payload) in this packet.
    pub fn crypto_data_len(&self) -> usize {
        self.frames
            .iter()
            .map(|f| match f {
                Frame::Crypto { data, .. } => data.len(),
                _ => 0,
            })
            .sum()
    }

    /// Encoded size of the packet on the wire.
    ///
    /// Computed arithmetically — callers probe sizes in tight loops (datagram
    /// coalescing, padding, amplification accounting), so this must not
    /// actually serialise the packet.
    pub fn encoded_len(&self) -> usize {
        let overhead = Self::overhead(self.ty, &self.dcid, &self.scid, self.token.len());
        match self.ty {
            // Retry carries the token instead of frames.
            PacketType::Retry => overhead,
            _ => overhead + self.payload_len(),
        }
    }

    /// Header + framing overhead for a packet of this shape carrying
    /// `payload` frame bytes: everything except frame payload itself.
    pub fn overhead(
        ty: PacketType,
        dcid: &ConnectionId,
        scid: &ConnectionId,
        token_len: usize,
    ) -> usize {
        match ty {
            PacketType::Initial => {
                1 + 4
                    + 1
                    + dcid.len()
                    + 1
                    + scid.len()
                    + varint::len(token_len as u64)
                    + token_len
                    + 2 // length varint (2-byte form covers our sizes)
                    + 2 // packet number
                    + AEAD_TAG_LEN
            }
            PacketType::Handshake => 1 + 4 + 1 + dcid.len() + 1 + scid.len() + 2 + 2 + AEAD_TAG_LEN,
            PacketType::Retry => 1 + 4 + 1 + dcid.len() + 1 + scid.len() + token_len + AEAD_TAG_LEN,
            PacketType::OneRtt => 1 + dcid.len() + 2 + AEAD_TAG_LEN,
        }
    }

    /// Serialise the packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_len() + 64);
        match self.ty {
            PacketType::Initial | PacketType::Handshake => {
                let type_bits = match self.ty {
                    PacketType::Initial => 0b00,
                    _ => 0b10,
                };
                // Long header: form=1, fixed=1, type, pn_len-1 = 1 (2 bytes).
                out.push(0b1100_0000 | (type_bits << 4) | 0b01);
                out.extend_from_slice(&VERSION_1.to_be_bytes());
                out.push(self.dcid.len() as u8);
                out.extend_from_slice(self.dcid.as_bytes());
                out.push(self.scid.len() as u8);
                out.extend_from_slice(self.scid.as_bytes());
                if self.ty == PacketType::Initial {
                    varint::write(&mut out, self.token.len() as u64);
                    out.extend_from_slice(&self.token);
                }
                let mut payload = Vec::with_capacity(self.payload_len());
                for f in &self.frames {
                    f.encode(&mut payload);
                }
                // Length covers packet number + payload + tag; always use
                // the 2-byte varint form so sizes are predictable.
                let length = 2 + payload.len() + AEAD_TAG_LEN;
                debug_assert!(length < 16384, "packet too large for 2-byte varint");
                out.extend_from_slice(&((length as u16) | 0x4000).to_be_bytes());
                out.extend_from_slice(&(self.number as u16).to_be_bytes());
                out.extend_from_slice(&payload);
                out.extend_from_slice(&tag_bytes(self.number, payload.len()));
            }
            PacketType::Retry => {
                out.push(0b1111_0000);
                out.extend_from_slice(&VERSION_1.to_be_bytes());
                out.push(self.dcid.len() as u8);
                out.extend_from_slice(self.dcid.as_bytes());
                out.push(self.scid.len() as u8);
                out.extend_from_slice(self.scid.as_bytes());
                out.extend_from_slice(&self.token);
                out.extend_from_slice(&tag_bytes(0xEE77, self.token.len()));
            }
            PacketType::OneRtt => {
                out.push(0b0100_0000);
                out.extend_from_slice(self.dcid.as_bytes());
                out.extend_from_slice(&(self.number as u16).to_be_bytes());
                let mut payload = Vec::with_capacity(self.payload_len());
                for f in &self.frames {
                    f.encode(&mut payload);
                }
                out.extend_from_slice(&payload);
                out.extend_from_slice(&tag_bytes(self.number, payload.len()));
            }
        }
        out
    }
}

fn tag_bytes(a: u64, b: usize) -> [u8; AEAD_TAG_LEN] {
    let mut tag = [0u8; AEAD_TAG_LEN];
    let mut z = a.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(b as u64);
    for chunk in tag.chunks_mut(8) {
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let bytes = z.to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    tag
}

/// A packet parsed from the wire (enough detail for the simulation and for
/// telescope SCID extraction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Packet type.
    pub ty: PacketType,
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Source connection ID (empty for 1-RTT).
    pub scid: ConnectionId,
    /// Token (Initial/Retry).
    pub token: Vec<u8>,
    /// Packet number (0 for Retry).
    pub number: u64,
    /// Decoded frames (empty for Retry).
    pub frames: Vec<Frame>,
    /// Total wire bytes consumed by this packet.
    pub wire_len: usize,
}

impl ParsedPacket {
    /// Bytes of PADDING frames in this packet.
    pub fn padding_len(&self) -> usize {
        self.frames
            .iter()
            .map(|f| match f {
                Frame::Padding { n } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Bytes of CRYPTO frame data (TLS payload) in this packet.
    pub fn crypto_data_len(&self) -> usize {
        self.frames
            .iter()
            .map(|f| match f {
                Frame::Crypto { data, .. } => data.len(),
                _ => 0,
            })
            .sum()
    }
}

/// Parse every packet coalesced into a datagram payload.
///
/// Returns `None` on malformed input. Retry packets consume the rest of the
/// datagram (they cannot be coalesced with following packets, since they
/// have no length field).
pub fn parse_datagram(payload: &[u8]) -> Option<Vec<ParsedPacket>> {
    let mut packets = Vec::new();
    let mut pos = 0usize;
    while pos < payload.len() {
        let start = pos;
        let first = payload[pos];
        if first & 0x80 == 0 {
            // Short header: consumes the rest of the datagram. DCID length
            // is not self-describing; we use the 8-byte convention of this
            // workspace.
            if payload.len() - pos < 1 + 8 + 2 + AEAD_TAG_LEN {
                return None;
            }
            let dcid = ConnectionId::new(&payload[pos + 1..pos + 9]);
            let number = u16::from_be_bytes([payload[pos + 9], payload[pos + 10]]) as u64;
            let body = &payload[pos + 11..payload.len() - AEAD_TAG_LEN];
            let frames = Frame::decode_all(body)?;
            packets.push(ParsedPacket {
                ty: PacketType::OneRtt,
                dcid,
                scid: ConnectionId::default(),
                token: Vec::new(),
                number,
                frames,
                wire_len: payload.len() - start,
            });
            break;
        }
        pos += 1;
        let type_bits = (first >> 4) & 0b11;
        if payload.len() < pos + 4 {
            return None;
        }
        let _version = u32::from_be_bytes(payload[pos..pos + 4].try_into().unwrap());
        pos += 4;
        // A corrupted length byte can claim up to 255 CID bytes; RFC 9000
        // caps CIDs at 20, so anything longer marks the packet malformed —
        // reject it instead of panicking in `ConnectionId::new`.
        let dcid_len = *payload.get(pos)? as usize;
        if dcid_len > ConnectionId::MAX_LEN {
            return None;
        }
        pos += 1;
        let dcid = ConnectionId::new(payload.get(pos..pos + dcid_len)?);
        pos += dcid_len;
        let scid_len = *payload.get(pos)? as usize;
        if scid_len > ConnectionId::MAX_LEN {
            return None;
        }
        pos += 1;
        let scid = ConnectionId::new(payload.get(pos..pos + scid_len)?);
        pos += scid_len;

        match type_bits {
            0b11 => {
                // Retry: token is everything up to the 16-byte tag.
                if payload.len() < pos + AEAD_TAG_LEN {
                    return None;
                }
                let token = payload[pos..payload.len() - AEAD_TAG_LEN].to_vec();
                packets.push(ParsedPacket {
                    ty: PacketType::Retry,
                    dcid,
                    scid,
                    token,
                    number: 0,
                    frames: Vec::new(),
                    wire_len: payload.len() - start,
                });
                break;
            }
            0b00 | 0b10 => {
                let ty = if type_bits == 0b00 {
                    PacketType::Initial
                } else {
                    PacketType::Handshake
                };
                let token = if ty == PacketType::Initial {
                    let tlen = varint::read(payload, &mut pos)? as usize;
                    let t = payload.get(pos..pos + tlen)?.to_vec();
                    pos += tlen;
                    t
                } else {
                    Vec::new()
                };
                let length = varint::read(payload, &mut pos)? as usize;
                if length < 2 + AEAD_TAG_LEN || payload.len() < pos + length {
                    return None;
                }
                let number = u16::from_be_bytes([payload[pos], payload[pos + 1]]) as u64;
                let body = &payload[pos + 2..pos + length - AEAD_TAG_LEN];
                let frames = Frame::decode_all(body)?;
                pos += length;
                packets.push(ParsedPacket {
                    ty,
                    dcid,
                    scid,
                    token,
                    number,
                    frames,
                    wire_len: pos - start,
                });
            }
            _ => return None, // 0-RTT unsupported
        }
    }
    Some(packets)
}

/// Extract the source connection ID from the first long-header packet of a
/// datagram, as a telescope collector would (§4.3 groups backscatter by
/// SCID).
pub fn extract_scid(payload: &[u8]) -> Option<Vec<u8>> {
    let first = *payload.first()?;
    if first & 0x80 == 0 {
        return None; // short header carries no SCID
    }
    let mut pos = 5; // flags + version
    let dcid_len = *payload.get(pos)? as usize;
    pos += 1 + dcid_len;
    let scid_len = *payload.get(pos)? as usize;
    pos += 1;
    payload.get(pos..pos + scid_len).map(|s| s.to_vec())
}

/// Serialise a coalesced datagram from `packets`, padding with a PADDING
/// frame in the *last* packet so the UDP payload reaches `pad_to` (if
/// given). Padding must be added inside a packet's AEAD envelope, which is
/// why this mutates the final packet rather than appending raw zeros.
pub fn assemble_datagram(mut packets: Vec<Packet>, pad_to: Option<usize>) -> Vec<u8> {
    if let Some(target) = pad_to {
        let current: usize = packets.iter().map(|p| p.encoded_len()).sum();
        if current < target {
            let need = target - current;
            if let Some(last) = packets.last_mut() {
                last.frames.push(Frame::Padding { n: need });
            }
        }
    }
    let mut out = Vec::new();
    for p in &packets {
        out.extend_from_slice(&p.encode());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(b: u8) -> ConnectionId {
        ConnectionId::new(&[b; 8])
    }

    fn initial_packet(frames: Vec<Frame>) -> Packet {
        Packet::new(PacketType::Initial, cid(1), cid(2), 0, frames)
    }

    #[test]
    fn initial_roundtrips() {
        let pkt = initial_packet(vec![Frame::Crypto {
            offset: 0,
            data: vec![0xAB; 300],
        }]);
        let wire = pkt.encode();
        let parsed = parse_datagram(&wire).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].ty, PacketType::Initial);
        assert_eq!(parsed[0].dcid, cid(1));
        assert_eq!(parsed[0].scid, cid(2));
        assert_eq!(parsed[0].frames, pkt.frames);
        assert_eq!(parsed[0].wire_len, wire.len());
    }

    #[test]
    fn overhead_prediction_matches_encoding() {
        for (ty, token_len) in [
            (PacketType::Initial, 0usize),
            (PacketType::Initial, 32),
            (PacketType::Handshake, 0),
            (PacketType::OneRtt, 0),
        ] {
            let mut pkt = Packet::new(
                ty,
                cid(3),
                cid(4),
                1,
                vec![Frame::Crypto {
                    offset: 0,
                    data: vec![1; 500],
                }],
            );
            pkt.token = vec![0x55; token_len];
            // The arithmetic length must agree with an actual serialisation.
            assert_eq!(
                pkt.encoded_len(),
                pkt.encode().len(),
                "{ty:?} token={token_len}"
            );
        }
        let mut retry = Packet::new(PacketType::Retry, cid(3), cid(4), 0, Vec::new());
        retry.token = vec![0x55; 48];
        assert_eq!(retry.encoded_len(), retry.encode().len());
    }

    #[test]
    fn oversized_cid_lengths_reject_instead_of_panicking() {
        // A corrupted wire can claim any CID length up to 255; RFC 9000
        // caps CIDs at 20 bytes, so the parser must reject, not assert.
        let pkt = initial_packet(vec![Frame::Crypto {
            offset: 0,
            data: vec![0xAB; 64],
        }]);
        let wire = pkt.encode();
        // Byte 5 is the DCID length of the long header.
        let mut bad_dcid = wire.clone();
        bad_dcid[5] = 0xFF;
        assert_eq!(parse_datagram(&bad_dcid), None);
        // The SCID length follows the 8 DCID bytes.
        let mut bad_scid = wire;
        bad_scid[5 + 1 + 8] = 21;
        assert_eq!(parse_datagram(&bad_scid), None);
    }

    #[test]
    fn coalesced_datagram_parses_in_order() {
        let initial = initial_packet(vec![
            Frame::Ack {
                largest: 0,
                delay: 0,
                first_range: 0,
            },
            Frame::Crypto {
                offset: 0,
                data: vec![2; 90],
            },
        ]);
        let handshake = Packet::new(
            PacketType::Handshake,
            cid(1),
            cid(2),
            0,
            vec![Frame::Crypto {
                offset: 0,
                data: vec![3; 700],
            }],
        );
        let wire = assemble_datagram(vec![initial, handshake], Some(1200));
        assert_eq!(wire.len(), 1200);
        let parsed = parse_datagram(&wire).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].ty, PacketType::Initial);
        assert_eq!(parsed[1].ty, PacketType::Handshake);
        // Padding landed inside the second packet's envelope.
        assert!(parsed[1]
            .frames
            .iter()
            .any(|f| matches!(f, Frame::Padding { .. })));
    }

    #[test]
    fn padding_is_not_appended_when_already_large_enough() {
        let pkt = initial_packet(vec![Frame::Crypto {
            offset: 0,
            data: vec![9; 1300],
        }]);
        let wire = assemble_datagram(vec![pkt], Some(1200));
        assert!(wire.len() > 1300);
        let parsed = parse_datagram(&wire).unwrap();
        assert_eq!(parsed[0].padding_len(), 0);
    }

    #[test]
    fn retry_roundtrips() {
        let mut pkt = Packet::new(PacketType::Retry, cid(7), cid(8), 0, vec![]);
        pkt.token = (0..48).collect();
        let wire = pkt.encode();
        let parsed = parse_datagram(&wire).unwrap();
        assert_eq!(parsed[0].ty, PacketType::Retry);
        assert_eq!(parsed[0].token, pkt.token);
    }

    #[test]
    fn scid_extraction_matches_header() {
        let pkt = initial_packet(vec![Frame::Ping]);
        let wire = pkt.encode();
        assert_eq!(extract_scid(&wire), Some(vec![2u8; 8]));
        // Short header: no SCID.
        let short = Packet::new(
            PacketType::OneRtt,
            cid(1),
            ConnectionId::default(),
            0,
            vec![Frame::Ping],
        );
        assert_eq!(extract_scid(&short.encode()), None);
    }

    #[test]
    fn ack_eliciting_packets() {
        let data = initial_packet(vec![Frame::Crypto {
            offset: 0,
            data: vec![1],
        }]);
        assert!(data.is_ack_eliciting());
        let ack_only = initial_packet(vec![Frame::Ack {
            largest: 0,
            delay: 0,
            first_range: 0,
        }]);
        assert!(!ack_only.is_ack_eliciting());
        let ack_padded = initial_packet(vec![
            Frame::Ack {
                largest: 0,
                delay: 0,
                first_range: 0,
            },
            Frame::Padding { n: 100 },
        ]);
        assert!(!ack_padded.is_ack_eliciting());
    }

    #[test]
    fn byte_accounting_helpers() {
        let pkt = initial_packet(vec![
            Frame::Crypto {
                offset: 0,
                data: vec![5; 250],
            },
            Frame::Padding { n: 40 },
        ]);
        assert_eq!(pkt.crypto_data_len(), 250);
        assert_eq!(pkt.padding_len(), 40);
    }

    #[test]
    fn malformed_datagrams_are_rejected() {
        assert_eq!(parse_datagram(&[0xC1, 0x00]), None);
        let pkt = initial_packet(vec![Frame::Ping]);
        let wire = pkt.encode();
        assert_eq!(parse_datagram(&wire[..wire.len() - 1]), None);
    }

    #[test]
    fn connection_id_from_seed_is_stable() {
        assert_eq!(ConnectionId::from_seed(5), ConnectionId::from_seed(5));
        assert_ne!(ConnectionId::from_seed(5), ConnectionId::from_seed(6));
        assert_eq!(ConnectionId::from_seed(5).len(), 8);
    }
}
