//! The QUIC server state machine and its behaviour profiles.
//!
//! [`ServerBehavior`] captures the deployment-level choices the paper found
//! to matter: packet coalescing, padding placement and accounting, Retry
//! usage, retransmission policy, and which historical anti-amplification
//! policy is enforced. Four named profiles reproduce the populations of
//! §4.1/§4.3:
//!
//! * [`ServerBehavior::rfc_compliant`] — coalesces Initial+Handshake and
//!   counts every byte (incl. padding and resends) against the 3× limit;
//! * [`ServerBehavior::cloudflare_like`] — no coalescing: a padded ACK-only
//!   Initial datagram, a padded ServerHello datagram, and separate
//!   Handshake datagrams, with the padding *not* charged to the budget;
//! * [`ServerBehavior::mvfst_like`] — retransmissions toward unverified
//!   clients are not charged to the budget and repeat up to a configurable
//!   count (pre-disclosure: large; post-disclosure: small);
//! * [`ServerBehavior::retry_first`] — always-on address validation.

use std::collections::{BTreeMap, VecDeque};

use quicert_compress::Algorithm;
use quicert_netsim::{Datagram, Endpoint, SimDuration, SimTime};
use quicert_session::ResumptionHost;
use quicert_tls::{
    new_session_ticket, parse_psk_offer, parse_server_name, ServerFlight, ServerFlightParams,
};
use quicert_x509::{CertificateChain, KeyAlgorithm};

use crate::amplification::{AmplificationBudget, LimitPolicy};
use crate::frame::Frame;
use crate::packet::{
    assemble_datagram, parse_datagram, ConnectionId, Packet, PacketType, QUIC_MIN_INITIAL_SIZE,
};

/// Deployment-level behaviour knobs of a QUIC server.
#[derive(Debug, Clone)]
pub struct ServerBehavior {
    /// Profile name for reports.
    pub name: &'static str,
    /// Coalesce Initial and Handshake packets into shared datagrams.
    pub coalesce: bool,
    /// Send an immediate ACK-only Initial in its own padded datagram before
    /// the ServerHello (the Cloudflare latency optimisation of Appendix B).
    pub separate_ack_datagram: bool,
    /// Padding target for the separate ACK datagram (Cloudflare pads it
    /// although ACK-only Initials need no padding).
    pub ack_pad_target: usize,
    /// Whether PADDING bytes are charged against the amplification budget.
    pub count_padding: bool,
    /// Whether retransmissions are charged against the amplification budget.
    pub count_resends: bool,
    /// The anti-amplification policy in force (Table 3 ablation point).
    pub limit_policy: LimitPolicy,
    /// Maximum number of transmissions of the handshake flight toward an
    /// unvalidated client (1 = never retransmit).
    pub max_transmissions: u32,
    /// Initial probe timeout before the first retransmission; doubles each
    /// time (RFC 9002-style backoff).
    pub pto: SimDuration,
    /// Demand address validation with a Retry before answering.
    pub retry_first: bool,
    /// Largest UDP payload the server will emit.
    pub max_udp_payload: usize,
}

impl ServerBehavior {
    /// Ceiling on the exponentially backed-off probe timeout. RFC 9002
    /// leaves the cap to implementations; ours bounds the doubling so a
    /// server under sustained loss keeps probing at a sane cadence instead
    /// of backing off toward the idle deadline (and, with
    /// `saturating_mul`, toward the 584-year saturation point).
    pub const MAX_PTO: SimDuration = SimDuration::from_secs(8);

    /// A fully RFC 9000/9002-compliant server.
    pub fn rfc_compliant() -> Self {
        ServerBehavior {
            name: "rfc-compliant",
            coalesce: true,
            separate_ack_datagram: false,
            ack_pad_target: 0,
            count_padding: true,
            count_resends: true,
            limit_policy: LimitPolicy::RFC9000,
            max_transmissions: 3,
            pto: SimDuration::from_millis(500),
            retry_first: false,
            max_udp_payload: 1252,
        }
    }

    /// The Cloudflare deployment behaviour of §4.1: no coalescing, an
    /// immediate padded ACK datagram, padding not counted against the
    /// budget.
    pub fn cloudflare_like() -> Self {
        ServerBehavior {
            name: "cloudflare-like",
            coalesce: false,
            separate_ack_datagram: true,
            ack_pad_target: 1252,
            count_padding: false,
            count_resends: true,
            limit_policy: LimitPolicy::RFC9000,
            max_transmissions: 3,
            pto: SimDuration::from_millis(500),
            retry_first: false,
            max_udp_payload: 1252,
        }
    }

    /// The mvfst deployment behaviour of §4.3: resends toward unverified
    /// clients are not charged against the 3× budget and repeat
    /// `transmissions` times in total. Pre-disclosure Instagram/WhatsApp
    /// PoPs showed ~8 transmissions; the post-disclosure fleet ~3.
    pub fn mvfst_like(transmissions: u32) -> Self {
        ServerBehavior {
            name: "mvfst-like",
            coalesce: true,
            separate_ack_datagram: false,
            ack_pad_target: 0,
            count_padding: true,
            count_resends: false,
            limit_policy: LimitPolicy::RFC9000,
            max_transmissions: transmissions,
            pto: SimDuration::from_millis(350),
            retry_first: false,
            max_udp_payload: 1252,
        }
    }

    /// An always-on Retry deployment (a-priori DoS protection, rare in the
    /// wild: ~0.07% of services).
    pub fn retry_first() -> Self {
        ServerBehavior {
            name: "retry-first",
            retry_first: true,
            ..ServerBehavior::rfc_compliant()
        }
    }
}

/// Full server configuration: behaviour + TLS material.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Behaviour profile.
    pub behavior: ServerBehavior,
    /// Certificate chain presented to clients.
    pub chain: CertificateChain,
    /// Leaf key algorithm (sizes CertificateVerify).
    pub leaf_key: KeyAlgorithm,
    /// Compression algorithms the server supports (RFC 8879).
    pub compression_support: Vec<Algorithm>,
    /// Session-resumption participation: ticket issuance/validation state
    /// plus the server's wall clock. `None` (the default everywhere outside
    /// warm scans) disables resumption and reproduces the pre-subsystem
    /// wire exchange byte-for-byte.
    pub resumption: Option<ResumptionHost>,
    /// Deterministic seed.
    pub seed: u64,
}

/// Byte-accounting statistics exported after a handshake.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Total UDP payload bytes handed to the wire.
    pub wire_sent: usize,
    /// CRYPTO frame data bytes sent (TLS payload), including resends.
    pub tls_sent: usize,
    /// PADDING frame bytes sent.
    pub padding_sent: usize,
    /// Datagrams sent.
    pub datagrams_sent: usize,
    /// Number of transmissions of the handshake flight (1 = no resend).
    pub flight_transmissions: u32,
    /// Bytes charged against the amplification budget.
    pub charged: usize,
    /// Whether a Retry was sent.
    pub sent_retry: bool,
    /// Compression algorithm applied to the certificate message, if any.
    pub compression_used: Option<Algorithm>,
    /// Encoded certificate message length as sent (0 on a resumed flight:
    /// no certificate goes on the wire at all).
    pub certificate_message_len: usize,
    /// Certificate message length before compression.
    pub uncompressed_certificate_len: usize,
    /// Whether the flight was a resumed (PSK) one.
    pub resumed: bool,
    /// Whether a NewSessionTicket was issued after completion.
    pub issued_ticket: bool,
}

#[derive(Debug)]
struct PendingDatagram {
    packets: Vec<Packet>,
    pad_to: Option<usize>,
    /// `true` when this datagram is a retransmission.
    is_resend: bool,
}

/// A QUIC server connection endpoint.
#[derive(Debug)]
pub struct ServerConn {
    config: ServerConfig,
    budget: AmplificationBudget,
    scid: ConnectionId,
    client_cid: ConnectionId,
    reply_template: Option<Datagram>,
    // CRYPTO reassembly of the client's Initial stream (the ClientHello).
    ch_buffer: BTreeMap<u64, Vec<u8>>,
    flight_built: bool,
    flight_datagrams: Vec<(Vec<Packet>, Option<usize>)>,
    queue: VecDeque<PendingDatagram>,
    initial_pn: u64,
    handshake_pn: u64,
    onertt_pn: u64,
    largest_client_initial_pn: Option<u64>,
    retry_sent: bool,
    retry_token: Vec<u8>,
    /// Set once a client Handshake-level packet arrives (address validated,
    /// RFC 9001 §4.1.2) or a valid Retry token is echoed.
    complete: bool,
    /// A NewSessionTicket has been queued (at most one per connection).
    ticket_issued: bool,
    transmissions: u32,
    pto_deadline: Option<SimTime>,
    current_pto: SimDuration,
    stats: ServerStats,
    /// When the send queue first blocked on the anti-amplification budget.
    stall_began_at: Option<SimTime>,
    /// When the first datagram left after a stall had begun.
    stall_ended_at: Option<SimTime>,
}

impl ServerConn {
    /// Create a server endpoint for one connection.
    pub fn new(config: ServerConfig) -> Self {
        let scid = ConnectionId::from_seed(config.seed ^ 0x5E5E);
        let current_pto = config.behavior.pto;
        let policy = config.behavior.limit_policy;
        ServerConn {
            config,
            budget: AmplificationBudget::new(policy),
            scid,
            client_cid: ConnectionId::default(),
            reply_template: None,
            ch_buffer: BTreeMap::new(),
            flight_built: false,
            flight_datagrams: Vec::new(),
            queue: VecDeque::new(),
            initial_pn: 0,
            handshake_pn: 0,
            onertt_pn: 0,
            largest_client_initial_pn: None,
            retry_sent: false,
            retry_token: Vec::new(),
            complete: false,
            ticket_issued: false,
            transmissions: 0,
            pto_deadline: None,
            current_pto,
            stats: ServerStats::default(),
            stall_began_at: None,
            stall_ended_at: None,
        }
    }

    /// Final statistics (valid at any time).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The probe timeout currently in force (doubles per retransmission,
    /// capped at [`ServerBehavior::MAX_PTO`]).
    pub fn current_pto(&self) -> SimDuration {
        self.current_pto
    }

    /// When the send queue first blocked on the anti-amplification budget,
    /// if it ever did — the amplification-stall phase begins here.
    pub fn stall_began_at(&self) -> Option<SimTime> {
        self.stall_began_at
    }

    /// When sending resumed after a stall had begun, if it did — the
    /// amplification-stall phase ends here.
    pub fn stall_ended_at(&self) -> Option<SimTime> {
        self.stall_ended_at
    }

    /// Whether the handshake completed from the server's perspective.
    pub fn handshake_complete(&self) -> bool {
        self.complete
    }

    /// The server's source connection ID.
    pub fn scid(&self) -> &ConnectionId {
        &self.scid
    }

    fn contiguous_ch(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut next = 0u64;
        for (&off, data) in &self.ch_buffer {
            if off > next {
                break;
            }
            let skip = (next - off) as usize;
            if skip < data.len() {
                out.extend_from_slice(&data[skip..]);
                next = off + data.len() as u64;
            }
        }
        out
    }

    /// Negotiate a compression algorithm: first client offer we support.
    fn negotiate_compression(&self, ch: &[u8]) -> Option<Algorithm> {
        let offers = parse_compression_offers(ch)?;
        offers
            .into_iter()
            .find(|alg| self.config.compression_support.contains(alg))
    }

    /// Whether the ClientHello's PSK offer names a ticket this server
    /// accepts (right STEK epoch, right SNI, within lifetime).
    fn accepts_psk(&self, ch: &[u8]) -> bool {
        let Some(host) = &self.config.resumption else {
            return false;
        };
        let Some(offer) = parse_psk_offer(ch) else {
            return false;
        };
        let sni = parse_server_name(ch).unwrap_or_default();
        host.issuer
            .validate(&offer.identity, &sni, host.now_secs)
            .accepted()
    }

    fn build_flight(&mut self, ch: &[u8]) {
        let flight = if self.accepts_psk(ch) {
            // Resumed: ServerHello(+pre_shared_key), EE, Finished — the
            // certificate chain never touches the wire.
            self.stats.resumed = true;
            ServerFlight::build_resumed(self.config.seed)
        } else {
            let compression = self.negotiate_compression(ch);
            let flight = ServerFlight::build(&ServerFlightParams {
                chain: &self.config.chain,
                leaf_key: self.config.leaf_key,
                compression,
                seed: self.config.seed,
            });
            self.stats.compression_used = if flight.is_compressed() {
                compression
            } else {
                None
            };
            flight
        };
        self.stats.certificate_message_len = flight.certificate_message_len;
        self.stats.uncompressed_certificate_len = flight.uncompressed_certificate_len;

        let behavior = self.config.behavior.clone();
        let max_udp = behavior.max_udp_payload;
        let mut datagrams: Vec<(Vec<Packet>, Option<usize>)> = Vec::new();

        let ack = Frame::Ack {
            largest: self.largest_client_initial_pn.unwrap_or(0),
            delay: 0,
            first_range: 0,
        };

        if behavior.separate_ack_datagram {
            // Datagram A: ACK-only Initial, padded although not required.
            let ack_pkt = Packet::new(
                PacketType::Initial,
                self.client_cid.clone(),
                self.scid.clone(),
                self.next_initial_pn(),
                vec![ack],
            );
            datagrams.push((vec![ack_pkt], Some(behavior.ack_pad_target)));
            // Datagram B: ServerHello Initial, padded (ack-eliciting).
            let sh_pkt = Packet::new(
                PacketType::Initial,
                self.client_cid.clone(),
                self.scid.clone(),
                self.next_initial_pn(),
                vec![Frame::Crypto {
                    offset: 0,
                    data: flight.initial_crypto.clone(),
                }],
            );
            datagrams.push((vec![sh_pkt], Some(behavior.ack_pad_target)));
        } else {
            // ACK + ServerHello share the first Initial packet.
            let sh_pkt = Packet::new(
                PacketType::Initial,
                self.client_cid.clone(),
                self.scid.clone(),
                self.next_initial_pn(),
                vec![
                    ack,
                    Frame::Crypto {
                        offset: 0,
                        data: flight.initial_crypto.clone(),
                    },
                ],
            );
            datagrams.push((vec![sh_pkt], Some(QUIC_MIN_INITIAL_SIZE)));
        }

        // Handshake-level CRYPTO, chunked into packets / datagrams.
        let hs = &flight.handshake_crypto;
        let hs_overhead = Packet::overhead(PacketType::Handshake, &self.client_cid, &self.scid, 0);
        let mut offset = 0usize;
        while offset < hs.len() {
            // Try to coalesce into the last open datagram first.
            let mut placed = false;
            if behavior.coalesce {
                if let Some((packets, _pad_to)) = datagrams.last_mut() {
                    let used: usize = packets.iter().map(|p| p.encoded_len()).sum();
                    let space = max_udp.saturating_sub(used);
                    if space > hs_overhead + 32 {
                        let take = (space - hs_overhead).min(hs.len() - offset);
                        packets.push(Packet::new(
                            PacketType::Handshake,
                            self.client_cid.clone(),
                            self.scid.clone(),
                            self.next_handshake_pn(),
                            vec![Frame::Crypto {
                                offset: offset as u64,
                                data: hs[offset..offset + take].to_vec(),
                            }],
                        ));
                        offset += take;
                        placed = true;
                    }
                }
            }
            if !placed {
                let take = (max_udp - hs_overhead).min(hs.len() - offset);
                let pkt = Packet::new(
                    PacketType::Handshake,
                    self.client_cid.clone(),
                    self.scid.clone(),
                    self.next_handshake_pn(),
                    vec![Frame::Crypto {
                        offset: offset as u64,
                        data: hs[offset..offset + take].to_vec(),
                    }],
                );
                datagrams.push((vec![pkt], None));
                offset += take;
            }
        }

        self.flight_datagrams = datagrams;
        self.flight_built = true;
    }

    fn next_initial_pn(&mut self) -> u64 {
        let pn = self.initial_pn;
        self.initial_pn += 1;
        pn
    }

    fn next_handshake_pn(&mut self) -> u64 {
        let pn = self.handshake_pn;
        self.handshake_pn += 1;
        pn
    }

    fn enqueue_flight(&mut self, is_resend: bool) {
        // Re-number packets for retransmissions (fresh packet numbers).
        for (packets, pad_to) in self.flight_datagrams.clone() {
            let packets = if is_resend {
                packets
                    .into_iter()
                    .map(|mut p| {
                        p.number = match p.ty {
                            PacketType::Initial => self.next_initial_pn(),
                            _ => self.next_handshake_pn(),
                        };
                        p
                    })
                    .collect()
            } else {
                packets
            };
            self.queue.push_back(PendingDatagram {
                packets,
                pad_to,
                is_resend,
            });
        }
        self.transmissions += 1;
        self.stats.flight_transmissions = self.transmissions;
    }

    fn try_send(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        let Some(template) = self.reply_template.clone() else {
            return;
        };
        while let Some(pending) = self.queue.front() {
            let wire = assemble_datagram(pending.packets.clone(), pending.pad_to);
            let padding: usize = {
                // Padding = pad target minus unpadded size (when padded).
                let unpadded: usize = pending.packets.iter().map(|p| p.encoded_len()).sum();
                wire.len().saturating_sub(unpadded)
            };
            let mut charged = wire.len();
            if !self.config.behavior.count_padding {
                charged -= padding;
            }
            if pending.is_resend && !self.config.behavior.count_resends {
                charged = 0;
            }
            if !self.budget.allows(charged, pending.packets.len()) {
                if self.stall_began_at.is_none() {
                    self.stall_began_at = Some(now);
                }
                break;
            }
            if self.stall_began_at.is_some() && self.stall_ended_at.is_none() {
                self.stall_ended_at = Some(now);
            }
            let pending = self.queue.pop_front().unwrap();
            self.budget.charge(charged, pending.packets.len());
            self.stats.charged += charged;
            self.stats.wire_sent += wire.len();
            self.stats.padding_sent += padding
                + pending
                    .packets
                    .iter()
                    .map(|p| p.padding_len())
                    .sum::<usize>();
            self.stats.tls_sent += pending
                .packets
                .iter()
                .map(|p| p.crypto_data_len())
                .sum::<usize>();
            self.stats.datagrams_sent += 1;
            out.push(template.reply_with(wire));
        }
        // Arm the retransmission timer while unacknowledged data is out.
        if !self.complete && self.transmissions > 0 && self.pto_deadline.is_none() {
            self.pto_deadline = Some(now + self.current_pto);
        }
    }

    /// Queue a NewSessionTicket (1-RTT level) after a completed handshake,
    /// when this server participates in resumption. At most one per
    /// connection; never on the plain (resumption-free) configuration, so
    /// the classic wire exchange is untouched.
    fn maybe_issue_ticket(&mut self) {
        if self.ticket_issued || !self.complete {
            return;
        }
        let Some(host) = &self.config.resumption else {
            return;
        };
        if !host.issue_tickets {
            return;
        }
        let ch = self.contiguous_ch();
        let sni = parse_server_name(&ch).unwrap_or_default();
        let identity = host.issuer.issue(&sni, host.now_secs, self.config.seed);
        let lifetime = host.issuer.config.lifetime_secs.min(u32::MAX as u64) as u32;
        let age_add = (self.config.seed ^ (self.config.seed >> 32)) as u32;
        let nst = new_session_ticket(lifetime, age_add, &identity, self.config.seed);
        let pn = self.onertt_pn;
        self.onertt_pn += 1;
        let pkt = Packet::new(
            PacketType::OneRtt,
            self.client_cid.clone(),
            self.scid.clone(),
            pn,
            vec![Frame::Crypto {
                offset: 0,
                data: nst,
            }],
        );
        self.queue.push_back(PendingDatagram {
            packets: vec![pkt],
            pad_to: None,
            is_resend: false,
        });
        self.ticket_issued = true;
        self.stats.issued_ticket = true;
    }

    fn make_retry_token(&self) -> Vec<u8> {
        let mut token = vec![0u8; 48];
        let mut z = self.config.seed ^ 0x0072_6574_7279;
        for b in token.iter_mut() {
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *b = (z >> 24) as u8;
        }
        token
    }
}

impl Endpoint for ServerConn {
    fn on_datagram(&mut self, dgram: &Datagram, now: SimTime, out: &mut Vec<Datagram>) {
        self.budget.on_receive(dgram.payload_len());
        // The reply path is learned from the first datagram.
        if self.reply_template.is_none() {
            self.reply_template = Some(Datagram::new(
                dgram.dst,
                dgram.src,
                dgram.dst_port,
                dgram.src_port,
                Vec::new(),
            ));
        }
        let Some(packets) = parse_datagram(&dgram.payload) else {
            return;
        };
        for pkt in packets {
            match pkt.ty {
                PacketType::Initial => {
                    self.largest_client_initial_pn = Some(
                        self.largest_client_initial_pn
                            .map_or(pkt.number, |l| l.max(pkt.number)),
                    );
                    if self.client_cid.is_empty() {
                        self.client_cid = pkt.scid.clone();
                    }
                    let mut saw_crypto = false;
                    for frame in &pkt.frames {
                        if let Frame::Crypto { offset, data } = frame {
                            self.ch_buffer.insert(*offset, data.clone());
                            saw_crypto = true;
                        }
                    }
                    if saw_crypto && !self.flight_built {
                        if self.config.behavior.retry_first
                            && !self.retry_sent
                            && pkt.token.is_empty()
                        {
                            // Demand address validation.
                            self.retry_token = self.make_retry_token();
                            let mut retry = Packet::new(
                                PacketType::Retry,
                                self.client_cid.clone(),
                                self.scid.clone(),
                                0,
                                vec![],
                            );
                            retry.token = self.retry_token.clone();
                            let wire = retry.encode();
                            self.budget.charge(wire.len(), 1);
                            self.stats.charged += wire.len();
                            self.stats.wire_sent += wire.len();
                            self.stats.datagrams_sent += 1;
                            self.stats.sent_retry = true;
                            self.retry_sent = true;
                            if let Some(t) = &self.reply_template {
                                out.push(t.reply_with(wire));
                            }
                            continue;
                        }
                        if self.config.behavior.retry_first
                            && self.retry_sent
                            && pkt.token == self.retry_token
                        {
                            // Token echo proves the address.
                            self.budget.validate();
                        }
                        let ch = self.contiguous_ch();
                        if is_complete_handshake_message(&ch) {
                            self.build_flight(&ch);
                            self.enqueue_flight(false);
                        }
                    }
                }
                PacketType::Handshake => {
                    // Any Handshake-level packet from the client validates
                    // its address (it proves receipt of our keys).
                    self.budget.validate();
                    for frame in &pkt.frames {
                        if let Frame::Crypto { .. } = frame {
                            // The client's Finished: handshake confirmed.
                            self.complete = true;
                            self.pto_deadline = None;
                        }
                    }
                    self.maybe_issue_ticket();
                }
                _ => {}
            }
        }
        self.try_send(now, out);
    }

    fn on_timer(&mut self, now: SimTime, out: &mut Vec<Datagram>) {
        self.pto_deadline = None;
        if self.complete || !self.flight_built {
            return;
        }
        if self.transmissions >= self.config.behavior.max_transmissions {
            // Give up; connection will idle out.
            return;
        }
        // Exponential backoff (capped) and retransmit the whole flight.
        // Anything still queued from the previous transmission is
        // superseded (and would otherwise wedge the queue behind the
        // amplification limit).
        self.current_pto = self
            .current_pto
            .saturating_mul(2)
            .min(ServerBehavior::MAX_PTO);
        self.queue.clear();
        self.enqueue_flight(true);
        self.try_send(now, out);
        if self.pto_deadline.is_none()
            && self.transmissions < self.config.behavior.max_transmissions
        {
            self.pto_deadline = Some(now + self.current_pto);
        }
    }

    fn next_timer(&self) -> Option<SimTime> {
        if self.complete {
            return None;
        }
        self.pto_deadline
    }

    fn is_done(&self) -> bool {
        self.complete
            || (self.flight_built
                && self.queue.is_empty()
                && self.transmissions >= self.config.behavior.max_transmissions)
    }
}

/// Whether `buf` starts with one complete TLS handshake message.
pub fn is_complete_handshake_message(buf: &[u8]) -> bool {
    if buf.len() < 4 {
        return false;
    }
    let len = ((buf[1] as usize) << 16) | ((buf[2] as usize) << 8) | buf[3] as usize;
    buf.len() >= 4 + len
}

/// Parse the compress_certificate extension (type 27) out of a ClientHello
/// handshake message. Returns `None` when absent or malformed.
pub fn parse_compression_offers(ch: &[u8]) -> Option<Vec<Algorithm>> {
    if ch.len() < 4 || ch[0] != 1 {
        return None;
    }
    let body = &ch[4..];
    let mut pos = 2 + 32; // legacy_version + random
    let sid_len = *body.get(pos)? as usize;
    pos += 1 + sid_len;
    let cs_len = u16::from_be_bytes([*body.get(pos)?, *body.get(pos + 1)?]) as usize;
    pos += 2 + cs_len;
    let comp_len = *body.get(pos)? as usize;
    pos += 1 + comp_len;
    let ext_total = u16::from_be_bytes([*body.get(pos)?, *body.get(pos + 1)?]) as usize;
    pos += 2;
    let end = pos + ext_total;
    while pos + 4 <= end.min(body.len()) {
        let ty = u16::from_be_bytes([body[pos], body[pos + 1]]);
        let len = u16::from_be_bytes([body[pos + 2], body[pos + 3]]) as usize;
        pos += 4;
        if ty == 27 {
            let data = body.get(pos..pos + len)?;
            let list_len = *data.first()? as usize;
            let list = data.get(1..1 + list_len)?;
            let mut algs = Vec::new();
            for pair in list.chunks_exact(2) {
                let cp = u16::from_be_bytes([pair[0], pair[1]]);
                if let Some(alg) = Algorithm::from_code_point(cp) {
                    algs.push(alg);
                }
            }
            return Some(algs);
        }
        pos += len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_tls::{client_hello, ClientHelloParams};

    #[test]
    fn compression_offer_parsing() {
        let ch = client_hello(&ClientHelloParams {
            server_name: "example.org".into(),
            compression: vec![Algorithm::Brotli, Algorithm::Zstd],
            psk: None,
            seed: 4,
        });
        let offers = parse_compression_offers(&ch).expect("extension present");
        assert_eq!(offers, vec![Algorithm::Brotli, Algorithm::Zstd]);

        let ch_none = client_hello(&ClientHelloParams {
            server_name: "example.org".into(),
            compression: vec![],
            psk: None,
            seed: 4,
        });
        assert_eq!(parse_compression_offers(&ch_none), None);
    }

    #[test]
    fn handshake_message_completeness() {
        let ch = client_hello(&ClientHelloParams {
            server_name: "a.example".into(),
            compression: vec![],
            psk: None,
            seed: 1,
        });
        assert!(is_complete_handshake_message(&ch));
        assert!(!is_complete_handshake_message(&ch[..ch.len() - 1]));
        assert!(!is_complete_handshake_message(&ch[..3]));
    }

    #[test]
    fn behavior_profiles_differ_in_the_documented_ways() {
        let rfc = ServerBehavior::rfc_compliant();
        let cf = ServerBehavior::cloudflare_like();
        let mv = ServerBehavior::mvfst_like(8);
        let retry = ServerBehavior::retry_first();
        assert!(rfc.coalesce && rfc.count_padding && rfc.count_resends && !rfc.retry_first);
        assert!(!cf.coalesce && cf.separate_ack_datagram && !cf.count_padding);
        assert!(!mv.count_resends && mv.max_transmissions == 8);
        assert!(retry.retry_first);
    }
}
