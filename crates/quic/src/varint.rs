//! QUIC variable-length integers (RFC 9000 §16).
//!
//! The two most significant bits of the first byte encode the total length
//! (1, 2, 4 or 8 bytes); the remaining bits carry the value big-endian.

/// Maximum value representable (2^62 - 1).
pub const MAX: u64 = (1 << 62) - 1;

/// Encoded size of `v` in bytes.
///
/// # Panics
/// Panics if `v` exceeds [`MAX`].
pub fn len(v: u64) -> usize {
    match v {
        0..=0x3F => 1,
        0x40..=0x3FFF => 2,
        0x4000..=0x3FFF_FFFF => 4,
        0x4000_0000..=MAX => 8,
        _ => panic!("varint out of range: {v}"),
    }
}

/// Append the encoding of `v` to `out`.
pub fn write(out: &mut Vec<u8>, v: u64) {
    match len(v) {
        1 => out.push(v as u8),
        2 => out.extend_from_slice(&((v as u16) | 0x4000).to_be_bytes()),
        4 => out.extend_from_slice(&((v as u32) | 0x8000_0000).to_be_bytes()),
        _ => out.extend_from_slice(&(v | 0xC000_0000_0000_0000).to_be_bytes()),
    }
}

/// Decode a varint at `input[*pos..]`, advancing `pos`.
pub fn read(input: &[u8], pos: &mut usize) -> Option<u64> {
    let first = *input.get(*pos)?;
    let n = 1usize << (first >> 6);
    if input.len() < *pos + n {
        return None;
    }
    let mut v = (first & 0x3F) as u64;
    for i in 1..n {
        v = (v << 8) | input[*pos + i] as u64;
    }
    *pos += n;
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_9000_appendix_a_examples() {
        // The four worked examples from RFC 9000 §A.1.
        let cases: [(u64, &[u8]); 4] = [
            (
                151_288_809_941_952_652,
                &[0xC2, 0x19, 0x7C, 0x5E, 0xFF, 0x14, 0xE8, 0x8C],
            ),
            (494_878_333, &[0x9D, 0x7F, 0x3E, 0x7D]),
            (15_293, &[0x7B, 0xBD]),
            (37, &[0x25]),
        ];
        for (value, bytes) in cases {
            let mut out = Vec::new();
            write(&mut out, value);
            assert_eq!(out, bytes, "encoding of {value}");
            let mut pos = 0;
            assert_eq!(read(bytes, &mut pos), Some(value));
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn boundaries_roundtrip() {
        for v in [0, 63, 64, 16_383, 16_384, 0x3FFF_FFFF, 0x4000_0000, MAX] {
            let mut out = Vec::new();
            write(&mut out, v);
            assert_eq!(out.len(), len(v));
            let mut pos = 0;
            assert_eq!(read(&out, &mut pos), Some(v), "value {v}");
        }
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut out = Vec::new();
        write(&mut out, 494_878_333);
        let mut pos = 0;
        assert_eq!(read(&out[..2], &mut pos), None);
        assert_eq!(read(&[], &mut pos), None);
    }

    #[test]
    #[should_panic(expected = "varint out of range")]
    fn oversized_value_panics() {
        len(MAX + 1);
    }
}
