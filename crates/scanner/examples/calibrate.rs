//! Calibration probe: per-group handshake class breakdown (dev tool).
use quicert_pki::{World, WorldConfig};
use quicert_scanner::quicreach;
use std::collections::HashMap;

fn main() {
    let world = World::generate(WorldConfig {
        domains: 3_000,
        seed: 33,
        ..WorldConfig::default()
    });
    let results = quicreach::scan(&world, 1362);
    let summary = quicreach::summarize(1362, &results);
    println!(
        "amp={} multi={} one={} retry={} unreach={}",
        summary.amplification,
        summary.multi_rtt,
        summary.one_rtt,
        summary.retry,
        summary.unreachable
    );
    // Per chain-id breakdown
    let mut by_chain: HashMap<String, (usize, HashMap<&'static str, usize>)> = HashMap::new();
    for (rec, res) in world.quic_services().zip(results.iter()) {
        assert_eq!(rec.rank, res.rank);
        let q = rec.quic.as_ref().unwrap();
        let key = format!("{:?}/{:?}", q.chain_id, q.behavior);
        let entry = by_chain.entry(key).or_default();
        entry.0 += 1;
        *entry.1.entry(res.class.label()).or_default() += 1;
    }
    let mut keys: Vec<_> = by_chain.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let (n, classes) = &by_chain[&k];
        println!("{k:55} n={n:5} {classes:?}");
    }
}
