//! Mapping from world deployments to concrete QUIC server configurations.

use quicert_netsim::{LinkModel, NetworkProfile, SimDuration, Wire};
use quicert_pki::world::BehaviorKind;
use quicert_pki::{CertificateEra, DomainRecord, World};
use quicert_quic::{ServerBehavior, ServerConfig};
use quicert_x509::CertificateChain;

/// Number of flight transmissions of pre-disclosure Meta PoPs (§4.3: up to
/// 45× amplification, sessions of ~51 s).
pub const MVFST_PRE_TRANSMISSIONS: u32 = 8;
/// Post-disclosure transmissions (Fig 11(b): mean ~5× remains).
pub const MVFST_POST_TRANSMISSIONS: u32 = 2;

/// Concrete [`ServerBehavior`] for a deployment's behaviour family.
pub fn behavior_of(kind: BehaviorKind) -> ServerBehavior {
    match kind {
        BehaviorKind::RfcCompliant => ServerBehavior::rfc_compliant(),
        BehaviorKind::CloudflareLike => ServerBehavior::cloudflare_like(),
        BehaviorKind::MvfstPreDisclosure => ServerBehavior::mvfst_like(MVFST_PRE_TRANSMISSIONS),
        BehaviorKind::MvfstPostDisclosure => ServerBehavior::mvfst_like(MVFST_POST_TRANSMISSIONS),
        BehaviorKind::RetryFirst => ServerBehavior::retry_first(),
    }
}

/// Build the full QUIC server configuration of a domain, reusing an
/// already-materialised chain when the caller loops (e.g. Initial sweeps).
pub fn server_config_for(
    world: &World,
    record: &DomainRecord,
    chain: CertificateChain,
) -> ServerConfig {
    server_config_for_era(world, record, chain, CertificateEra::Classical)
}

/// [`server_config_for`] in one [`CertificateEra`]: the passed chain is
/// expected to come from the same era, and the leaf key (which sizes
/// CertificateVerify) is mapped through [`CertificateEra::key`]. The
/// classical era reproduces [`server_config_for`] byte-for-byte.
pub fn server_config_for_era(
    world: &World,
    record: &DomainRecord,
    chain: CertificateChain,
    era: CertificateEra,
) -> ServerConfig {
    let quic = record
        .quic
        .as_ref()
        .expect("server_config_for requires a QUIC deployment");
    let mut behavior = behavior_of(quic.behavior);
    // Hypergiants retransmit toward unverified clients without charging the
    // budget (Fig 9: all hypergiants exceed the limit via resends).
    match quic.provider {
        quicert_pki::Provider::Google => {
            behavior.count_resends = false;
            behavior.max_transmissions = 3;
        }
        quicert_pki::Provider::Cloudflare => {
            behavior.count_resends = false;
            behavior.max_transmissions = 2;
        }
        _ => {}
    }
    let _ = world;
    ServerConfig {
        behavior,
        chain,
        leaf_key: era.key(quic.leaf_key),
        compression_support: quic.compression_support.clone(),
        resumption: None,
        seed: record.seed,
    }
}

/// The wire between the scanner and a domain's server, including the
/// load-balancer encapsulation of §4.1 when deployed.
pub fn wire_for(record: &DomainRecord) -> Wire {
    let latency = SimDuration::from_millis(10 + (record.seed % 40));
    let mut wire = Wire::ideal(latency);
    if let Some(quic) = &record.quic {
        if quic.behind_lb {
            wire.a_to_b = LinkModel::tunneled(latency, quic.lb_overhead);
        }
    }
    wire
}

/// [`wire_for`] with a [`NetworkProfile`] overlay applied on top of the
/// domain's base path. [`NetworkProfile::Ideal`] is the identity, so
/// ideal-profile scans reproduce profile-unaware ones byte-for-byte.
pub fn wire_for_profile(record: &DomainRecord, profile: NetworkProfile) -> Wire {
    let mut wire = wire_for(record);
    profile.apply(&mut wire);
    wire
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    #[test]
    fn behavior_mapping_is_faithful() {
        assert!(behavior_of(BehaviorKind::RetryFirst).retry_first);
        assert!(!behavior_of(BehaviorKind::CloudflareLike).coalesce);
        assert_eq!(
            behavior_of(BehaviorKind::MvfstPreDisclosure).max_transmissions,
            MVFST_PRE_TRANSMISSIONS
        );
        assert_eq!(
            behavior_of(BehaviorKind::MvfstPostDisclosure).max_transmissions,
            MVFST_POST_TRANSMISSIONS
        );
        assert!(behavior_of(BehaviorKind::RfcCompliant).count_resends);
    }

    #[test]
    fn lb_deployments_get_tunneled_wires() {
        let world = quicert_pki::World::generate(WorldConfig {
            domains: 5_000,
            seed: 9,
            ..WorldConfig::default()
        });
        let lb = world
            .quic_services()
            .find(|d| d.quic.as_ref().unwrap().behind_lb)
            .expect("some LB deployment in 5k domains");
        let wire = wire_for(lb);
        assert!(wire.a_to_b.encapsulation_overhead >= 28);
        let plain = world
            .quic_services()
            .find(|d| !d.quic.as_ref().unwrap().behind_lb)
            .unwrap();
        assert_eq!(wire_for(plain).a_to_b.encapsulation_overhead, 0);
    }
}
