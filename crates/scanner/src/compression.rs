//! Certificate-compression probing (the quiche fork of §3.2) and the
//! synthetic compression study of §4.2.

use quicert_analysis::Merge;
use quicert_compress::{compress_with, Algorithm};
use quicert_pki::{CertificateEra, DomainRecord, World};
use quicert_tls::{ServerFlight, ServerFlightParams};

/// Per-service compression probe result for one algorithm.
#[derive(Debug, Clone)]
pub struct CompressionProbe {
    /// Service rank.
    pub rank: usize,
    /// Algorithm offered.
    pub algorithm: Algorithm,
    /// Whether the server negotiated it.
    pub supported: bool,
    /// Achieved ratio (compressed/uncompressed certificate message) when
    /// supported.
    pub ratio: Option<f64>,
    /// Certificate-message bytes on the wire when supported — the exact
    /// integer numerator/denominator behind `ratio`, which is what the
    /// streaming collator accumulates (integer sums merge exactly; float
    /// ratio sums do not).
    pub message_bytes: Option<(usize, usize)>,
}

/// Aggregate support/ratio per algorithm (Table 1 columns).
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmSupport {
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Services supporting it.
    pub supported: usize,
    /// Services probed.
    pub total: usize,
    /// Mean achieved ratio over supporting services.
    pub mean_ratio: f64,
}

impl AlgorithmSupport {
    /// Support share in percent.
    pub fn share(&self) -> f64 {
        self.supported as f64 / self.total.max(1) as f64 * 100.0
    }
}

/// Probe one service with one algorithm offer.
pub fn probe(world: &World, record: &DomainRecord, algorithm: Algorithm) -> CompressionProbe {
    let quic = record.quic.as_ref().expect("QUIC service");
    let supported = quic.compression_support.contains(&algorithm);
    let flight = supported.then(|| {
        let chain = world.quic_chain(record).expect("chain");
        ServerFlight::build(&ServerFlightParams {
            chain: &chain,
            leaf_key: quic.leaf_key,
            compression: Some(algorithm),
            seed: record.seed,
        })
    });
    CompressionProbe {
        rank: record.rank,
        algorithm,
        supported,
        ratio: flight.as_ref().map(|f| f.compression_ratio()),
        message_bytes: flight
            .as_ref()
            .map(|f| (f.certificate_message_len, f.uncompressed_certificate_len)),
    }
}

/// Probe every QUIC service with all three algorithms and aggregate.
pub fn scan(world: &World) -> Vec<AlgorithmSupport> {
    let services: Vec<&DomainRecord> = world.quic_services().collect();
    collate(&probe_records(world, &services))
}

/// Probe an explicit shard of services with all three algorithms.
///
/// Shard-aware entry point: returns one `Algorithm::ALL`-ordered probe row
/// per service, so shards can run on separate workers and be concatenated
/// in order before [`collate`].
pub fn probe_records(world: &World, records: &[&DomainRecord]) -> Vec<[CompressionProbe; 3]> {
    records
        .iter()
        .map(|record| Algorithm::ALL.map(|algorithm| probe(world, record, algorithm)))
        .collect()
}

/// Aggregate service-major probe rows into Table 1's per-algorithm columns.
/// Ratios are folded in service order, so the result is bit-for-bit
/// independent of how the probing was sharded.
pub fn collate(probes: &[[CompressionProbe; 3]]) -> Vec<AlgorithmSupport> {
    Algorithm::ALL
        .iter()
        .enumerate()
        .map(|(i, &algorithm)| {
            let mut supported = 0usize;
            let mut ratios = Vec::new();
            for row in probes {
                let p = &row[i];
                debug_assert_eq!(p.algorithm, algorithm);
                if p.supported {
                    supported += 1;
                    if let Some(r) = p.ratio {
                        ratios.push(r);
                    }
                }
            }
            AlgorithmSupport {
                algorithm,
                supported,
                total: probes.len(),
                mean_ratio: quicert_analysis::mean(&ratios),
            }
        })
        .collect()
}

// -------------------------------------------------------- streaming fold --

/// Streaming per-algorithm support column: counts plus exact byte totals.
///
/// The materialized [`AlgorithmSupport`] reports a mean of per-service
/// float ratios; float sums are not bit-associative, so the streaming
/// column accumulates the integer byte totals instead and reports the
/// aggregate ratio `Σcompressed / Σuncompressed` — deterministic under any
/// chunking or worker order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgorithmStreamColumn {
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Services that negotiated it.
    pub supported: u64,
    /// Services probed.
    pub total: u64,
    /// Certificate-message bytes on the wire across supporting services.
    pub compressed_bytes: u64,
    /// Uncompressed certificate-message bytes across supporting services.
    pub uncompressed_bytes: u64,
}

impl AlgorithmStreamColumn {
    /// Support share in percent.
    pub fn share(&self) -> f64 {
        self.supported as f64 / self.total.max(1) as f64 * 100.0
    }

    /// Aggregate achieved ratio (1.0 when nothing was compressed).
    pub fn aggregate_ratio(&self) -> f64 {
        if self.uncompressed_bytes == 0 {
            return 1.0;
        }
        self.compressed_bytes as f64 / self.uncompressed_bytes as f64
    }
}

/// The mergeable summary one population chunk folds into on the streaming
/// compression path: one [`AlgorithmStreamColumn`] per RFC 8879 algorithm
/// plus the all-three count of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressionShard {
    /// Per-algorithm columns in [`Algorithm::ALL`] order.
    pub algorithms: [AlgorithmStreamColumn; 3],
    /// Services supporting all three algorithms.
    pub all_three: u64,
}

impl CompressionShard {
    /// Derive the summary from materialized probe rows — the reference the
    /// streaming path must match bit-for-bit.
    pub fn from_probes(probes: &[[CompressionProbe; 3]]) -> CompressionShard {
        let mut shard = CompressionShard::identity();
        for row in probes {
            shard.push(row);
        }
        shard
    }

    /// Fold one service's probe row in.
    pub fn push(&mut self, row: &[CompressionProbe; 3]) {
        for (column, probe) in self.algorithms.iter_mut().zip(row) {
            debug_assert_eq!(column.algorithm, probe.algorithm);
            column.total += 1;
            if probe.supported {
                column.supported += 1;
                if let Some((compressed, uncompressed)) = probe.message_bytes {
                    column.compressed_bytes += compressed as u64;
                    column.uncompressed_bytes += uncompressed as u64;
                }
            }
        }
        if row.iter().all(|p| p.supported) {
            self.all_three += 1;
        }
    }
}

impl Merge for CompressionShard {
    fn identity() -> Self {
        CompressionShard {
            algorithms: Algorithm::ALL.map(|algorithm| AlgorithmStreamColumn {
                algorithm,
                supported: 0,
                total: 0,
                compressed_bytes: 0,
                uncompressed_bytes: 0,
            }),
            all_three: 0,
        }
    }

    fn merge(&mut self, other: &Self) {
        for (a, b) in self.algorithms.iter_mut().zip(&other.algorithms) {
            assert_eq!(a.algorithm, b.algorithm, "misordered compression shards");
            a.supported += b.supported;
            a.total += b.total;
            a.compressed_bytes += b.compressed_bytes;
            a.uncompressed_bytes += b.uncompressed_bytes;
        }
        self.all_three += other.all_three;
    }
}

/// Fold one population chunk into a [`CompressionShard`] without retaining
/// probe rows beyond the chunk. Probing goes through the same
/// [`probe_records`] helper the materialized path uses.
pub fn fold_records(world: &World, records: &[&DomainRecord]) -> CompressionShard {
    fold_iter(world, records.iter().copied())
}

/// [`fold_records`] over any record iterator: each QUIC service's probe
/// row is folded straight into the shard, so the streaming pump never
/// materializes the per-chunk service list or probe-row `Vec` that
/// [`probe_records`] builds. Row construction is the same
/// `Algorithm::ALL`-ordered [`probe`] loop, so the shard is bit-for-bit
/// [`CompressionShard::from_probes`] over the materialized rows.
pub fn fold_iter<'a>(
    world: &World,
    records: impl IntoIterator<Item = &'a DomainRecord>,
) -> CompressionShard {
    let mut shard = CompressionShard::identity();
    for record in records.into_iter().filter(|record| record.has_quic()) {
        let row = Algorithm::ALL.map(|algorithm| probe(world, record, algorithm));
        shard.push(&row);
    }
    shard
}

/// Number of services supporting *all three* algorithms (the 0.05% Meta
/// signature of Table 1).
pub fn all_three_support(world: &World) -> (usize, usize) {
    let mut all = 0usize;
    let mut total = 0usize;
    for record in world.quic_services() {
        total += 1;
        if record.quic.as_ref().unwrap().compression_support.len() == 3 {
            all += 1;
        }
    }
    (all, total)
}

/// The synthetic §4.2 study: compress collected chains directly and report
/// (ratio, compressed size) per chain.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCompression {
    /// Original chain size (concatenated DER).
    pub original: usize,
    /// Compressed size under brotli.
    pub compressed: usize,
}

impl SyntheticCompression {
    /// compressed/original.
    pub fn ratio(&self) -> f64 {
        self.compressed as f64 / self.original.max(1) as f64
    }
}

/// Compress a sample of served chains (every `stride`-th HTTPS-reachable
/// domain) with the given algorithm.
pub fn synthetic_study(
    world: &World,
    algorithm: Algorithm,
    stride: usize,
) -> Vec<SyntheticCompression> {
    let sampled = study_sample(world, stride);
    study_records(world, &sampled, algorithm)
}

/// The every-`stride`-th HTTPS-reachable sample the synthetic study runs on.
pub fn study_sample(world: &World, stride: usize) -> Vec<&DomainRecord> {
    world
        .domains()
        .iter()
        .step_by(stride.max(1))
        .filter(|record| record.has_https())
        .collect()
}

/// Compress the served chains of an explicit shard of sampled records.
///
/// Shard-aware entry point: each chain is materialised and compressed
/// independently, so shards concatenated in sample order reproduce a serial
/// [`synthetic_study`] bit-for-bit.
pub fn study_records(
    world: &World,
    records: &[&DomainRecord],
    algorithm: Algorithm,
) -> Vec<SyntheticCompression> {
    study_records_era(world, records, algorithm, CertificateEra::Classical)
}

/// [`study_records`] in one [`CertificateEra`]: the same sampled chains
/// with era-swapped keys and signatures. The brotli profile's Fig-9-style
/// certificate dictionary was assembled from *classical* DER fragments, so
/// the achieved ratio degrades on ML-DSA material — the keys and signatures
/// that dominate PQC chains are incompressible random bytes the dictionary
/// has never seen.
pub fn study_records_era(
    world: &World,
    records: &[&DomainRecord],
    algorithm: Algorithm,
    era: CertificateEra,
) -> Vec<SyntheticCompression> {
    records
        .iter()
        .filter_map(|record| {
            let chain = world.https_chain_era(record, era)?;
            let der = chain.concatenated_der();
            let compressed = compress_with(algorithm, &der);
            Some(SyntheticCompression {
                original: der.len(),
                compressed: compressed.data.len(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn world() -> quicert_pki::World {
        quicert_pki::World::generate(WorldConfig {
            domains: 4_000,
            seed: 77,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn brotli_support_is_ubiquitous_all_three_rare() {
        let world = world();
        let support = scan(&world);
        let brotli = support
            .iter()
            .find(|s| s.algorithm == Algorithm::Brotli)
            .unwrap();
        assert!(brotli.share() > 90.0, "brotli {}", brotli.share());
        let zlib = support
            .iter()
            .find(|s| s.algorithm == Algorithm::Zlib)
            .unwrap();
        assert!(zlib.share() < 2.0, "zlib {}", zlib.share());
        let (all, total) = all_three_support(&world);
        assert!((all as f64 / total as f64) < 0.02);
    }

    #[test]
    fn achieved_ratios_are_meaningful() {
        let world = world();
        let support = scan(&world);
        for s in &support {
            if s.supported > 0 {
                assert!(
                    (0.2..0.95).contains(&s.mean_ratio),
                    "{}: ratio {}",
                    s.algorithm,
                    s.mean_ratio
                );
            }
        }
    }

    #[test]
    fn dictionary_compression_degrades_on_pq_chains() {
        let world = world();
        let sampled = study_sample(&world, 40);
        let classical = study_records_era(
            &world,
            &sampled,
            Algorithm::Brotli,
            CertificateEra::Classical,
        );
        let ratios = |rows: &[SyntheticCompression]| {
            quicert_analysis::mean(&rows.iter().map(|r| r.ratio()).collect::<Vec<_>>())
        };
        for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
            let pq = study_records_era(&world, &sampled, Algorithm::Brotli, era);
            assert_eq!(pq.len(), classical.len());
            // PQC chains are dominated by incompressible ML-DSA material,
            // so the achieved ratio collapses toward 1.0.
            assert!(
                ratios(&pq) > ratios(&classical) + 0.15,
                "{era}: {} vs {}",
                ratios(&pq),
                ratios(&classical)
            );
            // And their compressed sizes routinely stay over the 3x budget
            // the classical study squeezes under.
            let limit = 3 * 1357;
            let over = pq.iter().filter(|r| r.compressed > limit).count();
            assert!(
                over * 2 > pq.len(),
                "{era}: only {over}/{} over the limit",
                pq.len()
            );
        }
    }

    #[test]
    fn synthetic_study_keeps_most_chains_under_the_limit() {
        let world = world();
        let results = synthetic_study(&world, Algorithm::Brotli, 7);
        assert!(results.len() > 100);
        let limit = 3 * 1357;
        let under = results.iter().filter(|r| r.compressed <= limit).count();
        let share = under as f64 / results.len() as f64;
        // §4.2: compression keeps ~99% of chains under the limit.
        assert!(share > 0.95, "under-limit share {share}");
        let ratios: Vec<f64> = results.iter().map(|r| r.ratio()).collect();
        let median = quicert_analysis::median(&ratios);
        assert!((0.3..0.85).contains(&median), "median ratio {median}");
    }
}
