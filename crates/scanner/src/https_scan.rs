//! HTTPS certificate collection (§3.1): resolve, connect, follow
//! redirects, collect and summarise TLS chains.

use quicert_analysis::{HistogramSketch, Merge, StreamSummary};
use quicert_pki::{ChainId, DnsOutcome, DomainRecord, World};
use quicert_x509::{CertificateChain, FieldSizes, KeyAlgorithm};

/// Size/shape summary of one served certificate chain. Keeping summaries
/// instead of DER keeps million-domain scans in memory.
#[derive(Debug, Clone)]
pub struct ChainSummary {
    /// Which catalogued parent chain was served.
    pub chain_id: ChainId,
    /// Number of certificates.
    pub depth: usize,
    /// Total DER bytes of the chain.
    pub total_der: usize,
    /// DER bytes of the non-leaf part.
    pub parent_der: usize,
    /// DER bytes of the leaf.
    pub leaf_der: usize,
    /// Bytes of the leaf's subjectAltName extension (Fig 14).
    pub leaf_san_bytes: usize,
    /// Number of SAN entries on the leaf.
    pub leaf_san_count: usize,
    /// Field sizes per certificate, leaf first (Fig 2b / Fig 8).
    pub cert_fields: Vec<FieldSizes>,
    /// Key algorithm per certificate, leaf first (Table 2).
    pub cert_keys: Vec<KeyAlgorithm>,
    /// Whether each certificate is issued by the next (Fig 7 filters on
    /// this).
    pub correctly_ordered: bool,
    /// Whether a self-signed trust anchor is superfluously included (§4.2).
    pub includes_root: bool,
}

impl ChainSummary {
    /// Summarise a materialised chain.
    pub fn of(chain: &CertificateChain, chain_id: ChainId) -> ChainSummary {
        ChainSummary {
            chain_id,
            depth: chain.depth(),
            total_der: chain.total_der_len(),
            parent_der: chain.parent_der_len(),
            leaf_der: chain.leaf.der_len(),
            leaf_san_bytes: chain.leaf.san_bytes(),
            leaf_san_count: chain.leaf.san_count(),
            cert_fields: chain.certs().map(|c| c.field_sizes()).collect(),
            cert_keys: chain.certs().map(|c| c.tbs.spki.algorithm).collect(),
            correctly_ordered: chain.correctly_ordered(),
            includes_root: chain.includes_trust_anchor(),
        }
    }
}

/// One TLS-reachable domain.
#[derive(Debug, Clone)]
pub struct HttpsObservation {
    /// Tranco-style rank.
    pub rank: usize,
    /// Whether the domain also runs QUIC (set by the QUIC scan pass).
    pub is_quic: bool,
    /// Redirect hops followed before the certificate was collected.
    pub redirect_hops: u8,
    /// The collected chain.
    pub summary: ChainSummary,
}

/// Result of the full HTTPS scan.
#[derive(Debug, Clone, Default)]
pub struct HttpsScanReport {
    /// Names attempted.
    pub total: usize,
    /// Names that resolved (got any DNS answer).
    pub resolved: usize,
    /// SERVFAIL count.
    pub servfail: usize,
    /// NXDOMAIN count.
    pub nxdomain: usize,
    /// Timeout/REFUSED count.
    pub timeout_refused: usize,
    /// Names with an A record.
    pub a_records: usize,
    /// Names along redirect paths (≥ number of TLS domains).
    pub names_seen: usize,
    /// Per-domain observations for every TLS-reachable name.
    pub observations: Vec<HttpsObservation>,
}

impl HttpsScanReport {
    /// Observations for QUIC services only.
    pub fn quic(&self) -> impl Iterator<Item = &HttpsObservation> {
        self.observations.iter().filter(|o| o.is_quic)
    }

    /// Observations for HTTPS-only services.
    pub fn https_only(&self) -> impl Iterator<Item = &HttpsObservation> {
        self.observations.iter().filter(|o| !o.is_quic)
    }
}

/// Run the HTTPS certificate scan over the whole world.
pub fn scan(world: &World) -> HttpsScanReport {
    collate(world, world.domains().iter().map(|r| observe(world, r)))
}

/// Probe an explicit shard of domains.
///
/// Shard-aware entry point: observations only depend on the record itself,
/// so shards can run on separate workers and be concatenated in order
/// before [`collate`] folds them into a report identical to a serial
/// [`scan`].
pub fn observe_records(world: &World, records: &[&DomainRecord]) -> Vec<Option<HttpsObservation>> {
    records
        .iter()
        .map(|record| observe(world, record))
        .collect()
}

/// Fold per-domain observations (one entry per world domain, in rank order)
/// into the funnel report. The DNS funnel counters come straight from the
/// world records; the observations carry the chain summaries.
pub fn collate(
    world: &World,
    observations: impl IntoIterator<Item = Option<HttpsObservation>>,
) -> HttpsScanReport {
    let mut report = HttpsScanReport {
        total: world.domains().len(),
        ..HttpsScanReport::default()
    };
    for record in world.domains() {
        match record.dns {
            DnsOutcome::ServFail => report.servfail += 1,
            DnsOutcome::NxDomain => report.nxdomain += 1,
            DnsOutcome::Timeout | DnsOutcome::Refused => report.timeout_refused += 1,
            _ => report.resolved += 1,
        }
        if record.dns.address().is_some() {
            report.a_records += 1;
        }
    }
    for obs in observations.into_iter().flatten() {
        report.names_seen += 1 + obs.redirect_hops as usize;
        report.observations.push(obs);
    }
    report
}

// -------------------------------------------------------- streaming fold --

/// Bucket layout for the chain-size sketches: 64-byte buckets over
/// `[0, 32 KiB)`, comfortably covering every classical chain the ecosystem
/// issues (larger chains land in the overflow bucket and report exact
/// min/max). 64 bytes is the quantile error bound.
pub fn chain_size_sketch() -> HistogramSketch {
    HistogramSketch::new(0.0, 32_768.0, 512)
}

/// The mergeable summary one population chunk folds into on the streaming
/// HTTPS path: the §3.1 funnel counters plus bounded-memory chain-size
/// statistics. Replaces the per-domain observation list at scale — a
/// million-domain scan holds one of these per worker instead of ~800k
/// [`HttpsObservation`]s.
///
/// All counters are integers and the sketches bucket integer byte counts,
/// so [`Merge`] is exactly associative/commutative and the streamed
/// summary is bit-for-bit the one derived from a materialized report (see
/// [`HttpsScanShard::from_report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HttpsScanShard {
    /// Names attempted.
    pub total: u64,
    /// Names that resolved (got any DNS answer).
    pub resolved: u64,
    /// SERVFAIL count.
    pub servfail: u64,
    /// NXDOMAIN count.
    pub nxdomain: u64,
    /// Timeout/REFUSED count.
    pub timeout_refused: u64,
    /// Names with an A record.
    pub a_records: u64,
    /// Names along redirect paths.
    pub names_seen: u64,
    /// TLS-reachable domains (certificate collected).
    pub tls_reachable: u64,
    /// Domains that also run QUIC.
    pub quic_services: u64,
    /// Total chain DER bytes, all TLS-reachable domains (Fig 2b/6 at
    /// scale).
    pub chain_der: HistogramSketch,
    /// Total chain DER bytes, QUIC services only (the small-chain half of
    /// Fig 6).
    pub quic_chain_der: HistogramSketch,
    /// Chain depth (certificates per chain).
    pub chain_depth: StreamSummary,
}

impl HttpsScanShard {
    /// Fold one domain's funnel contribution and (when TLS-reachable) its
    /// chain summary in.
    pub fn push(&mut self, record: &DomainRecord, observation: Option<&HttpsObservation>) {
        self.total += 1;
        match record.dns {
            DnsOutcome::ServFail => self.servfail += 1,
            DnsOutcome::NxDomain => self.nxdomain += 1,
            DnsOutcome::Timeout | DnsOutcome::Refused => self.timeout_refused += 1,
            _ => self.resolved += 1,
        }
        if record.dns.address().is_some() {
            self.a_records += 1;
        }
        if let Some(obs) = observation {
            self.names_seen += 1 + obs.redirect_hops as u64;
            self.fold_observation(obs);
        }
    }

    /// Fold one TLS-reachable observation's chain statistics in — the
    /// single accumulation path shared by [`HttpsScanShard::push`] and
    /// [`HttpsScanShard::from_report`], so the streamed summary and the
    /// materialized reference can never learn different metrics.
    fn fold_observation(&mut self, obs: &HttpsObservation) {
        self.tls_reachable += 1;
        let der = obs.summary.total_der as f64;
        self.chain_der.push(der);
        if obs.is_quic {
            self.quic_services += 1;
            self.quic_chain_der.push(der);
        }
        self.chain_depth.push(obs.summary.depth as f64);
    }

    /// Derive the summary from a materialized [`HttpsScanReport`] — the
    /// reference the streaming path must match bit-for-bit.
    pub fn from_report(report: &HttpsScanReport) -> HttpsScanShard {
        let mut shard = HttpsScanShard::seeded();
        shard.total = report.total as u64;
        shard.resolved = report.resolved as u64;
        shard.servfail = report.servfail as u64;
        shard.nxdomain = report.nxdomain as u64;
        shard.timeout_refused = report.timeout_refused as u64;
        shard.a_records = report.a_records as u64;
        shard.names_seen = report.names_seen as u64;
        for obs in &report.observations {
            shard.fold_observation(obs);
        }
        shard
    }

    /// An empty shard with the canonical sketch layout (unlike
    /// [`Merge::identity`], whose sketches are layout-free).
    pub fn seeded() -> HttpsScanShard {
        HttpsScanShard {
            chain_der: chain_size_sketch(),
            quic_chain_der: chain_size_sketch(),
            ..HttpsScanShard::identity()
        }
    }
}

impl Merge for HttpsScanShard {
    fn identity() -> Self {
        HttpsScanShard {
            total: 0,
            resolved: 0,
            servfail: 0,
            nxdomain: 0,
            timeout_refused: 0,
            a_records: 0,
            names_seen: 0,
            tls_reachable: 0,
            quic_services: 0,
            chain_der: HistogramSketch::identity(),
            quic_chain_der: HistogramSketch::identity(),
            chain_depth: StreamSummary::identity(),
        }
    }

    fn merge(&mut self, other: &Self) {
        self.total += other.total;
        self.resolved += other.resolved;
        self.servfail += other.servfail;
        self.nxdomain += other.nxdomain;
        self.timeout_refused += other.timeout_refused;
        self.a_records += other.a_records;
        self.names_seen += other.names_seen;
        self.tls_reachable += other.tls_reachable;
        self.quic_services += other.quic_services;
        self.chain_der.merge(&other.chain_der);
        self.quic_chain_der.merge(&other.quic_chain_der);
        self.chain_depth.merge(&other.chain_depth);
    }
}

/// Fold one population chunk into an [`HttpsScanShard`] without retaining
/// observations beyond the chunk. Observation goes through the same
/// [`observe`] helper the materialized path uses, so the streamed funnel
/// and chain statistics can never diverge from a serial [`scan`].
pub fn fold_records(world: &World, records: &[&DomainRecord]) -> HttpsScanShard {
    fold_iter(world, records.iter().copied())
}

/// [`fold_records`] over any record iterator — the streaming pump hands
/// workers owned chunks, so this saves building a `Vec<&DomainRecord>`
/// per chunk on the hot path.
pub fn fold_iter<'a>(
    world: &World,
    records: impl IntoIterator<Item = &'a DomainRecord>,
) -> HttpsScanShard {
    let mut shard = HttpsScanShard::seeded();
    for record in records {
        shard.push(record, observe(world, record).as_ref());
    }
    shard
}

/// Collect the certificate chain of one domain, if it is TLS-reachable.
pub fn observe(world: &World, record: &DomainRecord) -> Option<HttpsObservation> {
    if !record.has_https() {
        return None;
    }
    let https = record.https.as_ref()?;
    let chain = world.https_chain(record)?;
    Some(HttpsObservation {
        rank: record.rank,
        is_quic: record.has_quic(),
        redirect_hops: https.redirect_hops,
        summary: ChainSummary::of(&chain, https.chain_id),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn report() -> HttpsScanReport {
        let world = quicert_pki::World::generate(WorldConfig {
            domains: 5_000,
            seed: 21,
            ..WorldConfig::default()
        });
        scan(&world)
    }

    #[test]
    fn funnel_counts_are_consistent() {
        let r = report();
        assert_eq!(r.total, 5_000);
        assert_eq!(
            r.total,
            r.resolved + r.servfail + r.nxdomain + r.timeout_refused
        );
        assert!(r.a_records <= r.resolved);
        assert!(r.observations.len() <= r.a_records);
        assert!(r.names_seen >= r.observations.len());
    }

    #[test]
    fn rates_follow_the_paper_funnel() {
        let r = report();
        let resolved_rate = r.resolved as f64 / r.total as f64;
        assert!((resolved_rate - 0.976).abs() < 0.01, "{resolved_rate}");
        // ~80% of domains end up TLS-reachable (Fig 12).
        let tls_rate = r.observations.len() as f64 / r.total as f64;
        assert!((tls_rate - 0.80).abs() < 0.03, "{tls_rate}");
    }

    #[test]
    fn quic_chains_are_smaller_in_the_median() {
        // Fig 6: QUIC domains use smaller certificates (median 2329 vs 4022
        // in the paper).
        let r = report();
        let median = |xs: Vec<f64>| quicert_analysis::median(&xs);
        let quic_median = median(r.quic().map(|o| o.summary.total_der as f64).collect());
        let https_median = median(r.https_only().map(|o| o.summary.total_der as f64).collect());
        assert!(
            quic_median + 500.0 < https_median,
            "quic {quic_median} vs https-only {https_median}"
        );
        assert!(
            (1800.0..3000.0).contains(&quic_median),
            "quic median {quic_median}"
        );
        assert!(
            (3200.0..5200.0).contains(&https_median),
            "https median {https_median}"
        );
    }

    #[test]
    fn summaries_account_every_byte() {
        let r = report();
        for obs in r.observations.iter().take(50) {
            let s = &obs.summary;
            assert_eq!(s.total_der, s.parent_der + s.leaf_der);
            let field_total: usize = s.cert_fields.iter().map(|f| f.total()).sum();
            assert_eq!(field_total, s.total_der);
            assert_eq!(s.cert_keys.len(), s.depth);
            assert!(s.correctly_ordered);
        }
    }
}
