//! HTTPS certificate collection (§3.1): resolve, connect, follow
//! redirects, collect and summarise TLS chains.

use quicert_pki::{ChainId, DnsOutcome, DomainRecord, World};
use quicert_x509::{CertificateChain, FieldSizes, KeyAlgorithm};

/// Size/shape summary of one served certificate chain. Keeping summaries
/// instead of DER keeps million-domain scans in memory.
#[derive(Debug, Clone)]
pub struct ChainSummary {
    /// Which catalogued parent chain was served.
    pub chain_id: ChainId,
    /// Number of certificates.
    pub depth: usize,
    /// Total DER bytes of the chain.
    pub total_der: usize,
    /// DER bytes of the non-leaf part.
    pub parent_der: usize,
    /// DER bytes of the leaf.
    pub leaf_der: usize,
    /// Bytes of the leaf's subjectAltName extension (Fig 14).
    pub leaf_san_bytes: usize,
    /// Number of SAN entries on the leaf.
    pub leaf_san_count: usize,
    /// Field sizes per certificate, leaf first (Fig 2b / Fig 8).
    pub cert_fields: Vec<FieldSizes>,
    /// Key algorithm per certificate, leaf first (Table 2).
    pub cert_keys: Vec<KeyAlgorithm>,
    /// Whether each certificate is issued by the next (Fig 7 filters on
    /// this).
    pub correctly_ordered: bool,
    /// Whether a self-signed trust anchor is superfluously included (§4.2).
    pub includes_root: bool,
}

impl ChainSummary {
    /// Summarise a materialised chain.
    pub fn of(chain: &CertificateChain, chain_id: ChainId) -> ChainSummary {
        ChainSummary {
            chain_id,
            depth: chain.depth(),
            total_der: chain.total_der_len(),
            parent_der: chain.parent_der_len(),
            leaf_der: chain.leaf.der_len(),
            leaf_san_bytes: chain.leaf.san_bytes(),
            leaf_san_count: chain.leaf.san_count(),
            cert_fields: chain.certs().map(|c| c.field_sizes()).collect(),
            cert_keys: chain.certs().map(|c| c.tbs.spki.algorithm).collect(),
            correctly_ordered: chain.correctly_ordered(),
            includes_root: chain.includes_trust_anchor(),
        }
    }
}

/// One TLS-reachable domain.
#[derive(Debug, Clone)]
pub struct HttpsObservation {
    /// Tranco-style rank.
    pub rank: usize,
    /// Whether the domain also runs QUIC (set by the QUIC scan pass).
    pub is_quic: bool,
    /// Redirect hops followed before the certificate was collected.
    pub redirect_hops: u8,
    /// The collected chain.
    pub summary: ChainSummary,
}

/// Result of the full HTTPS scan.
#[derive(Debug, Clone, Default)]
pub struct HttpsScanReport {
    /// Names attempted.
    pub total: usize,
    /// Names that resolved (got any DNS answer).
    pub resolved: usize,
    /// SERVFAIL count.
    pub servfail: usize,
    /// NXDOMAIN count.
    pub nxdomain: usize,
    /// Timeout/REFUSED count.
    pub timeout_refused: usize,
    /// Names with an A record.
    pub a_records: usize,
    /// Names along redirect paths (≥ number of TLS domains).
    pub names_seen: usize,
    /// Per-domain observations for every TLS-reachable name.
    pub observations: Vec<HttpsObservation>,
}

impl HttpsScanReport {
    /// Observations for QUIC services only.
    pub fn quic(&self) -> impl Iterator<Item = &HttpsObservation> {
        self.observations.iter().filter(|o| o.is_quic)
    }

    /// Observations for HTTPS-only services.
    pub fn https_only(&self) -> impl Iterator<Item = &HttpsObservation> {
        self.observations.iter().filter(|o| !o.is_quic)
    }
}

/// Run the HTTPS certificate scan over the whole world.
pub fn scan(world: &World) -> HttpsScanReport {
    collate(world, world.domains().iter().map(|r| observe(world, r)))
}

/// Probe an explicit shard of domains.
///
/// Shard-aware entry point: observations only depend on the record itself,
/// so shards can run on separate workers and be concatenated in order
/// before [`collate`] folds them into a report identical to a serial
/// [`scan`].
pub fn observe_records(world: &World, records: &[&DomainRecord]) -> Vec<Option<HttpsObservation>> {
    records
        .iter()
        .map(|record| observe(world, record))
        .collect()
}

/// Fold per-domain observations (one entry per world domain, in rank order)
/// into the funnel report. The DNS funnel counters come straight from the
/// world records; the observations carry the chain summaries.
pub fn collate(
    world: &World,
    observations: impl IntoIterator<Item = Option<HttpsObservation>>,
) -> HttpsScanReport {
    let mut report = HttpsScanReport {
        total: world.domains().len(),
        ..HttpsScanReport::default()
    };
    for record in world.domains() {
        match record.dns {
            DnsOutcome::ServFail => report.servfail += 1,
            DnsOutcome::NxDomain => report.nxdomain += 1,
            DnsOutcome::Timeout | DnsOutcome::Refused => report.timeout_refused += 1,
            _ => report.resolved += 1,
        }
        if record.dns.address().is_some() {
            report.a_records += 1;
        }
    }
    for obs in observations.into_iter().flatten() {
        report.names_seen += 1 + obs.redirect_hops as usize;
        report.observations.push(obs);
    }
    report
}

/// Collect the certificate chain of one domain, if it is TLS-reachable.
pub fn observe(world: &World, record: &DomainRecord) -> Option<HttpsObservation> {
    if !record.has_https() {
        return None;
    }
    let https = record.https.as_ref()?;
    let chain = world.https_chain(record)?;
    Some(HttpsObservation {
        rank: record.rank,
        is_quic: record.has_quic(),
        redirect_hops: https.redirect_hops,
        summary: ChainSummary::of(&chain, https.chain_id),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn report() -> HttpsScanReport {
        let world = quicert_pki::World::generate(WorldConfig {
            domains: 5_000,
            seed: 21,
            ..WorldConfig::default()
        });
        scan(&world)
    }

    #[test]
    fn funnel_counts_are_consistent() {
        let r = report();
        assert_eq!(r.total, 5_000);
        assert_eq!(
            r.total,
            r.resolved + r.servfail + r.nxdomain + r.timeout_refused
        );
        assert!(r.a_records <= r.resolved);
        assert!(r.observations.len() <= r.a_records);
        assert!(r.names_seen >= r.observations.len());
    }

    #[test]
    fn rates_follow_the_paper_funnel() {
        let r = report();
        let resolved_rate = r.resolved as f64 / r.total as f64;
        assert!((resolved_rate - 0.976).abs() < 0.01, "{resolved_rate}");
        // ~80% of domains end up TLS-reachable (Fig 12).
        let tls_rate = r.observations.len() as f64 / r.total as f64;
        assert!((tls_rate - 0.80).abs() < 0.03, "{tls_rate}");
    }

    #[test]
    fn quic_chains_are_smaller_in_the_median() {
        // Fig 6: QUIC domains use smaller certificates (median 2329 vs 4022
        // in the paper).
        let r = report();
        let median = |xs: Vec<f64>| quicert_analysis::median(&xs);
        let quic_median = median(r.quic().map(|o| o.summary.total_der as f64).collect());
        let https_median = median(r.https_only().map(|o| o.summary.total_der as f64).collect());
        assert!(
            quic_median + 500.0 < https_median,
            "quic {quic_median} vs https-only {https_median}"
        );
        assert!(
            (1800.0..3000.0).contains(&quic_median),
            "quic median {quic_median}"
        );
        assert!(
            (3200.0..5200.0).contains(&https_median),
            "https median {https_median}"
        );
    }

    #[test]
    fn summaries_account_every_byte() {
        let r = report();
        for obs in r.observations.iter().take(50) {
            let s = &obs.summary;
            assert_eq!(s.total_der, s.parent_der + s.leaf_der);
            let field_total: usize = s.cert_fields.iter().map(|f| f.total()).sum();
            assert_eq!(field_total, s.total_der);
            assert_eq!(s.cert_keys.len(), s.depth);
            assert!(s.correctly_ordered);
        }
    }
}
