//! # quicert-scanner — the measurement toolchain of §3 (Fig 10)
//!
//! Rust counterparts of the tools the paper wires together:
//!
//! | paper tool | here |
//! |---|---|
//! | dig/nc/libcurl HTTPS walk | [`https_scan`] |
//! | microsoft/quicreach (+Retry ext.) | [`quicreach`] |
//! | tumi8/QScanner | [`qscanner`] |
//! | quiche + compression fork | [`compression`] |
//! | UCSD telescope analysis | [`telescope_scan`] |
//! | ZMap adversary imitation | [`zmap`] |
//!
//! All scanners consume a `quicert_pki::World` and run real simulated
//! handshakes through `quicert-quic`; nothing here is tabulated.

pub mod behavior;
pub mod compression;
pub mod https_scan;
pub mod qscanner;
pub mod quicreach;
pub mod telescope_scan;
pub mod zmap;

pub use behavior::{server_config_for, server_config_for_era, wire_for};
pub use compression::CompressionShard;
pub use https_scan::{ChainSummary, HttpsObservation, HttpsScanReport, HttpsScanShard};
pub use quicreach::{ProbeMetrics, QuicReachResult, QuicReachShard, ScanSummary, WarmScanResult};
