//! Certificate collection over QUIC (QScanner, §3.2) and the
//! QUIC-vs-HTTPS consistency check.

use quicert_pki::{DomainRecord, World};

use crate::https_scan::ChainSummary;

/// Per-service result of the QUIC certificate fetch.
#[derive(Debug, Clone)]
pub struct QuicCertObservation {
    /// Service rank.
    pub rank: usize,
    /// The chain served over QUIC.
    pub summary: ChainSummary,
    /// Whether it matches the chain seen over HTTPS.
    pub matches_https: bool,
    /// Why it differs, when it does.
    pub difference: Option<CertDifference>,
}

/// Why a QUIC chain differed from the HTTPS chain (§3.2: 2.83% rotations,
/// 0.47% other).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertDifference {
    /// Rotated between the two scans.
    Rotation,
    /// Genuinely different deployment.
    Other,
}

/// Consistency summary across all QUIC services.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConsistencyReport {
    /// Services compared.
    pub total: usize,
    /// Identical chains.
    pub same: usize,
    /// Differences attributed to rotation.
    pub rotated: usize,
    /// Differences with other causes.
    pub other: usize,
}

impl ConsistencyReport {
    /// Fraction of services with identical chains (the paper's 96.7%).
    pub fn same_rate(&self) -> f64 {
        self.same as f64 / self.total.max(1) as f64
    }
}

/// Fetch the certificate chain of one QUIC service.
pub fn fetch(world: &World, record: &DomainRecord) -> Option<QuicCertObservation> {
    let quic = record.quic.as_ref()?;
    let chain = world.quic_chain(record)?;
    let https_chain = world.https_chain(record)?;
    let matches_https = chain.leaf.der() == https_chain.leaf.der();
    // A small residue differs for reasons other than rotation (0.47% in the
    // paper); we derive it deterministically from the domain seed.
    let other_diff = !quic.rotated_cert && record.seed % 10_000 < 47;
    let difference = if quic.rotated_cert {
        Some(CertDifference::Rotation)
    } else if other_diff {
        Some(CertDifference::Other)
    } else {
        None
    };
    Some(QuicCertObservation {
        rank: record.rank,
        summary: ChainSummary::of(&chain, quic.chain_id),
        matches_https: matches_https && difference.is_none(),
        difference,
    })
}

/// Fetch all QUIC chains and compute the consistency report.
pub fn scan(world: &World) -> (Vec<QuicCertObservation>, ConsistencyReport) {
    let records: Vec<&DomainRecord> = world.quic_services().collect();
    collate(fetch_records(world, &records))
}

/// Fetch the chains of an explicit shard of services.
///
/// Shard-aware entry point: each fetch only depends on the record itself,
/// so shards concatenated in service order reproduce a serial [`scan`]
/// bit-for-bit once [`collate`] folds them.
pub fn fetch_records(world: &World, records: &[&DomainRecord]) -> Vec<QuicCertObservation> {
    records
        .iter()
        .filter_map(|record| fetch(world, record))
        .collect()
}

/// Fold per-service observations into the §3.2 consistency report.
pub fn collate(
    observations: Vec<QuicCertObservation>,
) -> (Vec<QuicCertObservation>, ConsistencyReport) {
    let mut report = ConsistencyReport::default();
    for obs in &observations {
        report.total += 1;
        match obs.difference {
            None => report.same += 1,
            Some(CertDifference::Rotation) => report.rotated += 1,
            Some(CertDifference::Other) => report.other += 1,
        }
    }
    (observations, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    #[test]
    fn consistency_matches_section_3_2() {
        let world = quicert_pki::World::generate(WorldConfig {
            domains: 20_000,
            seed: 55,
            ..WorldConfig::default()
        });
        let (observations, report) = scan(&world);
        assert_eq!(report.total, observations.len());
        assert_eq!(report.total, report.same + report.rotated + report.other);
        // Paper: 96.7% identical, ~2.8% rotation, ~0.5% other.
        assert!(
            (report.same_rate() - 0.967).abs() < 0.015,
            "{}",
            report.same_rate()
        );
        let rot_rate = report.rotated as f64 / report.total as f64;
        assert!((rot_rate - 0.028).abs() < 0.01, "{rot_rate}");
        let other_rate = report.other as f64 / report.total as f64;
        assert!(other_rate < 0.012, "{other_rate}");
    }

    #[test]
    fn rotated_chains_really_differ() {
        let world = quicert_pki::World::generate(WorldConfig {
            domains: 20_000,
            seed: 56,
            ..WorldConfig::default()
        });
        let (observations, _) = scan(&world);
        for obs in &observations {
            if obs.difference == Some(CertDifference::Rotation) {
                assert!(!obs.matches_https);
            }
        }
        assert!(observations.iter().any(|o| o.matches_https));
    }
}
