//! QUIC handshake classification (quicreach with Retry support, §3.2).

use quicert_netsim::UDP_IPV4_OVERHEAD;
use quicert_pki::{DomainRecord, World};
use quicert_quic::handshake::HandshakeClass;
use quicert_quic::{run_handshake, ClientConfig};

use crate::behavior::{server_config_for, wire_for};

/// The Initial sizes the paper sweeps: 1200 to 1472 bytes in steps of 10
/// (the upper bound is dictated by a 1500-byte MTU).
pub fn sweep_sizes() -> Vec<usize> {
    let mut sizes: Vec<usize> = (1200..=1472).step_by(10).collect();
    if *sizes.last().unwrap() != 1472 {
        sizes.push(1472);
    }
    sizes
}

/// Classification result for one service at one Initial size.
#[derive(Debug, Clone, PartialEq)]
pub struct QuicReachResult {
    /// Service rank.
    pub rank: usize,
    /// Handshake class.
    pub class: HandshakeClass,
    /// Amplification factor during the first RTT.
    pub amplification: f64,
    /// Total server wire bytes.
    pub wire_received: usize,
    /// TLS payload bytes received (CRYPTO data).
    pub tls_received: usize,
    /// QUIC padding bytes received.
    pub padding_received: usize,
    /// Round trips to completion (0 when unreachable).
    pub rtt_count: u32,
}

/// Aggregated class counts at one Initial size (one bar of Fig 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Client Initial size.
    pub initial_size: usize,
    /// 1-RTT handshakes.
    pub one_rtt: usize,
    /// Retry handshakes.
    pub retry: usize,
    /// Multi-RTT handshakes.
    pub multi_rtt: usize,
    /// Amplifying handshakes.
    pub amplification: usize,
    /// Unreachable services.
    pub unreachable: usize,
}

impl ScanSummary {
    /// Reachable services (the height of a Fig 3 bar).
    pub fn reachable(&self) -> usize {
        self.one_rtt + self.retry + self.multi_rtt + self.amplification
    }

    /// Add one classified result.
    pub fn add(&mut self, class: HandshakeClass) {
        match class {
            HandshakeClass::OneRtt => self.one_rtt += 1,
            HandshakeClass::Retry => self.retry += 1,
            HandshakeClass::MultiRtt => self.multi_rtt += 1,
            HandshakeClass::Amplification => self.amplification += 1,
            HandshakeClass::Unreachable => self.unreachable += 1,
        }
    }

    /// Share of a class among reachable services, in percent.
    pub fn share(&self, class: HandshakeClass) -> f64 {
        let n = self.reachable().max(1) as f64;
        let count = match class {
            HandshakeClass::OneRtt => self.one_rtt,
            HandshakeClass::Retry => self.retry,
            HandshakeClass::MultiRtt => self.multi_rtt,
            HandshakeClass::Amplification => self.amplification,
            HandshakeClass::Unreachable => self.unreachable,
        };
        count as f64 / n * 100.0
    }
}

/// Probe one service at one Initial size.
pub fn scan_service(world: &World, record: &DomainRecord, initial_size: usize) -> QuicReachResult {
    let chain = world.quic_chain(record).expect("QUIC services have chains");
    let server = server_config_for(world, record, chain);
    let mut wire = wire_for(record);
    // quicreach's stack offers no certificate compression (§3.2).
    let client = ClientConfig::scanner(
        initial_size,
        quicert_pki::World::server_addr(record),
        record.seed ^ initial_size as u64,
    );
    let out = run_handshake(client, server, &mut wire, record.seed);
    QuicReachResult {
        rank: record.rank,
        class: out.classify(),
        amplification: out.amplification_first_flight(),
        wire_received: out.total_server_wire,
        tls_received: out.server_stats.tls_sent,
        padding_received: out.server_stats.padding_sent,
        rtt_count: out.rtt_count,
    }
}

/// Probe every QUIC service at one Initial size.
pub fn scan(world: &World, initial_size: usize) -> Vec<QuicReachResult> {
    let records: Vec<&DomainRecord> = world.quic_services().collect();
    scan_records(world, &records, initial_size)
}

/// Probe an explicit shard of services at one Initial size.
///
/// This is the shard-aware entry point: every probe derives its randomness
/// from the record's own forked seed, so splitting the service list into
/// shards, probing them on separate workers and concatenating the shard
/// outputs in order is bit-for-bit identical to a serial [`scan`].
pub fn scan_records(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
) -> Vec<QuicReachResult> {
    records
        .iter()
        .map(|record| scan_service(world, record, initial_size))
        .collect()
}

/// Aggregate results into a Fig 3 bar.
pub fn summarize(initial_size: usize, results: &[QuicReachResult]) -> ScanSummary {
    let mut summary = ScanSummary {
        initial_size,
        ..ScanSummary::default()
    };
    for r in results {
        summary.add(r.class);
    }
    summary
}

/// The largest Initial a 1500-byte MTU admits (sanity bound used in tests).
pub fn mtu_bound() -> usize {
    1500 - UDP_IPV4_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn world() -> quicert_pki::World {
        quicert_pki::World::generate(WorldConfig {
            domains: 3_000,
            seed: 33,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn sweep_sizes_match_the_paper() {
        let sizes = sweep_sizes();
        assert_eq!(sizes[0], 1200);
        assert_eq!(*sizes.last().unwrap(), 1472);
        assert_eq!(sizes.len(), 29);
        assert_eq!(mtu_bound(), 1472);
    }

    #[test]
    fn classification_shares_match_fig3_at_default_initial() {
        let world = world();
        let results = scan(&world, 1362);
        let summary = summarize(1362, &results);
        let ampl = summary.share(quicert_quic::handshake::HandshakeClass::Amplification);
        let multi = summary.share(quicert_quic::handshake::HandshakeClass::MultiRtt);
        let one = summary.share(quicert_quic::handshake::HandshakeClass::OneRtt);
        // Paper: 61% / 38% / 0.75% (±tolerance for a 3k-domain world).
        assert!((ampl - 61.0).abs() < 8.0, "amplification {ampl}");
        assert!((multi - 38.0).abs() < 8.0, "multi-rtt {multi}");
        assert!(one < 4.0, "one-rtt {one}");
    }

    #[test]
    fn larger_initials_shift_multi_rtt_to_one_rtt() {
        let world = world();
        let small = summarize(1200, &scan(&world, 1200));
        let large = summarize(1472, &scan(&world, 1472));
        assert!(large.one_rtt >= small.one_rtt);
        assert!(large.multi_rtt <= small.multi_rtt);
    }

    #[test]
    fn reachability_drops_for_large_initials() {
        let world = world();
        let small = summarize(1200, &scan(&world, 1200));
        let large = summarize(1472, &scan(&world, 1472));
        assert!(
            large.reachable() < small.reachable(),
            "LB-tunnelled services must vanish at 1472 ({} vs {})",
            large.reachable(),
            small.reachable()
        );
    }

    #[test]
    fn amplifying_handshakes_have_modest_factors() {
        // Fig 4: amplification factors for complete handshakes stay < 6x.
        let world = world();
        for r in scan(&world, 1362) {
            if r.class == quicert_quic::handshake::HandshakeClass::Amplification {
                assert!(r.amplification > 3.0);
                assert!(r.amplification < 6.5, "factor {}", r.amplification);
            }
        }
    }
}
