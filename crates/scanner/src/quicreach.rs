//! QUIC handshake classification (quicreach with Retry support, §3.2).
//!
//! Since the `SimNet` refactor a whole shard of probes is batched as
//! sessions of one discrete-event network ([`scan_records`]), amortising
//! the per-probe heap and buffer churn of the old one-exchange-at-a-time
//! loop; [`scan_records_per_probe`] keeps that loop alive as the reference
//! path for equivalence tests and the throughput benchmark. Every entry
//! point also exists in a `NetworkProfile`-aware form, scanning the same
//! population under lossy / long-fat / tunneled path overlays.
//!
//! All three probe families — batched, per-probe, and the warm
//! ([`warm_scan_records`]) resumption path — share one probe-construction
//! helper (`probes_for`) and one collation helper (`collate`), so the
//! probe parameters and the outcome→result mapping can never diverge
//! between entry points.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use quicert_analysis::{Merge, StreamSummary};
use quicert_netsim::{FaultPlan, NetworkProfile, UDP_IPV4_OVERHEAD};
use quicert_obs::{Counter, Histogram, MetricsRegistry, Phase};
use quicert_pki::{CertificateEra, DomainRecord, World};
use quicert_quic::handshake::{
    HandshakeClass, HandshakeOutcome, HandshakeProbe, ResumptionOutcome, ResumptionProbe,
};
use quicert_quic::{
    run_handshake, run_handshake_batch, run_handshake_batch_into, run_resumption_batch,
    ClientConfig,
};
use quicert_session::{ResumptionHost, ResumptionPolicy, TicketConfig, TicketIssuer};

use crate::behavior::{server_config_for_era, wire_for_profile};

/// The Initial sizes the paper sweeps: 1200 to 1472 bytes in steps of 10
/// (the upper bound is dictated by a 1500-byte MTU). Computed once and
/// shared — callers on the hot path (the per-size sweep, bench loops) were
/// previously rebuilding this constant list on every call.
pub fn sweep_sizes() -> &'static [usize] {
    static SIZES: OnceLock<Vec<usize>> = OnceLock::new();
    SIZES.get_or_init(|| {
        let mut sizes: Vec<usize> = (1200..=1472).step_by(10).collect();
        if *sizes.last().unwrap() != 1472 {
            sizes.push(1472);
        }
        sizes
    })
}

/// Classification result for one service at one Initial size.
#[derive(Debug, Clone, PartialEq)]
pub struct QuicReachResult {
    /// Service rank.
    pub rank: usize,
    /// Handshake class.
    pub class: HandshakeClass,
    /// Amplification factor during the first RTT.
    pub amplification: f64,
    /// Total server wire bytes.
    pub wire_received: usize,
    /// TLS payload bytes received (CRYPTO data).
    pub tls_received: usize,
    /// QUIC padding bytes received.
    pub padding_received: usize,
    /// Round trips to completion (0 when unreachable).
    pub rtt_count: u32,
    /// Datagrams the path's fault injectors dropped during the probe
    /// (always 0 on the ideal profile).
    pub fault_drops: u64,
    /// Datagrams the path's fault injectors corrupted during the probe.
    pub fault_corruptions: u64,
    /// Datagrams the path's fault injectors delivered twice.
    pub fault_duplications: u64,
    /// Client Initial transmissions (1 = no PTO retransmission).
    pub client_transmissions: u32,
    /// Server handshake-flight transmissions (1 = no retransmission).
    pub server_transmissions: u32,
    /// Time the server spent blocked on its anti-amplification budget, in
    /// simulated nanoseconds (0 when it never stalled or never resumed).
    pub stall_ns: u64,
}

impl QuicReachResult {
    fn from_outcome(rank: usize, out: &HandshakeOutcome) -> QuicReachResult {
        let stall_ns = match (out.timeline.stall_begin_ns, out.timeline.stall_end_ns) {
            (Some(begin), Some(end)) => end.saturating_sub(begin),
            _ => 0,
        };
        QuicReachResult {
            rank,
            class: out.classify(),
            amplification: out.amplification_first_flight(),
            wire_received: out.total_server_wire,
            tls_received: out.server_stats.tls_sent,
            padding_received: out.server_stats.padding_sent,
            rtt_count: out.rtt_count,
            fault_drops: out.fault_drops,
            fault_corruptions: out.fault_corruptions,
            fault_duplications: out.fault_duplications,
            client_transmissions: out.client_transmissions,
            server_transmissions: out.server_stats.flight_transmissions,
            stall_ns,
        }
    }

    /// Retransmissions this probe needed beyond the fault-free minimum of
    /// one transmission per side — the loss-recovery cost counter.
    pub fn retransmissions(&self) -> u64 {
        self.client_transmissions.saturating_sub(1) as u64
            + self.server_transmissions.saturating_sub(1) as u64
    }
}

/// Aggregated class counts at one Initial size (one bar of Fig 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Client Initial size.
    pub initial_size: usize,
    /// 1-RTT handshakes.
    pub one_rtt: usize,
    /// Retry handshakes.
    pub retry: usize,
    /// Multi-RTT handshakes.
    pub multi_rtt: usize,
    /// Amplifying handshakes.
    pub amplification: usize,
    /// Unreachable services.
    pub unreachable: usize,
}

impl ScanSummary {
    /// Reachable services (the height of a Fig 3 bar).
    pub fn reachable(&self) -> usize {
        self.one_rtt + self.retry + self.multi_rtt + self.amplification
    }

    /// Every probed service: reachable plus unreachable.
    pub fn total(&self) -> usize {
        self.reachable() + self.unreachable
    }

    /// Raw count for one class.
    pub fn count(&self, class: HandshakeClass) -> usize {
        match class {
            HandshakeClass::OneRtt => self.one_rtt,
            HandshakeClass::Retry => self.retry,
            HandshakeClass::MultiRtt => self.multi_rtt,
            HandshakeClass::Amplification => self.amplification,
            HandshakeClass::Unreachable => self.unreachable,
        }
    }

    /// Add one classified result.
    pub fn add(&mut self, class: HandshakeClass) {
        match class {
            HandshakeClass::OneRtt => self.one_rtt += 1,
            HandshakeClass::Retry => self.retry += 1,
            HandshakeClass::MultiRtt => self.multi_rtt += 1,
            HandshakeClass::Amplification => self.amplification += 1,
            HandshakeClass::Unreachable => self.unreachable += 1,
        }
    }

    /// Share of a class among **reachable** services, in percent — the
    /// denominator of the paper's Fig 3 class splits.
    ///
    /// [`HandshakeClass::Unreachable`] is not part of the reachable
    /// population, so its share here is 0 by definition; ask
    /// [`ScanSummary::share_of_all`] for it instead. An empty scan (or one
    /// where nothing was reachable) has no well-defined split and reports
    /// 0% for every class rather than dividing by zero.
    pub fn share_of_reachable(&self, class: HandshakeClass) -> f64 {
        if class == HandshakeClass::Unreachable {
            return 0.0;
        }
        let reachable = self.reachable();
        if reachable == 0 {
            return 0.0;
        }
        self.count(class) as f64 / reachable as f64 * 100.0
    }

    /// Share of a class among **all probed** services (reachable plus
    /// unreachable), in percent — the right denominator for unreachability
    /// rates (§4.1). An empty scan reports 0% for every class.
    pub fn share_of_all(&self, class: HandshakeClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.count(class) as f64 / total as f64 * 100.0
    }
}

impl Merge for ScanSummary {
    /// The identity carries `initial_size` 0 and adopts the other
    /// operand's size on merge; merging bars from different Initial sizes
    /// is a logic error.
    fn identity() -> Self {
        ScanSummary::default()
    }

    fn merge(&mut self, other: &Self) {
        if other.total() == 0 && other.initial_size == 0 {
            return;
        }
        if self.total() == 0 && self.initial_size == 0 {
            *self = *other;
            return;
        }
        assert_eq!(
            self.initial_size, other.initial_size,
            "merging ScanSummary bars from different Initial sizes"
        );
        self.one_rtt += other.one_rtt;
        self.retry += other.retry;
        self.multi_rtt += other.multi_rtt;
        self.amplification += other.amplification;
        self.unreachable += other.unreachable;
    }
}

// -------------------------------------------------------- streaming fold --

/// The mergeable summary one population chunk folds into on the streaming
/// quicreach path: class counts plus bounded-memory statistics over the
/// integer-valued wire metrics. Replaces the per-record
/// `Vec<QuicReachResult>` at scale — a million-record scan holds one of
/// these per worker instead of a million results.
///
/// All accumulated metrics are integer-valued (counts, bytes, round
/// trips), so [`Merge`] is exactly associative and commutative and the
/// streamed summary is bit-for-bit the one derived from a materialized
/// scan (see [`QuicReachShard::from_results`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuicReachShard {
    /// Handshake-class counts (one Fig 3 bar).
    pub classes: ScanSummary,
    /// Total server wire bytes per probed service.
    pub wire_received: StreamSummary,
    /// TLS payload bytes per probed service.
    pub tls_received: StreamSummary,
    /// Round trips per **reachable** service.
    pub rtts: StreamSummary,
    /// Datagrams dropped by the path's fault injectors.
    pub fault_drops: u64,
    /// Datagrams corrupted by the path's fault injectors.
    pub fault_corruptions: u64,
    /// Datagrams delivered twice by the path's fault injectors.
    pub fault_duplications: u64,
    /// Client Initial retransmissions beyond the first transmission,
    /// summed over the shard — half of the loss-recovery cost.
    pub client_retransmissions: u64,
    /// Server handshake-flight retransmissions beyond the first, summed
    /// over the shard — the other half of the loss-recovery cost.
    pub server_retransmissions: u64,
    /// Total simulated nanoseconds probes spent stalled on the server's
    /// anti-amplification budget.
    pub stall_ns_total: u64,
}

impl QuicReachShard {
    /// Fold one classified result in. Private because only
    /// [`QuicReachShard::from_results`] (which stamps the bar's Initial
    /// size first) can produce a shard that merges with engine summaries.
    fn push(&mut self, result: &QuicReachResult) {
        self.classes.add(result.class);
        self.wire_received.push(result.wire_received as f64);
        self.tls_received.push(result.tls_received as f64);
        if result.class != HandshakeClass::Unreachable {
            self.rtts.push(result.rtt_count as f64);
        }
        self.fault_drops += result.fault_drops;
        self.fault_corruptions += result.fault_corruptions;
        self.fault_duplications += result.fault_duplications;
        self.client_retransmissions += result.client_transmissions.saturating_sub(1) as u64;
        self.server_retransmissions += result.server_transmissions.saturating_sub(1) as u64;
        self.stall_ns_total += result.stall_ns;
    }

    /// Total retransmissions (client + server) across the shard.
    pub fn retransmissions(&self) -> u64 {
        self.client_retransmissions + self.server_retransmissions
    }

    /// Derive the summary from materialized per-record results — the
    /// reference the streaming path must match bit-for-bit.
    pub fn from_results(initial_size: usize, results: &[QuicReachResult]) -> QuicReachShard {
        let mut shard = QuicReachShard::identity();
        shard.classes.initial_size = initial_size;
        for result in results {
            shard.push(result);
        }
        shard
    }

    /// Services probed (reachable plus unreachable).
    pub fn total(&self) -> usize {
        self.classes.total()
    }
}

impl Merge for QuicReachShard {
    fn identity() -> Self {
        QuicReachShard {
            classes: ScanSummary::identity(),
            wire_received: StreamSummary::identity(),
            tls_received: StreamSummary::identity(),
            rtts: StreamSummary::identity(),
            fault_drops: 0,
            fault_corruptions: 0,
            fault_duplications: 0,
            client_retransmissions: 0,
            server_retransmissions: 0,
            stall_ns_total: 0,
        }
    }

    fn merge(&mut self, other: &Self) {
        self.classes.merge(&other.classes);
        self.wire_received.merge(&other.wire_received);
        self.tls_received.merge(&other.tls_received);
        self.rtts.merge(&other.rtts);
        self.fault_drops += other.fault_drops;
        self.fault_corruptions += other.fault_corruptions;
        self.fault_duplications += other.fault_duplications;
        self.client_retransmissions += other.client_retransmissions;
        self.server_retransmissions += other.server_retransmissions;
        self.stall_ns_total += other.stall_ns_total;
    }
}

/// Fold one **population** chunk (QUIC and non-QUIC records alike) into a
/// [`QuicReachShard`] without retaining per-record results beyond the
/// chunk.
///
/// The QUIC services of the chunk are probed through the same
/// `probes_for`/`collate` pair every materialized entry point uses —
/// batched as sessions of one `SimNet` — and immediately folded. Because
/// probe outcomes are chunk-size invariant (per-record RNG forking) and
/// the shard summary merges exactly, pumping any chunking of the
/// population through this fold and merging the shards reproduces
/// [`QuicReachShard::from_results`] over a full materialized scan
/// bit-for-bit.
pub fn fold_records(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
) -> QuicReachShard {
    let services: Vec<&DomainRecord> = records
        .iter()
        .copied()
        .filter(|record| record.has_quic())
        .collect();
    let results = scan_records_era(world, &services, initial_size, profile, era);
    QuicReachShard::from_results(initial_size, &results)
}

/// [`fold_records`] under a chaos [`FaultPlan`] — the reference the
/// streaming chaos fold must match bit-for-bit.
pub fn fold_records_chaos(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
    plan: FaultPlan,
) -> QuicReachShard {
    let services: Vec<&DomainRecord> = records
        .iter()
        .copied()
        .filter(|record| record.has_quic())
        .collect();
    let results = scan_records_chaos(world, &services, initial_size, profile, era, plan);
    QuicReachShard::from_results(initial_size, &results)
}

/// The scenario class of one cold streaming probe: every input that can
/// change a [`HandshakeOutcome`] under a deterministic network profile.
///
/// The paper's core observation is that handshake behaviour is determined
/// by the chain and the amplification budget, not by domain identity — a
/// handful of provider configurations dominate the ecosystem. This key
/// captures exactly that: two records with equal `ProbeClass` produce
/// bit-identical outcomes, because every remaining per-record seed bit
/// only fills fixed-size fields (connection IDs, randoms, serial *bytes*)
/// that the outcome's counters and classification never read.
///
/// Deliberately excluded: the server's certificate-compression support
/// (the quicreach client offers none, §3.2, so negotiation is always
/// `None`) and the record's address/name *bytes* — only their lengths
/// matter. The chain is represented by its exact DER-length inputs
/// rather than materialized sizes: with `chain_id`/`era`/`leaf_key`
/// fixing the intermediates and the leaf template, the CN length, extra
/// SAN count (each SAN embeds the CN) and serial width pin every encoded
/// length in the chain — [`World::quic_chain_der_len_era`]'s cache test
/// proves chain bytes are a pure function of exactly this tuple. Keying
/// on the inputs keeps class derivation lock- and lookup-free on the
/// million-record path. The key carries its own scenario axes (era,
/// profile, Initial size) so one memo table stays correct even if reused
/// across folds with different axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProbeClass {
    era: CertificateEra,
    profile: NetworkProfile,
    initial_size: usize,
    provider: quicert_pki::Provider,
    behavior: quicert_pki::world::BehaviorKind,
    chain_id: quicert_pki::ChainId,
    leaf_key: quicert_x509::KeyAlgorithm,
    /// Leaf CN length in bytes (`record.name.len()`).
    cn_len: u16,
    /// Extra SANs on the leaf beyond CN and `www.` — each is
    /// `alt-NNN.<cn>`, so together with `cn_len` this fixes the SAN
    /// extension's encoded size.
    extra_sans: u16,
    /// Encoded length of the serial `INTEGER` — the only seed-dependent
    /// DER length in a certificate (leading-zero trimming).
    serial_der_len: u8,
    /// `record.seed % 40` — the scanner wire's base latency step. PTO and
    /// retransmission timers can fire latency-dependently, so outcomes
    /// are only shared within one step.
    latency_step: u8,
    behind_lb: bool,
    lb_overhead: usize,
    /// Cold streaming scans never resume; reserved so a future warm
    /// streaming fold can key on the resumption axis.
    resumed: bool,
}

impl ProbeClass {
    /// Derive the class of a record known to serve QUIC. O(1) with no
    /// world lookups: everything is on the record, and the serial width
    /// is recomputed arithmetically
    /// ([`quicert_x509::CertificateBuilder::serial_der_len`]).
    fn of(
        record: &DomainRecord,
        initial_size: usize,
        profile: NetworkProfile,
        era: CertificateEra,
    ) -> ProbeClass {
        let quic = record.quic.as_ref().expect("caller filtered on has_quic");
        let https = record
            .https
            .as_ref()
            .expect("QUIC deployments ride on an HTTPS record");
        // Rotated or churned certificates re-derive their serial from a
        // shifted seed, and a migrated provider serves its override era;
        // mirror `World`'s chain issuance exactly.
        let seed_shift = quic.cert_seed_shift();
        ProbeClass {
            era: quic.effective_era(era),
            profile,
            initial_size,
            provider: quic.provider,
            behavior: quic.behavior,
            chain_id: quic.chain_id,
            leaf_key: quic.leaf_key,
            cn_len: record.name.len() as u16,
            extra_sans: https.extra_sans,
            serial_der_len: quicert_x509::CertificateBuilder::serial_der_len(
                record.seed ^ seed_shift,
            ) as u8,
            latency_step: (record.seed % 40) as u8,
            behind_lb: quic.behind_lb,
            lb_overhead: quic.lb_overhead,
            resumed: false,
        }
    }
}

/// Record `n` probes issued by one materialized scan family on the
/// process-wide registry (`quicert_scanner_probes_issued_total{family=…}`).
/// Registration is idempotent, so the per-shard lock cost is one mutex
/// acquisition — never on a per-record path.
fn count_family_probes(family: &'static str, n: usize) {
    MetricsRegistry::global()
        .labeled_counter(
            "quicert_scanner_probes_issued_total",
            &[("family", family)],
            "Handshake probes issued by the materialized scan entry points",
        )
        .add(n as u64);
}

/// Per-(era, profile) streaming-scan instruments: fresh-vs-replayed probe
/// counters plus one handshake-phase histogram per [`Phase`].
///
/// The engine registers one of these per scanned era on its registry and
/// attaches a clone to every worker's [`ProbeScratch`]; the fold then
/// batch-updates the shared atomics once per chunk. Everything observed is
/// derived from simulated time and pre-existing memo counters, so
/// attaching metrics can never perturb a summary.
#[derive(Debug, Clone)]
pub struct ProbeMetrics {
    issued: Arc<Counter>,
    replayed: Arc<Counter>,
    phases: [Arc<Histogram>; 4],
}

impl ProbeMetrics {
    /// Register (or re-acquire — registration is idempotent) the
    /// instruments for one era × profile pair on `registry`.
    pub fn register(
        registry: &MetricsRegistry,
        era: CertificateEra,
        profile: NetworkProfile,
    ) -> ProbeMetrics {
        let labels: &[(&str, &str)] = &[("era", era.name()), ("profile", profile.name())];
        let phases = Phase::ALL.map(|phase| {
            registry.labeled_histogram(
                "quicert_handshake_phase_seconds",
                &[
                    ("era", era.name()),
                    ("profile", profile.name()),
                    ("phase", phase.label()),
                ],
                "Simulated handshake phase durations by era and network profile",
                0.0,
                1.0,
                20,
            )
        });
        ProbeMetrics {
            issued: registry.labeled_counter(
                "quicert_scan_probes_issued_total",
                labels,
                "Fresh handshake simulations run by the streaming scan",
            ),
            replayed: registry.labeled_counter(
                "quicert_scan_probes_replayed_total",
                labels,
                "Handshake outcomes replayed from the scenario-class memo",
            ),
            phases,
        }
    }
}

/// Where a record's outcome comes from in the memoized fold: its own
/// fresh simulation this chunk, or the memo table.
#[derive(Debug, Clone, Copy)]
enum OutcomeSlot {
    Fresh(u32),
    Cached(u32),
}

/// Per-worker flyweight table: one simulated [`HandshakeOutcome`] per
/// distinct [`ProbeClass`], plus effectiveness counters.
#[derive(Debug, Default)]
struct ProbeMemo {
    // FastHashBuilder: one lookup per probed record makes SipHash the
    // single largest non-simulation cost at a million records.
    classes: HashMap<ProbeClass, u32, quicert_netsim::FastHashBuilder>,
    outcomes: Vec<HandshakeOutcome>,
    hits: u64,
    misses: u64,
}

/// Reusable per-worker buffers for the streaming quicreach fold.
///
/// A pump worker folds thousands of chunks; rebuilding the probe, outcome
/// and rank vectors for every chunk dominated the allocator profile at a
/// million records. One scratch per worker keeps the capacities across
/// chunks — the buffers are cleared (never read) before each fold, so a
/// reused scratch can never leak one chunk's state into the next (pinned
/// by the fresh-vs-reused property test).
///
/// The scratch also hosts the worker's scenario-class memo (see
/// [`fold_records_scratch`]); unlike the buffers it deliberately persists
/// across chunks — outcomes are pure per class, so carrying them over is
/// what makes the flyweight pay.
#[derive(Debug)]
pub struct ProbeScratch {
    probes: Vec<HandshakeProbe>,
    outcomes: Vec<HandshakeOutcome>,
    ranks: Vec<usize>,
    slots: Vec<OutcomeSlot>,
    pending: Vec<ProbeClass>,
    memo: Option<ProbeMemo>,
    metrics: Option<ProbeMetrics>,
}

impl ProbeScratch {
    /// An empty scratch with scenario-class memoization enabled;
    /// capacities grow to the largest chunk folded.
    pub fn new() -> ProbeScratch {
        ProbeScratch::with_memo(true)
    }

    /// An empty scratch, memoizing when `enabled`. A disabled scratch
    /// simulates every record — the reference path the determinism matrix
    /// holds the memoized path to.
    pub fn with_memo(enabled: bool) -> ProbeScratch {
        ProbeScratch {
            probes: Vec::new(),
            outcomes: Vec::new(),
            ranks: Vec::new(),
            slots: Vec::new(),
            pending: Vec::new(),
            memo: enabled.then(ProbeMemo::default),
            metrics: None,
        }
    }

    /// Attach streaming-scan instruments; every later
    /// [`fold_records_scratch`] through this scratch batch-updates them
    /// once per chunk. A scratch without metrics skips all of it.
    pub fn set_metrics(&mut self, metrics: ProbeMetrics) {
        self.metrics = Some(metrics);
    }

    /// Memo effectiveness over this scratch's lifetime:
    /// `(hits, misses, distinct_classes)`. All zero when memoization is
    /// disabled or every fold bypassed it (non-deterministic profile).
    pub fn memo_stats(&self) -> (u64, u64, u64) {
        match &self.memo {
            Some(memo) => (memo.hits, memo.misses, memo.outcomes.len() as u64),
            None => (0, 0, 0),
        }
    }
}

impl Default for ProbeScratch {
    fn default() -> Self {
        ProbeScratch::new()
    }
}

/// [`fold_records`] in allocation-reuse form: the streaming pump's hot
/// path. Takes the chunk as a plain record slice (the pump hands workers
/// owned chunks — no per-chunk `Vec<&DomainRecord>` is ever built) and
/// routes every probe through the same `probe_for` builder and
/// outcome→result mapping as the materialized scans, so the folded shard
/// is bit-for-bit [`fold_records`]'s at any chunk size.
///
/// When the scratch carries a memo and the profile is deterministic
/// ([`NetworkProfile::is_deterministic`]), records are first keyed by
/// `ProbeClass`: only the first record of each class is simulated; every
/// later one replays the cached [`HandshakeOutcome`]. Replay happens in
/// the original record order through the same per-record fold, so the
/// order-sensitive [`StreamSummary`] float sums come out bit-for-bit
/// identical to the unmemoized path. Profiles that consume RNG (lossy
/// drops/corruption, long-fat jitter) make outcomes depend on per-record
/// seeds beyond the class, so they bypass the memo entirely and keep
/// per-record simulation.
pub fn fold_records_scratch(
    world: &World,
    records: &[DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
    scratch: &mut ProbeScratch,
) -> QuicReachShard {
    fold_records_scratch_chaos(
        world,
        records,
        initial_size,
        profile,
        era,
        FaultPlan::NONE,
        scratch,
    )
}

/// [`fold_records_scratch`] under a chaos [`FaultPlan`]: every probe's wire
/// gets the plan's fault overlay on top of the profile's. Any non-identity
/// plan arms an RNG-drawing fault injector, so outcomes stop being a pure
/// function of their `ProbeClass` — the scenario-class memo is bypassed
/// exactly as for RNG-consuming profiles (the memo gate requires *both*
/// [`NetworkProfile::is_deterministic`] and [`FaultPlan::is_deterministic`]).
/// [`FaultPlan::NONE`] reproduces the plain fold byte-for-byte, memo
/// included; a scratch can therefore be reused across plans without its
/// memo ever being polluted by a fault-injected outcome.
#[allow(clippy::too_many_arguments)]
pub fn fold_records_scratch_chaos(
    world: &World,
    records: &[DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
    plan: FaultPlan,
    scratch: &mut ProbeScratch,
) -> QuicReachShard {
    scratch.probes.clear();
    scratch.outcomes.clear();
    scratch.ranks.clear();
    scratch.slots.clear();
    scratch.pending.clear();
    let memo_active =
        scratch.memo.is_some() && profile.is_deterministic() && plan.is_deterministic();
    let hits_before = scratch.memo.as_ref().map_or(0, |memo| memo.hits);
    for record in records.iter().filter(|record| record.has_quic()) {
        scratch.ranks.push(record.rank);
        if memo_active {
            let class = ProbeClass::of(record, initial_size, profile, era);
            let memo = scratch.memo.as_mut().expect("memo_active implies memo");
            if let Some(&idx) = memo.classes.get(&class) {
                memo.hits += 1;
                scratch.slots.push(OutcomeSlot::Cached(idx));
                continue;
            }
            memo.misses += 1;
            scratch.pending.push(class);
        }
        scratch
            .slots
            .push(OutcomeSlot::Fresh(scratch.probes.len() as u32));
        scratch
            .probes
            .push(probe_for(world, record, initial_size, profile, era, plan));
    }
    run_handshake_batch_into(&mut scratch.probes, &mut scratch.outcomes);
    if memo_active {
        // Every fresh probe this chunk was first-of-class *within the
        // memo*; remember its outcome for later chunks. Two records of the
        // same new class in one chunk both simulate (outcomes identical by
        // construction) — only the first is stored.
        let memo = scratch.memo.as_mut().expect("memo_active implies memo");
        for (class, out) in scratch.pending.drain(..).zip(&scratch.outcomes) {
            if let Entry::Vacant(slot) = memo.classes.entry(class) {
                slot.insert(memo.outcomes.len() as u32);
                memo.outcomes.push(out.clone());
            }
        }
    }
    if let Some(metrics) = &scratch.metrics {
        // Batch flush: two counter adds per chunk, and phase observations
        // only for this chunk's *fresh* outcomes (replays would double-count
        // the class's phases). Everything read is simulated time.
        metrics.issued.add(scratch.outcomes.len() as u64);
        let hits_now = scratch.memo.as_ref().map_or(0, |memo| memo.hits);
        metrics.replayed.add(hits_now - hits_before);
        for out in &scratch.outcomes {
            if let Some(phases) = out.timeline.phases() {
                for (phase, ns) in phases {
                    metrics.phases[phase.index()].observe(ns as f64 / 1e9);
                }
            }
        }
    }
    let mut shard = QuicReachShard::identity();
    shard.classes.initial_size = initial_size;
    let cached = scratch.memo.as_ref().map(|memo| &memo.outcomes);
    for (&rank, slot) in scratch.ranks.iter().zip(&scratch.slots) {
        let out = match *slot {
            OutcomeSlot::Fresh(idx) => &scratch.outcomes[idx as usize],
            OutcomeSlot::Cached(idx) => &cached.expect("cached slots require a memo")[idx as usize],
        };
        shard.push(&QuicReachResult::from_outcome(rank, out));
    }
    shard
}

/// Build the [`HandshakeProbe`] for one service at one Initial size under a
/// network profile and [`CertificateEra`]; shared by the batched and
/// per-probe scan paths. The era swaps the served chain and the leaf key —
/// the scanner client is untouched, so the probe parameters only differ on
/// the server side, exactly as a re-scan of a migrated PKI would.
fn probe_for(
    world: &World,
    record: &DomainRecord,
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
    plan: FaultPlan,
) -> HandshakeProbe {
    // A churned deployment serves its override era regardless of the scan
    // era; resolve once so the chain and the CertificateVerify key agree.
    let era = record
        .quic
        .as_ref()
        .map(|q| q.effective_era(era))
        .unwrap_or(era);
    let chain = world
        .quic_chain_era(record, era)
        .expect("QUIC services have chains");
    let server = server_config_for_era(world, record, chain, era);
    // quicreach's stack offers no certificate compression (§3.2).
    let client = ClientConfig::scanner(
        initial_size,
        quicert_pki::World::server_addr(record),
        record.seed ^ initial_size as u64,
    );
    // The chaos plan overlays the profiled wire (max-merge, like profiles
    // themselves); FaultPlan::NONE touches nothing at all.
    let mut wire = wire_for_profile(record, profile);
    plan.apply(&mut wire);
    HandshakeProbe {
        client,
        server,
        wire,
        seed: record.seed,
    }
}

/// Build the probes for a whole shard — the single probe-construction path
/// every scan family (batched, per-probe, warm, chaos) goes through.
fn probes_for(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
    plan: FaultPlan,
) -> Vec<HandshakeProbe> {
    records
        .iter()
        .map(|record| probe_for(world, record, initial_size, profile, era, plan))
        .collect()
}

/// Pair a shard's outcomes back with its records — the single
/// outcome→result mapping every scan family goes through.
fn collate(records: &[&DomainRecord], outcomes: &[HandshakeOutcome]) -> Vec<QuicReachResult> {
    records
        .iter()
        .zip(outcomes)
        .map(|(record, out)| QuicReachResult::from_outcome(record.rank, out))
        .collect()
}

/// Probe one service at one Initial size (ideal path).
pub fn scan_service(world: &World, record: &DomainRecord, initial_size: usize) -> QuicReachResult {
    scan_service_profiled(world, record, initial_size, NetworkProfile::Ideal)
}

/// Probe one service at one Initial size under a network profile.
pub fn scan_service_profiled(
    world: &World,
    record: &DomainRecord,
    initial_size: usize,
    profile: NetworkProfile,
) -> QuicReachResult {
    let probe = probe_for(
        world,
        record,
        initial_size,
        profile,
        CertificateEra::Classical,
        FaultPlan::NONE,
    );
    let mut wire = probe.wire;
    let out = run_handshake(probe.client, probe.server, &mut wire, probe.seed);
    QuicReachResult::from_outcome(record.rank, &out)
}

/// Probe every QUIC service at one Initial size.
pub fn scan(world: &World, initial_size: usize) -> Vec<QuicReachResult> {
    let records: Vec<&DomainRecord> = world.quic_services().collect();
    scan_records(world, &records, initial_size)
}

/// Probe an explicit shard of services at one Initial size.
///
/// This is the shard-aware entry point: the whole shard is batched as
/// sessions of one `SimNet`. Every probe derives its randomness from the
/// record's own forked seed and owns its session state, so splitting the
/// service list into shards, probing them on separate workers and
/// concatenating the shard outputs in order is bit-for-bit identical to a
/// serial [`scan`] — and to the per-probe loop in
/// [`scan_records_per_probe`] — at any shard size.
pub fn scan_records(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
) -> Vec<QuicReachResult> {
    scan_records_profiled(world, records, initial_size, NetworkProfile::Ideal)
}

/// [`scan_records`] under a network profile.
pub fn scan_records_profiled(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
) -> Vec<QuicReachResult> {
    scan_records_era(
        world,
        records,
        initial_size,
        profile,
        CertificateEra::Classical,
    )
}

/// [`scan_records_profiled`] in one [`CertificateEra`]: the same scan
/// against the era-swapped population. The classical era reproduces
/// [`scan_records_profiled`] byte-for-byte; the hybrid and post-quantum
/// eras serve multi-kilobyte flights that must fragment across more CRYPTO
/// frames and Handshake packets under the same 3× amplification limiter.
pub fn scan_records_era(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
) -> Vec<QuicReachResult> {
    count_family_probes("quicreach", records.len());
    let outcomes = run_handshake_batch(probes_for(
        world,
        records,
        initial_size,
        profile,
        era,
        FaultPlan::NONE,
    ));
    collate(records, &outcomes)
}

/// [`scan_records_era`] under a chaos [`FaultPlan`]: the same population,
/// the same per-record RNG streams, with the plan's loss × duplication ×
/// corruption overlay on every wire. [`FaultPlan::NONE`] reproduces
/// [`scan_records_era`] byte-for-byte; any other plan draws per-datagram
/// RNG, so its outcomes are still deterministic for a fixed seed but no
/// longer shared across records of one scenario class.
pub fn scan_records_chaos(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    era: CertificateEra,
    plan: FaultPlan,
) -> Vec<QuicReachResult> {
    count_family_probes("chaos", records.len());
    let outcomes =
        run_handshake_batch(probes_for(world, records, initial_size, profile, era, plan));
    collate(records, &outcomes)
}

/// The pre-batching reference path: one isolated exchange per probe.
///
/// Kept for the batched-vs-per-probe equivalence tests and the scan
/// throughput benchmark; scanners should prefer [`scan_records`]. Probe
/// construction and collation are the same helpers the batched path uses —
/// only the exchange scheduling differs.
pub fn scan_records_per_probe(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
) -> Vec<QuicReachResult> {
    count_family_probes("per-probe", records.len());
    let outcomes: Vec<HandshakeOutcome> = probes_for(
        world,
        records,
        initial_size,
        profile,
        CertificateEra::Classical,
        FaultPlan::NONE,
    )
    .into_iter()
    .map(|probe| {
        let mut wire = probe.wire;
        run_handshake(probe.client, probe.server, &mut wire, probe.seed)
    })
    .collect();
    collate(records, &outcomes)
}

// ------------------------------------------------------------ warm path --

/// The simulated wall-clock second at which every cold (first-visit)
/// handshake of a warm scan happens. Chosen away from epoch boundaries so a
/// short revisit delay never straddles a STEK rotation by accident.
pub const WARM_SCAN_EPOCH_SECS: u64 = 1_764_000_600;

/// Revisit delay of the warm policies, seconds.
pub const WARM_REVISIT_DELAY_SECS: u64 = 60;

/// Label mixed into a record's seed to derive its server's STEK master key.
const STEK_SEED_LABEL: u64 = 0x5354_454B_5345_4544;

/// The wall clock of the warm visit under one [`ResumptionPolicy`].
pub fn warm_visit_secs(policy: ResumptionPolicy) -> u64 {
    let config = TicketConfig::default();
    match policy {
        // Cold-only and warm revisit shortly after the first handshake.
        ResumptionPolicy::ColdOnly | ResumptionPolicy::WarmAfterFirstVisit => {
            WARM_SCAN_EPOCH_SECS + WARM_REVISIT_DELAY_SECS
        }
        // Past the lifetime *and* past the previous-STEK window, so the
        // server rejects deterministically.
        ResumptionPolicy::TicketExpired => {
            WARM_SCAN_EPOCH_SECS
                + config.lifetime_secs
                + 2 * config.rotation_secs
                + WARM_REVISIT_DELAY_SECS
        }
    }
}

/// One service's cold-vs-warm measurement pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmScanResult {
    /// Service rank.
    pub rank: usize,
    /// The first visit: full handshake against a ticket-issuing server.
    pub cold: QuicReachResult,
    /// The second visit: resumed when the policy offered a ticket and the
    /// server accepted it, cold fallback otherwise.
    pub warm: QuicReachResult,
    /// Whether the warm visit offered a PSK at all.
    pub offered_psk: bool,
    /// Whether the server accepted the offer (handshake resumed).
    pub resumed: bool,
    /// Certificate-message bytes on the wire during the cold visit.
    pub cold_cert_bytes: usize,
    /// Certificate-message bytes during the warm visit (0 when resumed).
    pub warm_cert_bytes: usize,
    /// Whether the warm first flight exceeded the 3× budget.
    pub warm_exceeds_limit: bool,
    /// Round trips saved by the warm visit (cold RTTs − warm RTTs; 0 or
    /// negative when nothing was saved, e.g. unreachable either way).
    pub rtts_saved: i64,
}

impl WarmScanResult {
    fn from_outcome(rank: usize, out: &ResumptionOutcome) -> WarmScanResult {
        WarmScanResult {
            rank,
            cold: QuicReachResult::from_outcome(rank, &out.cold),
            warm: QuicReachResult::from_outcome(rank, &out.warm),
            offered_psk: out.offered_psk,
            resumed: out.warm.resumed,
            cold_cert_bytes: out.cold.server_stats.certificate_message_len,
            warm_cert_bytes: out.warm.server_stats.certificate_message_len,
            warm_exceeds_limit: out.warm.exceeds_limit(),
            rtts_saved: out.cold.rtt_count as i64 - out.warm.rtt_count as i64,
        }
    }
}

/// Probe a shard of services cold-then-warm under a [`ResumptionPolicy`].
///
/// Each record's first visit runs the usual certificate-laden handshake
/// against its server *with ticket issuance enabled*; the obtained ticket
/// lands in an SNI-keyed LRU session cache, and the second visit re-probes
/// with the cached ticket per the policy. The cold (ticket-free) scan
/// entry points are untouched by any of this — their servers never issue
/// tickets, so their artifacts stay byte-for-byte identical.
///
/// Probes use the record's *domain name* as SNI (tickets are host-bound);
/// the probe parameters are otherwise exactly [`scan_records_profiled`]'s,
/// via the shared probe builder. Every visit draws from per-record RNG
/// streams, so shard splits and worker counts cannot change any result.
pub fn warm_scan_records(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    policy: ResumptionPolicy,
) -> Vec<WarmScanResult> {
    warm_scan_records_era(
        world,
        records,
        initial_size,
        profile,
        policy,
        CertificateEra::Classical,
    )
}

/// [`warm_scan_records`] in one [`CertificateEra`]: cold visits pay the
/// era's (much larger) chain, warm visits resume certificate-free — the
/// resumed flight is era-independent, which is exactly what makes
/// resumption the strongest PQC mitigation.
pub fn warm_scan_records_era(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    policy: ResumptionPolicy,
    era: CertificateEra,
) -> Vec<WarmScanResult> {
    warm_scan_records_chaos(
        world,
        records,
        initial_size,
        profile,
        policy,
        era,
        FaultPlan::NONE,
    )
}

/// [`warm_scan_records_era`] under a chaos [`FaultPlan`]: both the cold
/// and the warm visit run over plan-overlaid wires, so the sweep can ask
/// whether resumption still pays once the path itself is hostile.
/// [`FaultPlan::NONE`] reproduces [`warm_scan_records_era`] byte-for-byte.
#[allow(clippy::too_many_arguments)]
pub fn warm_scan_records_chaos(
    world: &World,
    records: &[&DomainRecord],
    initial_size: usize,
    profile: NetworkProfile,
    policy: ResumptionPolicy,
    era: CertificateEra,
    plan: FaultPlan,
) -> Vec<WarmScanResult> {
    count_family_probes("warm", records.len());
    let warm_now_secs = warm_visit_secs(policy);
    let probes: Vec<ResumptionProbe> = probes_for(world, records, initial_size, profile, era, plan)
        .into_iter()
        .zip(records)
        .map(|(mut probe, record)| {
            probe.client.server_name = record.name.clone();
            probe.server.resumption = Some(ResumptionHost {
                issuer: TicketIssuer::new(record.seed ^ STEK_SEED_LABEL, TicketConfig::default()),
                now_secs: WARM_SCAN_EPOCH_SECS,
                issue_tickets: true,
            });
            let warm_wire = probe.wire.clone();
            ResumptionProbe {
                client: probe.client,
                server: probe.server,
                wire: probe.wire,
                warm_wire,
                seed: probe.seed,
                warm_now_secs,
                offer_ticket: policy.offers_ticket(),
            }
        })
        .collect();
    let outcomes = run_resumption_batch(probes);
    records
        .iter()
        .zip(&outcomes)
        .map(|(record, out)| WarmScanResult::from_outcome(record.rank, out))
        .collect()
}

/// Aggregate results into a Fig 3 bar.
pub fn summarize(initial_size: usize, results: &[QuicReachResult]) -> ScanSummary {
    let mut summary = ScanSummary {
        initial_size,
        ..ScanSummary::default()
    };
    for r in results {
        summary.add(r.class);
    }
    summary
}

/// The largest Initial a 1500-byte MTU admits (sanity bound used in tests).
pub fn mtu_bound() -> usize {
    1500 - UDP_IPV4_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn world() -> quicert_pki::World {
        quicert_pki::World::generate(WorldConfig {
            domains: 3_000,
            seed: 33,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn sweep_sizes_match_the_paper() {
        let sizes = sweep_sizes();
        assert_eq!(sizes[0], 1200);
        assert_eq!(*sizes.last().unwrap(), 1472);
        assert_eq!(sizes.len(), 29);
        assert_eq!(mtu_bound(), 1472);
    }

    #[test]
    fn classification_shares_match_fig3_at_default_initial() {
        let world = world();
        let results = scan(&world, 1362);
        let summary = summarize(1362, &results);
        let ampl = summary.share_of_reachable(HandshakeClass::Amplification);
        let multi = summary.share_of_reachable(HandshakeClass::MultiRtt);
        let one = summary.share_of_reachable(HandshakeClass::OneRtt);
        // Paper: 61% / 38% / 0.75% (±tolerance for a 3k-domain world).
        assert!((ampl - 61.0).abs() < 8.0, "amplification {ampl}");
        assert!((multi - 38.0).abs() < 8.0, "multi-rtt {multi}");
        assert!(one < 4.0, "one-rtt {one}");
    }

    #[test]
    fn larger_initials_shift_multi_rtt_to_one_rtt() {
        let world = world();
        let small = summarize(1200, &scan(&world, 1200));
        let large = summarize(1472, &scan(&world, 1472));
        assert!(large.one_rtt >= small.one_rtt);
        assert!(large.multi_rtt <= small.multi_rtt);
    }

    #[test]
    fn reachability_drops_for_large_initials() {
        let world = world();
        let small = summarize(1200, &scan(&world, 1200));
        let large = summarize(1472, &scan(&world, 1472));
        assert!(
            large.reachable() < small.reachable(),
            "LB-tunnelled services must vanish at 1472 ({} vs {})",
            large.reachable(),
            small.reachable()
        );
    }

    #[test]
    fn amplifying_handshakes_have_modest_factors() {
        // Fig 4: amplification factors for complete handshakes stay < 6x.
        let world = world();
        for r in scan(&world, 1362) {
            if r.class == HandshakeClass::Amplification {
                assert!(r.amplification > 3.0);
                assert!(r.amplification < 6.5, "factor {}", r.amplification);
            }
        }
    }

    #[test]
    fn batched_scan_matches_per_probe_loop_bit_for_bit() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(120).collect();
        for profile in [NetworkProfile::Ideal, NetworkProfile::Lossy] {
            let batched = scan_records_profiled(&world, &records, 1362, profile);
            let per_probe = scan_records_per_probe(&world, &records, 1362, profile);
            assert_eq!(batched, per_probe, "profile {profile}");
        }
    }

    #[test]
    fn batch_size_does_not_change_outcomes() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(90).collect();
        let whole = scan_records(&world, &records, 1250);
        for chunk in [1usize, 7, 30] {
            let pieces: Vec<QuicReachResult> = records
                .chunks(chunk)
                .flat_map(|shard| scan_records(&world, shard, 1250))
                .collect();
            assert_eq!(whole, pieces, "chunk size {chunk}");
        }
    }

    #[test]
    fn scratch_fold_matches_fold_records_and_reuse_is_clean() {
        let world = world();
        let owned: Vec<DomainRecord> = world.domains().iter().take(160).cloned().collect();
        let refs: Vec<&DomainRecord> = owned.iter().collect();

        // One scratch folds several chunks back to back; every result must
        // equal both a fresh-scratch fold and the Vec-building fold.
        let mut reused = ProbeScratch::new();
        for (chunk_refs, chunk) in refs.chunks(50).zip(owned.chunks(50)) {
            let reference = fold_records(
                &world,
                chunk_refs,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
            );
            let mut fresh = ProbeScratch::new();
            let from_fresh = fold_records_scratch(
                &world,
                chunk,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
                &mut fresh,
            );
            let from_reused = fold_records_scratch(
                &world,
                chunk,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
                &mut reused,
            );
            assert_eq!(reference, from_fresh);
            assert_eq!(from_fresh, from_reused, "scratch reuse leaked state");
        }
    }

    #[test]
    fn memoized_fold_is_bit_identical_to_direct_fold_per_profile() {
        // The flyweight must be invisible in the folded shard for every
        // profile: deterministic ones replay cached outcomes, RNG-consuming
        // ones bypass the memo — either way the shard matches a memo-less
        // scratch bit-for-bit.
        let world = world();
        let owned: Vec<DomainRecord> = world.domains().iter().take(400).cloned().collect();
        for profile in NetworkProfile::ALL {
            for era in CertificateEra::ALL {
                let mut memoized = ProbeScratch::new();
                let mut direct = ProbeScratch::with_memo(false);
                for chunk in owned.chunks(120) {
                    let a = fold_records_scratch(&world, chunk, 1362, profile, era, &mut memoized);
                    let b = fold_records_scratch(&world, chunk, 1362, profile, era, &mut direct);
                    assert_eq!(a, b, "profile {profile} era {era:?}");
                }
                assert_eq!(direct.memo_stats(), (0, 0, 0));
            }
        }
    }

    #[test]
    fn memo_counters_account_for_every_probed_record() {
        let world = world();
        let owned: Vec<DomainRecord> = world.domains().to_vec();
        let probed = owned.iter().filter(|r| r.has_quic()).count() as u64;

        // Deterministic profile: every probed record is a hit or a miss,
        // and reuse across chunks turns same-class repeats into hits. The
        // class space (latency steps × chain lengths × LB overheads) only
        // collapses at campaign scale, so a small world just has to show
        // *some* sharing — the bench guard enforces the at-scale ratio.
        let mut scratch = ProbeScratch::new();
        for chunk in owned.chunks(64) {
            fold_records_scratch(
                &world,
                chunk,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
                &mut scratch,
            );
        }
        let (hits, misses, distinct) = scratch.memo_stats();
        assert_eq!(hits + misses, probed);
        assert!(distinct <= misses);
        assert!(hits > 0, "no class sharing across {probed} probed records");

        // RNG-consuming profile: the memo is bypassed entirely.
        let mut lossy = ProbeScratch::new();
        for chunk in owned.chunks(64) {
            fold_records_scratch(
                &world,
                chunk,
                1362,
                NetworkProfile::Lossy,
                CertificateEra::Classical,
                &mut lossy,
            );
        }
        assert_eq!(lossy.memo_stats(), (0, 0, 0));
    }

    #[test]
    fn probe_metrics_account_for_every_probed_record_and_change_nothing() {
        let world = world();
        let owned: Vec<DomainRecord> = world.domains().iter().take(600).cloned().collect();
        let probed = owned.iter().filter(|r| r.has_quic()).count() as u64;

        let registry = MetricsRegistry::new();
        let metrics =
            ProbeMetrics::register(&registry, CertificateEra::Classical, NetworkProfile::Ideal);
        let mut instrumented = ProbeScratch::new();
        instrumented.set_metrics(metrics);
        let mut plain = ProbeScratch::new();
        for chunk in owned.chunks(64) {
            let a = fold_records_scratch(
                &world,
                chunk,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
                &mut instrumented,
            );
            let b = fold_records_scratch(
                &world,
                chunk,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
                &mut plain,
            );
            assert_eq!(a, b, "metrics attachment changed a folded shard");
        }

        // issued == memo misses (every fresh simulation), replayed == memo
        // hits, and together they cover each probed record exactly once.
        let (hits, misses, _) = instrumented.memo_stats();
        let labels = [("era", "classical"), ("profile", "ideal")];
        let issued = registry
            .labeled_counter("quicert_scan_probes_issued_total", &labels, "")
            .get();
        let replayed = registry
            .labeled_counter("quicert_scan_probes_replayed_total", &labels, "")
            .get();
        assert_eq!(issued, misses);
        assert_eq!(replayed, hits);
        assert_eq!(issued + replayed, probed);

        // Phase histograms: one observation per completed fresh handshake,
        // the same count in all four phases.
        let phase_counts: Vec<u64> = Phase::ALL
            .iter()
            .map(|phase| {
                registry
                    .labeled_histogram(
                        "quicert_handshake_phase_seconds",
                        &[
                            ("era", "classical"),
                            ("profile", "ideal"),
                            ("phase", phase.label()),
                        ],
                        "",
                        0.0,
                        1.0,
                        20,
                    )
                    .count()
            })
            .collect();
        assert!(phase_counts[0] > 0, "no handshake phases observed");
        assert!(phase_counts.iter().all(|&c| c == phase_counts[0]));
        assert!(phase_counts[0] <= issued, "replays must not observe phases");
    }

    #[test]
    fn share_denominators_are_explicit() {
        let summary = ScanSummary {
            initial_size: 1362,
            one_rtt: 10,
            retry: 0,
            multi_rtt: 20,
            amplification: 10,
            unreachable: 60,
        };
        assert_eq!(summary.reachable(), 40);
        assert_eq!(summary.total(), 100);
        // Of the 40 reachable, half were multi-RTT…
        assert_eq!(summary.share_of_reachable(HandshakeClass::MultiRtt), 50.0);
        // …which is 20% of everything probed.
        assert_eq!(summary.share_of_all(HandshakeClass::MultiRtt), 20.0);
        // Unreachability is only meaningful against the full population.
        assert_eq!(summary.share_of_reachable(HandshakeClass::Unreachable), 0.0);
        assert_eq!(summary.share_of_all(HandshakeClass::Unreachable), 60.0);
    }

    #[test]
    fn empty_scan_has_zero_shares_everywhere() {
        let summary = ScanSummary::default();
        for class in [
            HandshakeClass::OneRtt,
            HandshakeClass::Retry,
            HandshakeClass::MultiRtt,
            HandshakeClass::Amplification,
            HandshakeClass::Unreachable,
        ] {
            assert_eq!(summary.share_of_reachable(class), 0.0);
            assert_eq!(summary.share_of_all(class), 0.0);
        }
    }

    #[test]
    fn all_unreachable_scan_keeps_reachable_shares_at_zero() {
        let summary = ScanSummary {
            initial_size: 1472,
            unreachable: 7,
            ..ScanSummary::default()
        };
        assert_eq!(summary.share_of_reachable(HandshakeClass::OneRtt), 0.0);
        assert_eq!(summary.share_of_all(HandshakeClass::Unreachable), 100.0);
    }

    #[test]
    fn warm_scan_resumes_the_reachable_population() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(80).collect();
        let results = warm_scan_records(
            &world,
            &records,
            1362,
            NetworkProfile::Ideal,
            ResumptionPolicy::WarmAfterFirstVisit,
        );
        assert_eq!(results.len(), records.len());
        for r in &results {
            if r.cold.class == HandshakeClass::Unreachable {
                // No ticket could be obtained; revisit stays unreachable.
                assert!(!r.resumed);
                continue;
            }
            assert!(r.offered_psk, "rank {}: ticket cached and offered", r.rank);
            assert!(r.resumed, "rank {}: server accepts fresh ticket", r.rank);
            assert_eq!(r.warm_cert_bytes, 0, "rank {}: no certs on wire", r.rank);
            assert!(!r.warm_exceeds_limit, "rank {}: fits 3x budget", r.rank);
            // Always-on Retry servers still demand address validation on a
            // resumed visit; everyone else completes in one round.
            if r.cold.class == HandshakeClass::Retry {
                assert_eq!(r.warm.class, HandshakeClass::Retry, "rank {}", r.rank);
            } else {
                assert_eq!(r.warm.class, HandshakeClass::OneRtt, "rank {}", r.rank);
            }
            assert!(r.cold_cert_bytes > 0);
        }
        // Every cold multi-RTT handshake saves at least one round trip.
        let multi: Vec<&WarmScanResult> = results
            .iter()
            .filter(|r| r.cold.class == HandshakeClass::MultiRtt)
            .collect();
        assert!(!multi.is_empty(), "population includes multi-RTT services");
        assert!(multi.iter().all(|r| r.rtts_saved >= 1));
    }

    #[test]
    fn cold_only_and_expired_policies_fall_back_to_full_handshakes() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(40).collect();
        for policy in [ResumptionPolicy::ColdOnly, ResumptionPolicy::TicketExpired] {
            let results = warm_scan_records(&world, &records, 1362, NetworkProfile::Ideal, policy);
            for r in &results {
                assert!(!r.resumed, "policy {policy}: never resumed");
                assert_eq!(
                    r.offered_psk,
                    policy.offers_ticket() && r.cold.class != HandshakeClass::Unreachable
                );
                // The fallback pays the certificate chain again.
                if r.cold.class != HandshakeClass::Unreachable {
                    assert!(r.warm_cert_bytes > 0, "policy {policy}: certs sent");
                    assert_eq!(r.warm.class, r.cold.class, "policy {policy}");
                }
            }
        }
    }

    #[test]
    fn warm_scan_cold_half_matches_the_plain_cold_scan_classes() {
        // The warm scan's first visit adds ticket issuance, which must not
        // disturb any classification-relevant measurement relative to the
        // plain (resumption-free) scan.
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(60).collect();
        let plain = scan_records_profiled(&world, &records, 1362, NetworkProfile::Ideal);
        let warm = warm_scan_records(
            &world,
            &records,
            1362,
            NetworkProfile::Ideal,
            ResumptionPolicy::WarmAfterFirstVisit,
        );
        for (p, w) in plain.iter().zip(&warm) {
            assert_eq!(p.class, w.cold.class, "rank {}", p.rank);
            assert_eq!(p.rtt_count, w.cold.rtt_count, "rank {}", p.rank);
            assert_eq!(p.amplification, w.cold.amplification, "rank {}", p.rank);
        }
    }

    #[test]
    fn warm_scan_is_shard_invariant() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(48).collect();
        let whole = warm_scan_records(
            &world,
            &records,
            1250,
            NetworkProfile::Lossy,
            ResumptionPolicy::WarmAfterFirstVisit,
        );
        for chunk in [1usize, 7, 16] {
            let pieces: Vec<WarmScanResult> = records
                .chunks(chunk)
                .flat_map(|shard| {
                    warm_scan_records(
                        &world,
                        shard,
                        1250,
                        NetworkProfile::Lossy,
                        ResumptionPolicy::WarmAfterFirstVisit,
                    )
                })
                .collect();
            assert_eq!(whole, pieces, "chunk size {chunk}");
        }
    }

    #[test]
    fn classical_era_scan_is_byte_for_byte_the_plain_scan() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(80).collect();
        let plain = scan_records_profiled(&world, &records, 1362, NetworkProfile::Ideal);
        let era = scan_records_era(
            &world,
            &records,
            1362,
            NetworkProfile::Ideal,
            CertificateEra::Classical,
        );
        assert_eq!(plain, era);
    }

    #[test]
    fn pq_eras_shift_one_rtt_to_multi_rtt() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(150).collect();
        let classical = summarize(
            1362,
            &scan_records_era(
                &world,
                &records,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
            ),
        );
        for era in [CertificateEra::Hybrid, CertificateEra::PostQuantum] {
            let summary = summarize(
                1362,
                &scan_records_era(&world, &records, 1362, NetworkProfile::Ideal, era),
            );
            // Nothing becomes unreachable — the chain travels at the
            // Handshake level, which the MTU failure of §4.1 never sees.
            assert_eq!(summary.unreachable, classical.unreachable, "{era}");
            // But 4–15 kB of extra certificate bytes push 1-RTT and
            // amplification-class completions into multi-RTT territory.
            assert!(
                summary.multi_rtt > classical.multi_rtt,
                "{era}: multi {} vs classical {}",
                summary.multi_rtt,
                classical.multi_rtt
            );
            assert!(summary.one_rtt <= classical.one_rtt, "{era}");
        }
    }

    #[test]
    fn pq_era_scans_are_shard_invariant() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(60).collect();
        let whole = scan_records_era(
            &world,
            &records,
            1362,
            NetworkProfile::Lossy,
            CertificateEra::PostQuantum,
        );
        for chunk in [1usize, 7, 25] {
            let pieces: Vec<QuicReachResult> = records
                .chunks(chunk)
                .flat_map(|shard| {
                    scan_records_era(
                        &world,
                        shard,
                        1362,
                        NetworkProfile::Lossy,
                        CertificateEra::PostQuantum,
                    )
                })
                .collect();
            assert_eq!(whole, pieces, "chunk size {chunk}");
        }
    }

    #[test]
    fn pq_warm_scans_still_resume_certificate_free() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(40).collect();
        let results = warm_scan_records_era(
            &world,
            &records,
            1362,
            NetworkProfile::Ideal,
            ResumptionPolicy::WarmAfterFirstVisit,
            CertificateEra::PostQuantum,
        );
        for r in &results {
            if r.cold.class == HandshakeClass::Unreachable {
                continue;
            }
            assert!(r.resumed, "rank {}", r.rank);
            assert_eq!(r.warm_cert_bytes, 0, "rank {}", r.rank);
            assert!(!r.warm_exceeds_limit, "rank {}", r.rank);
            // The cold visit paid the post-quantum chain in full.
            assert!(r.cold_cert_bytes > 4_000, "rank {}", r.rank);
        }
    }

    #[test]
    fn ideal_profile_reports_no_faults_lossy_reports_some() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(60).collect();
        let ideal = scan_records_profiled(&world, &records, 1362, NetworkProfile::Ideal);
        assert!(ideal
            .iter()
            .all(|r| r.fault_drops == 0 && r.fault_corruptions == 0));
        let lossy = scan_records_profiled(&world, &records, 1362, NetworkProfile::Lossy);
        let drops: u64 = lossy.iter().map(|r| r.fault_drops).sum();
        assert!(drops > 0, "3% loss over 60 probes must drop something");
    }

    #[test]
    fn none_plan_scans_are_byte_for_byte_the_plain_scans() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(60).collect();
        let plain = scan_records_era(
            &world,
            &records,
            1362,
            NetworkProfile::Ideal,
            CertificateEra::Classical,
        );
        let chaos = scan_records_chaos(
            &world,
            &records,
            1362,
            NetworkProfile::Ideal,
            CertificateEra::Classical,
            FaultPlan::NONE,
        );
        assert_eq!(plain, chaos);

        let warm_plain = warm_scan_records_era(
            &world,
            &records[..20],
            1362,
            NetworkProfile::Lossy,
            ResumptionPolicy::WarmAfterFirstVisit,
            CertificateEra::Classical,
        );
        let warm_chaos = warm_scan_records_chaos(
            &world,
            &records[..20],
            1362,
            NetworkProfile::Lossy,
            ResumptionPolicy::WarmAfterFirstVisit,
            CertificateEra::Classical,
            FaultPlan::NONE,
        );
        assert_eq!(warm_plain, warm_chaos);
    }

    #[test]
    fn chaos_plans_surface_recovery_cost() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(80).collect();
        let shard = |plan| {
            QuicReachShard::from_results(
                1362,
                &scan_records_chaos(
                    &world,
                    &records,
                    1362,
                    NetworkProfile::Ideal,
                    CertificateEra::Classical,
                    plan,
                ),
            )
        };
        let none = shard(FaultPlan::NONE);
        assert_eq!(none.fault_drops, 0);
        assert_eq!(none.fault_duplications, 0);
        let light = shard(FaultPlan::LIGHT);
        let heavy = shard(FaultPlan::HEAVY);
        assert!(
            heavy.fault_drops > light.fault_drops,
            "loss scales with intensity"
        );
        assert!(
            heavy.retransmissions() > none.retransmissions(),
            "recovery cost must grow under heavy loss ({} vs {})",
            heavy.retransmissions(),
            none.retransmissions()
        );
        // The duplication-flavoured rung exercises FaultInjector::duplicating
        // end-to-end: the counter rides ExchangeOutcome → HandshakeOutcome →
        // QuicReachResult → the shard.
        let dup = shard(FaultPlan::DUP_STORM);
        assert!(
            dup.fault_duplications > 0,
            "dup-storm must duplicate datagrams"
        );
        assert_eq!(dup.fault_drops, 0, "dup-storm drops nothing");
    }

    #[test]
    fn chaos_fold_bypasses_memo_and_matches_the_materialized_scan() {
        let world = world();
        let owned: Vec<DomainRecord> = world.domains().iter().take(200).cloned().collect();
        let refs: Vec<&DomainRecord> = owned.iter().collect();
        for plan in [FaultPlan::NONE, FaultPlan::MODERATE, FaultPlan::DUP_STORM] {
            let reference = fold_records_chaos(
                &world,
                &refs,
                1362,
                NetworkProfile::Ideal,
                CertificateEra::Classical,
                plan,
            );
            let mut memoized = ProbeScratch::new();
            let mut shard = QuicReachShard::identity();
            for chunk in owned.chunks(64) {
                shard.merge(&fold_records_scratch_chaos(
                    &world,
                    chunk,
                    1362,
                    NetworkProfile::Ideal,
                    CertificateEra::Classical,
                    plan,
                    &mut memoized,
                ));
            }
            assert_eq!(shard, reference, "plan {plan}");
            if plan.is_deterministic() {
                let (hits, misses, _) = memoized.memo_stats();
                assert!(hits + misses > 0, "the identity plan keeps memoizing");
            } else {
                // A fault-injected wire draws RNG, so its outcomes may never
                // be replayed from the scenario-class memo — even under the
                // (otherwise deterministic) ideal profile.
                assert_eq!(
                    memoized.memo_stats(),
                    (0, 0, 0),
                    "plan {plan} must bypass the memo entirely"
                );
            }
        }
    }

    #[test]
    fn tunneled_profile_kills_large_initials() {
        let world = world();
        let records: Vec<&DomainRecord> = world.quic_services().take(80).collect();
        let ideal = summarize(
            1472,
            &scan_records_profiled(&world, &records, 1472, NetworkProfile::Ideal),
        );
        let tunneled = summarize(
            1472,
            &scan_records_profiled(&world, &records, 1472, NetworkProfile::Tunneled),
        );
        assert!(
            tunneled.unreachable > ideal.unreachable,
            "tunnel overhead must push 1472-byte Initials over the MTU \
             ({} vs {})",
            tunneled.unreachable,
            ideal.unreachable
        );
    }
}
