//! Telescope backscatter collection (§4.3, Fig 9).
//!
//! Spoofed handshakes are launched toward provider services with victim
//! addresses inside a dark prefix; the telescope records every reflected
//! datagram, and sessions are grouped by the server's source connection ID
//! exactly as the paper does.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use quicert_netsim::{Ipv4Net, SimDuration, Telescope};
use quicert_pki::{Provider, World};
use quicert_quic::handshake::{observe_backscatter, run_spoofed_probe_batch, SpoofedProbe};

use crate::behavior::{server_config_for, wire_for};

/// One backscatter session as reconstructed from telescope records.
#[derive(Debug, Clone)]
pub struct BackscatterSession {
    /// The provider of the reflecting server.
    pub provider: Provider,
    /// Reflected UDP payload bytes.
    pub bytes: usize,
    /// Amplification factor assuming the paper's 1362-byte Initial.
    pub amplification: f64,
    /// Session duration (first to last reflected datagram).
    pub duration: SimDuration,
    /// Number of reflected datagrams.
    pub datagrams: usize,
}

/// The assumed client Initial used to compute telescope amplification
/// factors (§4.3 uses 1362 bytes).
pub const ASSUMED_INITIAL: usize = 1362;

/// Launch spoofed probes at up to `per_provider` services of each
/// hypergiant and reconstruct sessions from the telescope.
///
/// All probes run as sessions of one `SimNet` batch; outcomes (and thus
/// sessions) are bit-for-bit identical to the old per-probe loop.
pub fn collect(world: &World, dark: Ipv4Net, per_provider: usize) -> Vec<BackscatterSession> {
    let mut telescope = Telescope::new(dark);
    let mut provider_of_scid: HashMap<Vec<u8>, Provider> = HashMap::new();

    let mut providers = Vec::new();
    let mut victims = Vec::new();
    let mut probes = Vec::new();
    for provider in [Provider::Cloudflare, Provider::Google, Provider::Meta] {
        let services = world
            .quic_services()
            .filter(|d| d.quic.as_ref().unwrap().provider == provider)
            .take(per_provider);
        for (i, record) in services.enumerate() {
            let victim = dark.host((record.seed ^ i as u64) % dark.size());
            let server_addr = World::server_addr(record);
            let chain = world.quic_chain(record).expect("chain");
            providers.push(provider);
            victims.push((victim, server_addr));
            probes.push(SpoofedProbe {
                probe_size: ASSUMED_INITIAL,
                spoofed_src: victim,
                server_addr,
                server: server_config_for(world, record, chain),
                wire: wire_for(record),
                seed: record.seed,
            });
        }
    }
    let outcomes = run_spoofed_probe_batch(probes);
    for ((provider, (victim, server_addr)), outcome) in
        providers.into_iter().zip(victims).zip(&outcomes)
    {
        provider_of_scid.insert(outcome.server_scid.clone(), provider);
        observe_backscatter(&mut telescope, victim, server_addr, outcome);
    }

    // Group telescope records by SCID — the paper's session definition.
    let mut sessions: HashMap<Vec<u8>, BackscatterSession> = HashMap::new();
    let mut first_last: HashMap<Vec<u8>, (quicert_netsim::SimTime, quicert_netsim::SimTime)> =
        HashMap::new();
    for record in telescope.records() {
        let Some(scid) = record.scid.clone() else {
            continue;
        };
        let provider = *provider_of_scid.get(&scid).unwrap_or(&Provider::SelfHosted);
        let entry = sessions.entry(scid.clone()).or_insert(BackscatterSession {
            provider,
            bytes: 0,
            amplification: 0.0,
            duration: SimDuration::ZERO,
            datagrams: 0,
        });
        entry.bytes += record.payload_len;
        entry.datagrams += 1;
        let window = first_last.entry(scid).or_insert((record.at, record.at));
        window.0 = window.0.min(record.at);
        window.1 = window.1.max(record.at);
    }
    let mut out: Vec<(Vec<u8>, BackscatterSession)> = sessions
        .into_iter()
        .map(|(scid, mut s)| {
            s.amplification = s.bytes as f64 / ASSUMED_INITIAL as f64;
            s.duration = first_last[&scid].1.since(first_last[&scid].0);
            (scid, s)
        })
        .collect();
    // Tie-break equal factors by SCID: HashMap iteration order must never
    // leak into the session order (artifacts are bit-reproducible).
    out.sort_by(|(scid_a, a), (scid_b, b)| {
        a.amplification
            .partial_cmp(&b.amplification)
            .unwrap()
            .then_with(|| scid_a.cmp(scid_b))
    });
    out.into_iter().map(|(_, s)| s).collect()
}

/// Convenience: the default dark /8 used by the experiments.
pub fn default_dark_prefix() -> Ipv4Net {
    Ipv4Net::new(Ipv4Addr::new(44, 0, 0, 0), 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn sessions() -> Vec<BackscatterSession> {
        let world = quicert_pki::World::generate(WorldConfig {
            domains: 30_000,
            seed: 91,
            ..WorldConfig::default()
        });
        collect(&world, default_dark_prefix(), 12)
    }

    #[test]
    fn all_hypergiants_exceed_the_limit() {
        let sessions = sessions();
        assert!(!sessions.is_empty());
        for provider in [Provider::Cloudflare, Provider::Google, Provider::Meta] {
            let max = sessions
                .iter()
                .filter(|s| s.provider == provider)
                .map(|s| s.amplification)
                .fold(0.0f64, f64::max);
            assert!(max > 3.0, "{provider:?} max amplification {max}");
        }
    }

    #[test]
    fn meta_dominates_the_tail() {
        // Fig 9: Cloudflare/Google below ~10x, Meta reaching tens.
        let sessions = sessions();
        let max_of = |p: Provider| {
            sessions
                .iter()
                .filter(|s| s.provider == p)
                .map(|s| s.amplification)
                .fold(0.0f64, f64::max)
        };
        let median_of = |p: Provider| {
            let v: Vec<f64> = sessions
                .iter()
                .filter(|s| s.provider == p)
                .map(|s| s.amplification)
                .collect();
            quicert_analysis::median(&v)
        };
        let meta = max_of(Provider::Meta);
        assert!(meta > 15.0, "meta {meta}");
        // "The majority of Cloudflare and Google backscatter remains below
        // factors of 10x" — median, with a bounded tail.
        for p in [Provider::Cloudflare, Provider::Google] {
            assert!(median_of(p) < 10.0, "{p:?} median {}", median_of(p));
            assert!(max_of(p) < 16.0, "{p:?} max {}", max_of(p));
        }
        assert!(meta > max_of(Provider::Cloudflare) && meta > max_of(Provider::Google));
    }

    #[test]
    fn meta_sessions_span_tens_of_seconds() {
        // §4.3: median Meta session ~51 s (retransmission backoff).
        let sessions = sessions();
        let meta_durations: Vec<f64> = sessions
            .iter()
            .filter(|s| s.provider == Provider::Meta)
            .map(|s| s.duration.as_secs_f64())
            .collect();
        if !meta_durations.is_empty() {
            let median = quicert_analysis::median(&meta_durations);
            assert!((20.0..120.0).contains(&median), "median {median}");
        }
    }
}
