//! Adversary imitation against a Meta point-of-presence (§4.3, Fig 11).
//!
//! A single 1252-byte Initial is sent to every host of a /24 prefix without
//! ever acknowledging, reproducing the paper's ZMap experiment. Hosts fall
//! into the paper's three response groups: no QUIC service (≤150 bytes),
//! facebook.com front-ends (~7 kB, >5×), and Instagram/WhatsApp hosts
//! (~35 kB, >28×). After the responsible disclosure Meta deployed a
//! homogeneous configuration with a mean amplification of ~5×.

use std::net::Ipv4Addr;

use quicert_netsim::{Ipv4Net, SimDuration, Wire};
use quicert_pki::ecosystem::{ChainId, LeafParams};
use quicert_pki::World;
use quicert_quic::{run_spoofed_probe, ServerBehavior, ServerConfig};
use quicert_x509::KeyAlgorithm;

/// Probe size used by the paper's ZMap scan.
pub const PROBE_SIZE: usize = 1252;

/// What a Meta PoP host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaService {
    /// No QUIC/HTTP3 service on this address.
    None,
    /// facebook.com / messenger.com front-ends (bounded resends).
    Facebook,
    /// Instagram / WhatsApp hosts (unbounded resends pre-disclosure).
    InstagramWhatsapp,
}

impl MetaService {
    /// Domains the paper associates with the group.
    pub fn domains(self) -> &'static str {
        match self {
            MetaService::None => "-",
            MetaService::Facebook => "facebook.com, messenger.com, fbcdn.net",
            MetaService::InstagramWhatsapp => "whatsapp.net, instagram.com, igcdn.com",
        }
    }
}

/// The host octets present in Fig 11's x-axis.
pub fn pop_host_octets() -> Vec<u8> {
    let mut octets: Vec<u8> = (1..=43).collect();
    octets.extend(49..=60);
    octets.push(63);
    octets.extend(128..=132);
    octets.extend(158..=169);
    octets.extend([172, 174, 182, 183]);
    octets
}

/// Service assignment per host octet (deterministic model of the PoP).
pub fn service_of(octet: u8) -> MetaService {
    match octet {
        35 | 36 => MetaService::Facebook,
        60 | 63 => MetaService::InstagramWhatsapp,
        o if o % 7 == 0 => MetaService::None,
        o if o % 3 == 0 => MetaService::InstagramWhatsapp,
        _ => MetaService::Facebook,
    }
}

/// One probed host.
#[derive(Debug, Clone)]
pub struct ZmapResult {
    /// Host address.
    pub addr: Ipv4Addr,
    /// Final host octet.
    pub octet: u8,
    /// Service group.
    pub service: MetaService,
    /// Response bytes received.
    pub response_bytes: usize,
    /// Amplification factor over the probe.
    pub amplification: f64,
}

fn meta_server_config(
    world: &World,
    octet: u8,
    service: MetaService,
    post_disclosure: bool,
    variation: u64,
) -> ServerConfig {
    let transmissions = if post_disclosure {
        crate::behavior::MVFST_POST_TRANSMISSIONS
    } else {
        match service {
            MetaService::Facebook => 2,
            MetaService::InstagramWhatsapp => crate::behavior::MVFST_PRE_TRANSMISSIONS,
            MetaService::None => 1,
        }
    };
    let mut behavior = ServerBehavior::mvfst_like(transmissions);
    behavior.pto = SimDuration::from_millis(350);
    // Individual PoP hosts serve slightly different certificate bundles
    // (extra SAN entries); `variation` models that spread and produces the
    // Fig 11 confidence intervals.
    let mut extra_sans = vec!["*.whatsapp.net".to_string(), "*.fbcdn.net".to_string()];
    for i in 0..((octet as u64 + variation) % 4) {
        extra_sans.push(format!("edge-{i}-{variation}.facebook.com"));
    }
    let chain = world.ecosystem.issue(
        ChainId::DigiCertSha2WithRoot,
        &LeafParams {
            common_name: match service {
                MetaService::InstagramWhatsapp => "*.instagram.com".to_string(),
                _ => "*.facebook.com".to_string(),
            },
            extra_sans,
            key: KeyAlgorithm::EcdsaP256,
            scts: 2,
            seed: 0xFB00 + octet as u64 + (variation << 16),
        },
    );
    ServerConfig {
        behavior,
        chain,
        leaf_key: KeyAlgorithm::EcdsaP256,
        compression_support: vec![],
        resumption: None,
        seed: 0xFB00 + octet as u64 + (variation << 16),
    }
}

/// Scan the /24 Meta PoP.
pub fn scan_pop(world: &World, prefix: Ipv4Net, post_disclosure: bool) -> Vec<ZmapResult> {
    scan_pop_with_variation(world, prefix, post_disclosure, 0)
}

/// Scan the PoP with a per-run certificate-bundle variation (used to build
/// the Fig 11 confidence intervals across repetitions).
pub fn scan_pop_with_variation(
    world: &World,
    prefix: Ipv4Net,
    post_disclosure: bool,
    variation: u64,
) -> Vec<ZmapResult> {
    pop_host_octets()
        .into_iter()
        .map(|octet| {
            let addr = prefix.host(octet as u64);
            let service = service_of(octet);
            let response_bytes = if service == MetaService::None {
                // No HTTP/3 service: at most an ICMP-ish dribble (≤150 B).
                (octet as usize * 7) % 130
            } else {
                let config = meta_server_config(world, octet, service, post_disclosure, variation);
                let mut wire = Wire::ideal(SimDuration::from_millis(18));
                let out = run_spoofed_probe(
                    PROBE_SIZE,
                    Ipv4Addr::new(203, 0, 113, 99),
                    addr,
                    config,
                    &mut wire,
                    0x5CA0 + octet as u64,
                );
                out.total_server_wire
            };
            ZmapResult {
                addr,
                octet,
                service,
                response_bytes,
                amplification: response_bytes as f64 / PROBE_SIZE as f64,
            }
        })
        .collect()
}

/// The default Meta PoP prefix used by the experiments.
pub fn default_pop_prefix() -> Ipv4Net {
    Ipv4Net::new(Ipv4Addr::new(157, 240, 20, 0), 24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_pki::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig {
            domains: 500,
            seed: 13,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn three_groups_emerge_pre_disclosure() {
        let results = scan_pop(&world(), default_pop_prefix(), false);
        let group = |svc: MetaService| -> Vec<f64> {
            results
                .iter()
                .filter(|r| r.service == svc)
                .map(|r| r.amplification)
                .collect()
        };
        let none = group(MetaService::None);
        let fb = group(MetaService::Facebook);
        let ig = group(MetaService::InstagramWhatsapp);
        assert!(none.iter().all(|&a| a < 0.15), "group 1: <=150 bytes");
        // Group 2: ~7 kB responses, over 5x.
        let fb_mean = quicert_analysis::mean(&fb);
        assert!((4.0..12.0).contains(&fb_mean), "facebook mean {fb_mean}");
        // Group 3: ~35 kB responses, over 28x.
        let ig_mean = quicert_analysis::mean(&ig);
        assert!(ig_mean > 20.0, "instagram mean {ig_mean}");
        assert!(ig_mean > fb_mean * 2.0);
    }

    #[test]
    fn disclosure_homogenises_the_pop() {
        let results = scan_pop(&world(), default_pop_prefix(), true);
        let served: Vec<f64> = results
            .iter()
            .filter(|r| r.service != MetaService::None)
            .map(|r| r.amplification)
            .collect();
        let mean = quicert_analysis::mean(&served);
        // Fig 11(b): homogeneous, mean ~5x — still above the limit.
        assert!((3.0..9.0).contains(&mean), "post-disclosure mean {mean}");
        let spread = served
            .iter()
            .fold(0.0f64, |acc, &a| acc.max((a - mean).abs()));
        assert!(
            spread < mean,
            "homogeneous fleet: spread {spread} < mean {mean}"
        );
        assert!(mean > 3.0, "responses still exceed the 3x limit");
    }

    #[test]
    fn octet_list_matches_fig11_axis() {
        let octets = pop_host_octets();
        assert!(octets.contains(&35) && octets.contains(&36));
        assert!(octets.contains(&60) && octets.contains(&63));
        assert!(octets.contains(&183));
        assert!(!octets.contains(&44));
        assert_eq!(service_of(35), MetaService::Facebook);
        assert_eq!(service_of(60), MetaService::InstagramWhatsapp);
    }
}
