//! The client-side session cache: an LRU map from SNI to the newest ticket
//! obtained for that host, as browsers and long-lived scanners keep it.

use std::collections::HashMap;

use crate::ticket::SessionTicket;

/// A bounded least-recently-used ticket store keyed by SNI.
///
/// Both inserts and lookups refresh an entry's recency; when the cache is
/// full the least recently touched entry is evicted. Eviction order is
/// fully deterministic (a monotone touch counter, no hashing involved), so
/// scans that thread a cache through their probes stay reproducible.
#[derive(Debug, Clone)]
pub struct SessionCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, (u64, SessionTicket)>,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` tickets (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SessionCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of cached tickets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Store `ticket` for `sni`, replacing any previous ticket for the same
    /// host and evicting the least recently used entry when full.
    pub fn insert(&mut self, sni: &str, ticket: SessionTicket) {
        self.tick += 1;
        if !self.entries.contains_key(sni) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(sni.to_string(), (self.tick, ticket));
    }

    /// Look up the ticket for `sni`, refreshing its recency on a hit.
    pub fn lookup(&mut self, sni: &str) -> Option<&SessionTicket> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(sni).map(|(t, ticket)| {
            *t = tick;
            &*ticket
        })
    }

    /// Drop any ticket stored for `sni` (e.g. after the server rejected it).
    pub fn evict(&mut self, sni: &str) -> Option<SessionTicket> {
        self.entries.remove(sni).map(|(_, ticket)| ticket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::TICKET_LEN;

    fn ticket(n: u8) -> SessionTicket {
        SessionTicket {
            identity: vec![n; TICKET_LEN],
            lifetime_secs: 7_200,
            age_add: n as u32,
            obtained_at_secs: 0,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut cache = SessionCache::with_capacity(4);
        cache.insert("a.example", ticket(1));
        assert_eq!(cache.lookup("a.example").unwrap().age_add, 1);
        assert!(cache.lookup("b.example").is_none());
        cache.insert("a.example", ticket(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup("a.example").unwrap().age_add, 2);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut cache = SessionCache::with_capacity(2);
        cache.insert("a", ticket(1));
        cache.insert("b", ticket(2));
        // Touch "a" so "b" is the LRU entry.
        assert!(cache.lookup("a").is_some());
        cache.insert("c", ticket(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("b").is_none(), "b was LRU and must be gone");
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut cache = SessionCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert("a", ticket(1));
        cache.insert("b", ticket(2));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("a").is_none());
    }

    #[test]
    fn evict_removes_entry() {
        let mut cache = SessionCache::with_capacity(2);
        cache.insert("a", ticket(1));
        assert_eq!(cache.evict("a").unwrap().age_add, 1);
        assert!(cache.is_empty());
        assert!(cache.evict("a").is_none());
    }
}
