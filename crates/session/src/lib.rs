//! # quicert-session — TLS session resumption machinery
//!
//! The paper's §5 guidance is that *session resumption* sidesteps the whole
//! certificate/amplification interplay: a resumed handshake authenticates
//! with a pre-shared key and never puts the certificate chain on the wire.
//! This crate provides the stateful half of that story:
//!
//! * [`ticket`] — deterministic session tickets, STEK-encrypted on the
//!   server ([`TicketIssuer`]) with time-driven key rotation and lifetime
//!   enforcement ([`TicketConfig`], [`TicketValidation`]);
//! * [`cache`] — the client-side LRU session cache keyed by SNI
//!   ([`SessionCache`]);
//! * [`policy`] — the [`ResumptionPolicy`] scenario axis (cold-only / warm
//!   after first visit / ticket-expired) the campaign matrix sweeps.
//!
//! Everything here is plain data plus deterministic arithmetic: the "AEAD"
//! protecting a ticket is a keystream + MAC stand-in of exactly the right
//! size (as with the rest of the workspace, sizes are faithful, secrets are
//! simulated), so every scan that uses resumption stays reproducible
//! bit-for-bit at any worker count.

pub mod cache;
pub mod policy;
pub mod ticket;

pub use cache::SessionCache;
pub use policy::ResumptionPolicy;
pub use ticket::{
    ResumptionHost, SessionTicket, TicketConfig, TicketIssuer, TicketValidation, TICKET_LEN,
};
