//! The resumption scenario axis: how a revisit relates to the first visit.

/// How the warm (second-visit) half of a scan treats session tickets —
/// the resumption counterpart of `quicert_netsim::NetworkProfile`, swept
/// orthogonally to network conditions and Initial sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResumptionPolicy {
    /// The client never offers a ticket: every visit pays the full
    /// certificate-laden handshake. The baseline row.
    ColdOnly,
    /// The client revisits shortly after the first handshake and offers the
    /// cached ticket — the §5 mitigation working as intended.
    WarmAfterFirstVisit,
    /// The revisit happens after the ticket lifetime has elapsed *and* the
    /// server's STEK has rotated past the acceptance window, so the offer
    /// is deterministically rejected and the handshake falls back cold.
    TicketExpired,
}

impl ResumptionPolicy {
    /// Every policy, in report order (baseline first).
    pub const ALL: [ResumptionPolicy; 3] = [
        ResumptionPolicy::ColdOnly,
        ResumptionPolicy::WarmAfterFirstVisit,
        ResumptionPolicy::TicketExpired,
    ];

    /// Label used in reports and artifact keys.
    pub fn name(self) -> &'static str {
        match self {
            ResumptionPolicy::ColdOnly => "cold-only",
            ResumptionPolicy::WarmAfterFirstVisit => "warm",
            ResumptionPolicy::TicketExpired => "ticket-expired",
        }
    }

    /// Whether the warm visit offers a cached ticket at all.
    pub fn offers_ticket(self) -> bool {
        !matches!(self, ResumptionPolicy::ColdOnly)
    }
}

impl std::fmt::Display for ResumptionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_display_matches() {
        let mut seen = std::collections::HashSet::new();
        for p in ResumptionPolicy::ALL {
            assert!(seen.insert(p.name()));
            assert_eq!(format!("{p}"), p.name());
        }
    }

    #[test]
    fn only_cold_only_withholds_tickets() {
        assert!(!ResumptionPolicy::ColdOnly.offers_ticket());
        assert!(ResumptionPolicy::WarmAfterFirstVisit.offers_ticket());
        assert!(ResumptionPolicy::TicketExpired.offers_ticket());
    }
}
